"""§V.E — computational analysis of the regularizer's overhead.

The paper reports: sampling adds O(M) time; the precomputed NPMI matrix
adds O(V²) space (14.6 GB on GPU at V = 34,330; 65.68 s/epoch on NYTimes).
Measured here: the kernel's actual memory footprint, the NPMI
precomputation time (paper: "a time equivalent to approximately 30
training epochs"), and the per-epoch wall-clock of ContraTopic relative to
its plain ETM backbone — the structural costs scale down with V² exactly
as the paper's analysis predicts.
"""

import time

import numpy as np

from benchmarks.conftest import STRICT, print_block
from repro.core import ContraTopicConfig, npmi_kernel
from repro.core.contratopic import ContraTopic
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.metrics import compute_npmi_matrix


def test_computational_analysis(benchmark, settings_nytimes):
    context = ExperimentContext(settings_nytimes)
    corpus = context.dataset.train

    def run():
        t0 = time.perf_counter()
        npmi = compute_npmi_matrix(corpus)
        npmi_seconds = time.perf_counter() - t0
        kernel = npmi_kernel(npmi, temperature=settings_nytimes.kernel_temperature)
        kernel_bytes = kernel.matrix.nbytes + kernel.exp_matrix.nbytes

        plain = context.build("etm", seed=0)
        t0 = time.perf_counter()
        plain.fit(corpus)
        plain_epoch = (time.perf_counter() - t0) / settings_nytimes.epochs

        regularized = ContraTopic(
            context.build("etm", seed=0),
            kernel,
            ContraTopicConfig(
                lambda_weight=settings_nytimes.resolved_lambda(),
                negative_weight=settings_nytimes.negative_weight,
            ),
        )
        t0 = time.perf_counter()
        regularized.fit(corpus)
        regularized_epoch = (time.perf_counter() - t0) / settings_nytimes.epochs
        return npmi_seconds, kernel_bytes, plain_epoch, regularized_epoch

    npmi_seconds, kernel_bytes, plain_epoch, regularized_epoch = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    vocab = corpus.vocab_size
    rows = [
        ["vocabulary size V", vocab, 34330],
        ["kernel memory (V^2 doubles)", f"{kernel_bytes / 1e6:.1f} MB", "8.7-14.6 GB"],
        ["NPMI precompute", f"{npmi_seconds:.2f} s", "~30 epochs' worth"],
        ["NPMI precompute / epoch ratio", f"{npmi_seconds / plain_epoch:.1f}", "~30"],
        ["plain backbone s/epoch", f"{plain_epoch:.2f}", "-"],
        ["ContraTopic s/epoch", f"{regularized_epoch:.2f}", "65.68 (GPU, V=34k)"],
        ["regularizer overhead", f"{regularized_epoch / plain_epoch:.2f}x", "modest"],
    ]
    print_block(
        format_table(
            ["quantity", "measured", "paper"],
            rows,
            title="§V.E computational analysis (NYTimes profile)",
        )
    )

    # O(V^2) space: the kernel really is two dense V x V doubles.
    assert kernel_bytes == 2 * vocab * vocab * 8
    if STRICT:
        # The regularizer's overhead must remain modest (paper's claim) —
        # generous bound: under 4x the plain backbone per epoch.
        assert regularized_epoch < 4.0 * plain_epoch

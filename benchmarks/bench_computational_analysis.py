"""§V.E — computational analysis of the regularizer's overhead.

The paper reports: sampling adds O(M) time; the precomputed NPMI matrix
adds O(V²) space (14.6 GB on GPU at V = 34,330; 65.68 s/epoch on NYTimes).
Measured here: the kernel's actual memory footprint, the NPMI
precomputation time (paper: "a time equivalent to approximately 30
training epochs"), and the per-epoch wall-clock of ContraTopic relative to
its plain ETM backbone — the structural costs scale down with V² exactly
as the paper's analysis predicts.

Telemetry: the regularized run streams per-epoch telemetry (throughput,
ELBO-vs-contrastive loss split) and a short op-profiled run collects
per-op forward/backward timings; both are emitted as
``BENCH_computational_analysis.json`` — the report CI's perf-guard
(``benchmarks/check_regression.py``) compares against the checked-in
baseline in ``benchmarks/baselines/``.
"""

import time

from benchmarks.conftest import BENCH_DTYPE, STRICT, emit_report, print_block
from repro.core import ContraTopicConfig, npmi_kernel
from repro.core.contratopic import ContraTopic
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.metrics import compute_npmi_matrix
from repro.telemetry import MetricsRegistry, TelemetryCallback, load_report
from repro.tensor import default_dtype

#: Epochs of the dedicated op-profiling run (kept short: the per-op shims
#: must not distort the headline plain-vs-regularized epoch comparison,
#: so profiling happens in its own small run).
PROFILE_EPOCHS = 2


def _regularized(context, settings, kernel) -> ContraTopic:
    return ContraTopic(
        context.build("etm", seed=0),
        kernel,
        ContraTopicConfig(
            lambda_weight=settings.resolved_lambda(),
            negative_weight=settings.negative_weight,
        ),
    )


def test_computational_analysis(benchmark, settings_nytimes, profile_into_suite):
    context = ExperimentContext(settings_nytimes)
    corpus = context.dataset.train
    registry = MetricsRegistry()
    telemetry = TelemetryCallback(registry=registry, run_name="contratopic")

    def run():
        t0 = time.perf_counter()
        npmi = compute_npmi_matrix(corpus)
        npmi_seconds = time.perf_counter() - t0
        kernel = npmi_kernel(npmi, temperature=settings_nytimes.kernel_temperature)
        kernel_bytes = kernel.matrix.nbytes + kernel.exp_matrix.nbytes

        # Training runs in the benchmark precision (float32 by default —
        # the fused hot path's intended fast configuration); NPMI/metrics
        # above stay float64.
        with default_dtype(BENCH_DTYPE):
            plain = context.build("etm", seed=0)
            t0 = time.perf_counter()
            plain.fit(corpus)
            plain_epoch = (time.perf_counter() - t0) / settings_nytimes.epochs

            regularized = _regularized(context, settings_nytimes, kernel)
            t0 = time.perf_counter()
            regularized.fit(corpus, callbacks=[telemetry])
            regularized_epoch = (time.perf_counter() - t0) / settings_nytimes.epochs

            # Dedicated short profiled run: per-op forward/backward wall
            # time and allocation volume of one regularized training step
            # stream (also fanned into the suite-wide ops table).
            profiled = _regularized(context, settings_nytimes, kernel)
            profiled.config.epochs = PROFILE_EPOCHS
            with profile_into_suite(registry):
                profiled.fit(corpus)
        return npmi_seconds, kernel_bytes, plain_epoch, regularized_epoch

    npmi_seconds, kernel_bytes, plain_epoch, regularized_epoch = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    vocab = corpus.vocab_size
    rows = [
        ["vocabulary size V", vocab, 34330],
        ["kernel memory (V^2 doubles)", f"{kernel_bytes / 1e6:.1f} MB", "8.7-14.6 GB"],
        ["NPMI precompute", f"{npmi_seconds:.2f} s", "~30 epochs' worth"],
        ["NPMI precompute / epoch ratio", f"{npmi_seconds / plain_epoch:.1f}", "~30"],
        ["plain backbone s/epoch", f"{plain_epoch:.2f}", "-"],
        ["ContraTopic s/epoch", f"{regularized_epoch:.2f}", "65.68 (GPU, V=34k)"],
        ["regularizer overhead", f"{regularized_epoch / plain_epoch:.2f}x", "modest"],
    ]
    print_block(
        format_table(
            ["quantity", "measured", "paper"],
            rows,
            title="§V.E computational analysis (NYTimes profile)",
        )
    )

    report_path = emit_report(
        "computational_analysis",
        registry=registry,
        epochs=telemetry.epochs,
        meta={
            "dataset": settings_nytimes.dataset,
            "dtype": BENCH_DTYPE,
            "vocab_size": vocab,
            "epochs": settings_nytimes.epochs,
            "profile_epochs": PROFILE_EPOCHS,
            "plain_epoch_seconds": plain_epoch,
            "regularized_epoch_seconds": regularized_epoch,
            "npmi_precompute_seconds": npmi_seconds,
            "kernel_bytes": kernel_bytes,
        },
    )

    # The emitted report must be a complete perf-guard input: per-op
    # timings, per-epoch throughput, and the ELBO-vs-contrastive split.
    report = load_report(report_path)
    assert report["ops"], "op profiling produced no op table"
    op_rows = {r["op"]: r for r in report["ops"]}
    matmul = op_rows["matmul"]
    assert matmul["calls"] > 0 and matmul["total_seconds"] > 0
    assert matmul["backward_seconds"] > 0 and matmul["bytes"] > 0
    # The hot path runs through the fused kernels: they must appear as
    # single rows (encoder linear, β softmax, fused reconstruction NLL).
    # On sparse corpora the auto-dispatch runs the reconstruction through
    # the matmul-free CSR mixture kernel instead of nll_from_probs.
    for fused_op in ("linear", "softmax"):
        assert op_rows[fused_op]["calls"] > 0, fused_op
        assert op_rows[fused_op]["backward_seconds"] > 0, fused_op
    nll_row = op_rows.get("nll_from_mixture_csr") or op_rows.get("nll_from_probs")
    assert nll_row is not None, "no fused reconstruction NLL in the op table"
    assert nll_row["calls"] > 0 and nll_row["backward_seconds"] > 0
    assert len(report["epochs"]) == settings_nytimes.epochs
    first_epoch = report["epochs"][0]
    assert first_epoch["docs_per_sec"] > 0
    assert first_epoch["elbo"] != 0.0 and first_epoch["contrastive"] != 0.0
    assert report["totals"]["docs_per_sec"] > 0
    assert 0.0 < report["totals"]["contrastive_loss_share"] < 1.0

    # O(V^2) space: the kernel really is two dense V x V doubles.
    assert kernel_bytes == 2 * vocab * vocab * 8
    if STRICT:
        # The regularizer's overhead must remain modest (paper's claim) —
        # generous bound: under 4x the plain backbone per epoch.
        assert regularized_epoch < 4.0 * plain_epoch

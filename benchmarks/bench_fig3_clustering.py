"""Figure 3 — km-Purity / km-NMI of document representations.

KMeans over held-out document-topic vectors on the two labeled datasets.
Expected shape: ContraTopic stays competitive (well above chance and within
reach of the best baseline) "despite not incorporating any specific
techniques for document representation".
"""

import numpy as np
import pytest

from benchmarks.conftest import STRICT, print_block
from repro.experiments.fig3_clustering import FIG3_MODELS, format_fig3, run_fig3


@pytest.mark.parametrize("dataset", ["20ng", "yahoo"])
def test_fig3_document_clustering(benchmark, dataset, request, bench_registry):
    settings = request.getfixturevalue(f"settings_{dataset}")
    with bench_registry.timer(f"fig3/{dataset}"):
        result = benchmark.pedantic(
            run_fig3, args=(settings,), kwargs={"models": FIG3_MODELS}, rounds=1, iterations=1
        )
    print_block(format_fig3(result))

    contra = np.mean(list(result.km_purity["contratopic"].values()))
    best_baseline = max(
        np.mean(list(result.km_purity[m].values()))
        for m in FIG3_MODELS
        if m != "contratopic"
    )
    chance = 1.0 / 10  # >= 13 labels in every labeled profile
    assert contra > 2 * chance, "contratopic clustering should beat chance clearly"
    if STRICT:
        assert contra > 0.6 * best_baseline, (
            "contratopic must stay competitive with the best baseline"
        )
        # NMI must be informative, not degenerate.
        assert np.mean(list(result.km_nmi["contratopic"].values())) > 0.2

"""Figure 2 — coherence & diversity vs. % of selected topics, all models.

The paper's headline comparison.  Expected shape (asserted): ContraTopic's
full-percentage coherence beats every baseline's; its diversity stays
competitive with the best baseline rather than collapsing like the
ProdLDA-family's.
"""

import pytest

from benchmarks.conftest import STRICT, print_block
from repro.experiments.fig2_interpretability import (
    FIG2_MODELS,
    format_fig2,
    run_fig2,
)


@pytest.mark.parametrize("dataset", ["20ng", "yahoo", "nytimes"])
def test_fig2_interpretability(benchmark, dataset, request, bench_registry):
    settings = request.getfixturevalue(f"settings_{dataset}")
    with bench_registry.timer(f"fig2/{dataset}"):
        result = benchmark.pedantic(
            run_fig2, args=(settings,), kwargs={"models": FIG2_MODELS}, rounds=1, iterations=1
        )
    print_block(format_fig2(result))

    if STRICT:
        contra_coherence = result.coherence["contratopic"][1.0]
        baselines = [m for m in FIG2_MODELS if m != "contratopic"]
        beaten = sum(contra_coherence > result.coherence[m][1.0] for m in baselines)
        # "ContraTopic outperforms almost every baseline in terms of topic
        # coherence" — it must beat at least 7 of the 9 baselines overall.
        assert beaten >= 7, f"contratopic beat only {beaten}/9 baselines on {dataset}"

        # Diversity must not collapse: stay above the ProdLDA family's.
        assert result.diversity["contratopic"][1.0] > result.diversity["prodlda"][1.0]

"""Table II — ablation study (full vs -P / -N / -I / -S) on 20NG.

Expected shape (paper §V.G): the full model leads; removing the negative
pairs (-N) hurts most — both interpretability and clustering; -P / -I / -S
sit in between, with -S (no sampling) closest to full.
"""

import numpy as np

from benchmarks.conftest import STRICT, print_block
from repro.experiments.table2_ablation import ABLATION_ROWS, format_table2, run_table2


def test_table2_ablation(benchmark, settings_20ng, bench_registry):
    with bench_registry.timer("table2/run"):
        rows = benchmark.pedantic(
            run_table2,
            args=(settings_20ng,),
            kwargs={"variants": ABLATION_ROWS},
            rounds=1,
            iterations=1,
        )
    print_block(format_table2(rows))

    by_variant = {row.variant: row for row in rows}

    def mean_coherence(variant: str) -> float:
        return float(np.mean(list(by_variant[variant].coherence.values())))

    def mean_diversity(variant: str) -> float:
        return float(np.mean(list(by_variant[variant].diversity.values())))

    if STRICT:
        # The full contrastive objective must beat the negatives-only
        # variant on coherence (the paper's ~12% drop for -N).
        assert mean_coherence("full") > mean_coherence("N")
        # Positives-only loses the diversity pressure relative to full.
        assert mean_diversity("full") >= mean_diversity("P") - 0.05
        # Every variant still produces usable topics.
        for variant in ABLATION_ROWS:
            assert mean_coherence(variant) > 0.0

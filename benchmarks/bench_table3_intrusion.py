"""Table III — word intrusion scores on 20NG (simulated annotators).

Expected shape: WIS ordering tracks the coherence ordering (the alignment
the paper reports between automatic and human evaluation), and ContraTopic
scores at or near the top of the lineup.
"""

from benchmarks.conftest import STRICT, print_block
from repro.experiments.fig2_interpretability import FIG2_MODELS
from repro.experiments.table3_intrusion import format_table3, run_table3


def test_table3_word_intrusion(benchmark, settings_20ng, bench_registry):
    with bench_registry.timer("table3/run"):
        rows = benchmark.pedantic(
            run_table3,
            args=(settings_20ng,),
            kwargs={"models": FIG2_MODELS},
            rounds=1,
            iterations=1,
        )
    print_block(format_table3(rows))

    by_model = {row.model: row.wis for row in rows}
    scores = sorted(by_model.values(), reverse=True)
    if STRICT:
        # ContraTopic in the top-3 of ten models (paper: rank 1 at 0.80).
        assert by_model["contratopic"] >= scores[2]
        # The metric must discriminate rather than saturate.
        assert max(scores) - min(scores) > 0.1
    for wis in by_model.values():
        assert 0.0 <= wis <= 1.0

"""Regularizer-zoo leaderboard: every objective head-to-head on one backbone.

The composable objective pipeline (:mod:`repro.objectives`) makes the
paper's topic-wise contrastive term one entry in a registry of rival
regularizers — the CLNTM document-wise InfoNCE (Nguyen & Luu 2021), the
diversity-aware coherence regularizer (Li et al. 2023) and a VICReg-style
latent regularizer (Xu et al. 2025).  This benchmark runs the sweep the
refactor exists for: the *same* ETM backbone trains once per objective
(plus the pure-ELBO control) under identical ``RunSpec`` settings, each
row averaged over several seeds fanned out in parallel, and the §V.B
coherence / diversity / km-Purity protocol ranks the results.

The report roll-up carries ``regularizers_wall_seconds`` (the whole
sweep's wall-clock), which ``benchmarks/check_regression.py`` gates
against ``benchmarks/baselines/BENCH_regularizers.json``; the leaderboard
rows themselves land in the report's ``meta`` so the checked-in baseline
doubles as the reproduction record.

Contracts asserted here (and in ``tests/experiments/test_regularizers.py``):

* completeness — one row per objective (control + all four registry
  entries), every metric finite, no failed/diverged seeds;
* paper shape (strict scale only) — the paper's topic-wise contrastive
  regularizer improves coherence@10% over the pure-ELBO control.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import STRICT, emit_report, print_block
from repro.experiments import ExperimentContext, ExperimentSettings
from repro.experiments.regularizers import (
    format_leaderboard,
    regularizer_leaderboard,
)
from repro.telemetry import MetricsRegistry
from repro.telemetry.report import REGULARIZERS_WALL_KEY

#: §V.F protocol: three seeds per row at strict scale (the checked-in
#: baseline); two keep the smoke run honest about the multi-seed path.
SEEDS = (0, 1, 2) if STRICT else (0, 1)

#: Per-row parallel seed fan-out (ParallelMap workers).  Rows are
#: bitwise-identical for every worker count — asserted in the test suite.
WORKERS = min(len(SEEDS), 3)

EXPECTED_ROWS = frozenset(
    {"elbo", "contrastive", "clntm", "coherence", "vicreg"}
)


def test_regularizer_leaderboard(bench_registry):
    # The reduced experiment scale: the leaderboard's point is relative
    # ranking under identical settings, which survives scale-down.
    context = ExperimentContext(ExperimentSettings(dataset="20ng").fast())
    registry = MetricsRegistry()
    with registry.timer(REGULARIZERS_WALL_KEY):
        result = regularizer_leaderboard(
            context, seeds=SEEDS, workers=WORKERS, registry=registry
        )

    print_block(format_leaderboard(result, "20ng"))

    assert {row.name for row in result.rows} == set(EXPECTED_ROWS)
    assert not result.failures, f"failed/diverged seeds: {result.failures}"
    for row in result.rows:
        assert np.isfinite(row.coherence_at_10), row.name
        assert np.isfinite(row.diversity_at_10), row.name
        assert np.isfinite(row.purity), row.name
        assert row.summary()["seeds_ok"] == len(SEEDS), row.name

    bench_registry.merge(registry)
    emit_report(
        "regularizers",
        registry=registry,
        meta={
            "suite": "regularizers",
            "dataset": "20ng",
            "backbone": "etm",
            "seeds": list(SEEDS),
            "workers": WORKERS,
            "leaderboard": [
                {"objective": row.name, "weight": row.weight, **row.summary()}
                for row in result.rows
            ],
            "best": result.best().name,
        },
    )

    if STRICT:
        by_name = {row.name: row for row in result.rows}
        assert (
            by_name["contrastive"].coherence_at_10
            > by_name["elbo"].coherence_at_10
        ), "topic-wise contrastive regularizer did not improve coherence@10%"

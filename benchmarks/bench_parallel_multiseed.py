"""Multi-seed evaluation wall-clock: serial vs process-parallel.

The §V.F protocol (several seeds per reported metric) is the repo's
biggest embarrassingly-parallel loop.  This benchmark runs the *same*
5-seed ContraTopic evaluation twice — ``workers=1`` (the exact serial
path) and ``workers=N`` over :class:`repro.parallel.ParallelMap` — and
asserts the parallel contract:

* the merged metrics, per-seed statuses and stds are *identical* (the
  fan-out must be a pure wall-clock optimisation), always;
* on an adequately-parallel machine (>= 4 cores, strict mode) the
  parallel run is at least 2x faster.

Both wall-clocks (and their ratio) land in the report totals as
``multiseed_serial_seconds`` / ``multiseed_parallel_seconds`` /
``multiseed_speedup``, which ``benchmarks/check_regression.py`` gates
against the checked-in baseline.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import BENCH_DTYPE, STRICT, emit_report, print_block
from repro.experiments.context import ExperimentContext
from repro.parallel import resolve_workers
from repro.telemetry import MetricsRegistry
from repro.telemetry.report import MULTISEED_PARALLEL_KEY, MULTISEED_SERIAL_KEY
from repro.tensor import default_dtype
from repro.training.protocol import multi_seed_evaluation

NUM_SEEDS = 5

#: Acceptance target on a 4-core runner; only asserted when the machine
#: can physically deliver it (and in strict mode — under fast/smoke
#: scale the per-seed work is too small to beat the fork overhead).
SPEEDUP_TARGET = 2.0

_RESULT_FIELDS = (
    "coherence",
    "diversity",
    "km_purity",
    "km_nmi",
    "coherence_std",
    "diversity_std",
    "km_purity_std",
)


def _assert_identical(serial, parallel) -> None:
    assert serial.seed_status == parallel.seed_status
    assert serial.diverged == parallel.diverged
    for field in _RESULT_FIELDS:
        a, b = getattr(serial, field), getattr(parallel, field)
        assert a.keys() == b.keys(), field
        for key in a:
            fa, fb = float(a[key]), float(b[key])
            assert fa == fb or (fa != fa and fb != fb), (
                f"{field}[{key}] differs: serial {fa} vs parallel {fb}"
            )


def test_multiseed_parallel_matches_serial_and_wins_wall_clock(
    settings_20ng, bench_registry
):
    workers = resolve_workers(None)
    context = ExperimentContext(settings_20ng)
    factory = context.factory("contratopic")
    registry = MetricsRegistry()

    def evaluate(n: int, seeds=tuple(range(NUM_SEEDS))):
        with default_dtype(BENCH_DTYPE):
            return multi_seed_evaluation(
                factory,
                context.dataset.train,
                context.dataset.test,
                context.npmi_test,
                seeds=seeds,
                model_name="contratopic",
                cluster_counts=(20,),
                workers=n,
                registry=registry,
            )

    # Warm the shared caches (corpus, NPMI, embeddings) outside the
    # timed region so the serial leg doesn't pay one-time costs the
    # parallel leg then inherits for free.
    evaluate(1, seeds=(0,))

    runs: dict[str, tuple] = {}
    for key, n in ((MULTISEED_SERIAL_KEY, 1), (MULTISEED_PARALLEL_KEY, workers)):
        start = time.perf_counter()
        result = evaluate(n)
        runs[key] = (result, time.perf_counter() - start)
        registry.record_seconds(key, runs[key][1], absolute=True)

    serial, serial_seconds = runs[MULTISEED_SERIAL_KEY]
    parallel, parallel_seconds = runs[MULTISEED_PARALLEL_KEY]
    _assert_identical(serial, parallel)
    assert all(status == "ok" for status in serial.seed_status.values())

    speedup = serial_seconds / parallel_seconds
    print_block(
        f"multi-seed evaluation ({NUM_SEEDS} seeds, {os.cpu_count()} cores)\n"
        f"  serial (workers=1):      {serial_seconds:8.2f}s\n"
        f"  parallel (workers={workers}):   {parallel_seconds:8.2f}s\n"
        f"  speedup:                 {speedup:8.2f}x\n"
        f"  metrics: identical (checked field by field)"
    )

    # Fold the stage timers and the workers' merged task telemetry into
    # the session registry exactly once, so BENCH_suite.json carries the
    # multiseed_* totals.
    bench_registry.merge(registry)
    emit_report(
        "parallel_multiseed",
        registry=registry,
        meta={
            "suite": "parallel_multiseed",
            "dataset": settings_20ng.dataset,
            "num_seeds": NUM_SEEDS,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "dtype": BENCH_DTYPE,
            "speedup": speedup,
            "metrics": parallel.summary(),
        },
    )

    if STRICT and workers >= 4 and (os.cpu_count() or 1) >= 4:
        assert speedup >= SPEEDUP_TARGET, (
            f"{workers}-worker run only {speedup:.2f}x faster than serial "
            f"(target {SPEEDUP_TARGET}x on {os.cpu_count()} cores)"
        )

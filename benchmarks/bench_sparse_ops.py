"""Sparse fast-path benchmark: the dense-vs-CSR half of the CI perf guard.

Runs :func:`repro.telemetry.microbench.run_sparse_microbench` — the
training hot path forward+backward on the same synthetic ≥99%-sparse
bow, once dense (the reference oracle) and once through the CSR fused
kernels — and emits ``BENCH_sparse.json``, which
``benchmarks/check_regression.py`` compares against the checked-in
baseline.  The gated totals are the two leg wall-clocks, the
``sparse_speedup`` ratio, and the fast-path docs/sec.

In STRICT mode the speedup itself is asserted to be an integer multiple
(≥2×): the fast path earning anything less on the ≥99%-sparse profile it
was built for is a regression, baseline or not.
"""

import numpy as np

from benchmarks.conftest import BENCH_DTYPE, FAST, emit_report, print_block
from repro.experiments.reporting import format_table
from repro.telemetry import MetricsRegistry, load_report
from repro.telemetry.microbench import (
    DEFAULT_SPARSE_REPEATS,
    SPARSE_BATCH,
    SPARSE_PROFILE_DENSITY,
    SPARSE_VOCAB,
    run_sparse_microbench,
)

#: |dense loss − sparse loss| ceiling per dtype: the two legs reduce the
#: same terms in different orders, so the gap is pure float associativity.
LOSS_GAP_CEILING = {"float32": 1e-2, "float64": 1e-6}

#: STRICT-mode floor for the fast path: an integer-multiple speedup.
MIN_SPEEDUP_STRICT = 2.0


def test_sparse_fast_path_bench(benchmark):
    registry = MetricsRegistry()
    repeats = 3 if FAST else DEFAULT_SPARSE_REPEATS

    def run():
        run_sparse_microbench(registry=registry, repeats=repeats, dtype=BENCH_DTYPE)

    benchmark.pedantic(run, rounds=1, iterations=1)

    report_path = emit_report(
        "sparse",
        registry=registry,
        meta={
            "suite": "sparse",
            "dtype": BENCH_DTYPE,
            "repeats": repeats,
            "seed": 0,
            "batch": SPARSE_BATCH,
            "vocab": SPARSE_VOCAB,
            "density": SPARSE_PROFILE_DENSITY,
        },
    )
    report = load_report(report_path)
    totals = report["totals"]

    # Equivalence tripwire: both legs computed (numerically) the same loss.
    gap = registry.counters["sparse/loss_gap"].value
    assert gap <= LOSS_GAP_CEILING[BENCH_DTYPE], (
        f"dense-vs-sparse loss gap {gap} exceeds the {BENCH_DTYPE} ceiling"
    )
    # The generated profile really is in the ≥99%-sparse regime.
    density = registry.counters["sparse/profile_density"].value
    assert density < 0.01, density

    assert totals["sparse_dense_seconds"] > 0
    assert totals["sparse_sparse_seconds"] > 0
    assert totals["sparse_docs_per_sec"] > 0
    speedup = totals["sparse_speedup"]
    if FAST:
        # Smoke scale: still require the fast path to actually be faster.
        assert speedup > 1.0, f"sparse path slower than dense ({speedup:.2f}x)"
    else:
        assert speedup >= MIN_SPEEDUP_STRICT, (
            f"sparse fast path must be an integer multiple faster on the "
            f"{1 - SPARSE_PROFILE_DENSITY:.1%}-sparse profile, got {speedup:.2f}x"
        )

    docs = repeats * SPARSE_BATCH
    table = [
        ["dense (reference)", f"{totals['sparse_dense_seconds']:.3f}",
         f"{totals['sparse_dense_docs_per_sec']:.0f}"],
        ["CSR fast path", f"{totals['sparse_sparse_seconds']:.3f}",
         f"{totals['sparse_docs_per_sec']:.0f}"],
    ]
    print_block(
        format_table(
            ["leg", "seconds", "docs/sec"],
            table,
            title=(
                f"sparse fast path ({BENCH_DTYPE}, {docs} docs, "
                f"vocab {SPARSE_VOCAB}, density {density:.4f}): "
                f"{speedup:.2f}x speedup, loss gap {gap:.2e}"
            ),
        )
    )
    assert np.isfinite(speedup)

"""Incremental co-occurrence/NPMI engine vs per-slice full recount.

The online trainer (:mod:`repro.extensions.online`) maintains its
similarity kernel over a growing corpus.  Before PR 9 every slice paid a
from-scratch rebuild — recount document co-occurrence over *all* documents
seen so far, then a fresh O(V²) NPMI derivation with its temporaries.
:class:`repro.metrics.streaming.StreamingNpmiEngine` replaces that with an
exact delta update: O(nnz_new·V) counting on the new slice only plus one
allocation-free in-place rederivation.

Two legs replay the same 20-slice synthetic drift profile
(:func:`repro.extensions.online.generate_drifting_stream` — theme
popularity drifts and a new theme emerges mid-stream):

* ``streaming/update``  — the incremental engine folding each slice in;
* ``streaming/recount`` — the pre-PR-9 behaviour: per slice, recount all
  documents seen so far from scratch and derive NPMI cold.

The contract asserted here (and in ``tests/metrics/test_streaming.py``):

* exactness — after the full schedule the incremental counts equal the
  final recount bitwise and the in-place NPMI matches a cold build to
  <= 1e-12 (in practice bitwise: both paths share one derivation kernel);
* speed — the incremental leg is >= 5x faster over the 20-slice profile.
  The ratio is algorithmic (recounting replays every past document,
  the delta touches only new ones), so it holds at smoke scale too.

The report roll-up derives ``streaming_update_seconds``,
``streaming_speedup`` and ``streaming_docs_per_sec`` totals, which
``benchmarks/check_regression.py`` gates against
``benchmarks/baselines/BENCH_streaming.json``; the engine's counters
(updates, delta_nnz, buffer reuses) and the NPMI cache's hit/miss
counters travel alongside as ``streaming_*`` / ``npmi_cache_*`` totals.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import STRICT, emit_report, print_block
from repro.extensions.online import DriftingStreamConfig, generate_drifting_stream
from repro.metrics.cooccurrence import DocumentCooccurrence
from repro.metrics.npmi import compute_npmi_matrix
from repro.metrics.streaming import (
    StreamingNpmiEngine,
    record_streaming_stats,
    reset_streaming_stats,
)
from repro.telemetry import MetricsRegistry
from repro.telemetry.report import (
    STREAMING_DOCS_KEY,
    STREAMING_RECOUNT_KEY,
    STREAMING_UPDATE_KEY,
)

NUM_SLICES = 20
DOCS_PER_SLICE = 250 if STRICT else 80

#: Minimum incremental-vs-recount speedup over the 20-slice profile.  The
#: counting work ratio alone is ~(S+1)/2 = 10.5x; 5x leaves headroom for
#: the per-slice rederivation both legs pay.
MIN_SPEEDUP = 5.0

#: Exactness tolerance on the rederived NPMI vs a cold build.  Shared
#: derivation kernel means the observed difference is exactly 0.0.
NPMI_TOL = 1e-12


def _drift_profile() -> DriftingStreamConfig:
    return DriftingStreamConfig(
        base_themes=("space", "medicine", "finance"),
        emerging_themes=("wrestling",),
        emerge_at=NUM_SLICES // 2,
        num_slices=NUM_SLICES,
        docs_per_slice=DOCS_PER_SLICE,
        average_length=40.0,
        seed=7,
    )


def test_streaming_vs_recount(bench_registry):
    slices, _, _ = generate_drifting_stream(_drift_profile())
    vocab_size = slices[0].vocab_size
    registry = MetricsRegistry()
    reset_streaming_stats()

    # Warm each slice's binary-incidence cache outside the timed regions
    # so neither leg pays the one-time BOW conversion inside its timer
    # (the recount leg replays cached slices; without warming, the
    # incremental leg — which runs first — would pay all conversions).
    for slice_corpus in slices:
        slice_corpus.binary_doc_word()

    # Leg 1: incremental — one engine, one delta update per slice.
    engine = StreamingNpmiEngine(vocab_size)
    for slice_corpus in slices:
        with registry.timer(STREAMING_UPDATE_KEY):
            engine.update(slice_corpus)

    # Leg 2: the pre-PR-9 behaviour — per slice, recount every document
    # seen so far from scratch and derive NPMI cold (fresh temporaries).
    final_recount = None
    for upto in range(1, len(slices) + 1):
        with registry.timer(STREAMING_RECOUNT_KEY):
            recount = DocumentCooccurrence.empty(vocab_size)
            for past in slices[:upto]:
                recount.update(past)
            cold = compute_npmi_matrix(recount)
        final_recount = recount

    # Exactness contract: bitwise counts, <= 1e-12 NPMI vs the cold build.
    engine.check_against(final_recount)
    npmi_gap = float(np.max(np.abs(engine.npmi.matrix - cold.matrix)))
    assert npmi_gap <= NPMI_TOL, (
        f"incremental NPMI diverged from cold build by {npmi_gap:.3e}"
    )

    total_docs = sum(len(s) for s in slices)
    registry.counter(STREAMING_DOCS_KEY, absolute=True).value = float(total_docs)
    record_streaming_stats(registry)

    update_s = registry.timers[STREAMING_UPDATE_KEY].total_seconds
    recount_s = registry.timers[STREAMING_RECOUNT_KEY].total_seconds
    speedup = recount_s / update_s if update_s > 0 else float("inf")
    print_block(
        f"streaming kernel ({NUM_SLICES} slices x {DOCS_PER_SLICE} docs, "
        f"V={vocab_size})\n"
        f"  incremental: {update_s:8.3f}s  "
        f"({total_docs / update_s:10.0f} docs/s)\n"
        f"  recount:     {recount_s:8.3f}s\n"
        f"  speedup:     {speedup:8.2f}x   npmi gap {npmi_gap:.1e}\n"
        f"  delta nnz:   {engine.stats['delta_nnz']}  "
        f"buffer reuses: {engine.stats['buffer_reuses']}"
    )

    bench_registry.merge(registry)
    emit_report(
        "streaming",
        registry=registry,
        meta={
            "suite": "streaming",
            "num_slices": NUM_SLICES,
            "docs_per_slice": DOCS_PER_SLICE,
            "vocab_size": vocab_size,
            "total_docs": total_docs,
            "speedup": speedup,
            "npmi_gap": npmi_gap,
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"incremental engine only {speedup:.2f}x faster than per-slice "
        f"recount over {NUM_SLICES} slices (target {MIN_SPEEDUP}x)"
    )

"""Table I — dataset statistics (miniaturized profiles).

Regenerates the paper's dataset summary.  Absolute sizes are scaled down;
the asserted *relations* (NYTimes largest vocabulary / longest documents /
most tokens, Yahoo more but shorter documents than 20NG) must hold.
"""

from benchmarks.conftest import print_block
from repro.experiments.table1_stats import format_table1, run_table1


def test_table1_dataset_statistics(benchmark, settings_20ng, bench_registry):
    with bench_registry.timer("table1/run"):
        rows = benchmark.pedantic(
            run_table1, kwargs={"scale": settings_20ng.scale}, rounds=1, iterations=1
        )
    print_block(format_table1(rows))

    by_name = {row.name: row for row in rows}
    assert by_name["yahoo"].training_samples > by_name["20ng"].training_samples
    assert by_name["yahoo"].average_length < by_name["20ng"].average_length
    assert by_name["nytimes"].average_length > by_name["20ng"].average_length
    assert by_name["nytimes"].num_tokens > by_name["yahoo"].num_tokens > by_name["20ng"].num_tokens

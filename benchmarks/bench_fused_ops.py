"""Fused-kernel microbenchmark: the per-op half of the CI perf guard.

Runs :func:`repro.telemetry.microbench.run_ops_microbench` — forward and
backward of every kernel in ``PROFILED_FUSED_OPS`` on fixed seeded
shapes — and emits ``BENCH_ops.json``, which
``benchmarks/check_regression.py`` compares against the checked-in
baseline.  Unlike the end-to-end training benchmarks, this isolates each
kernel, so a regression points at the offending op directly.
"""

from benchmarks.conftest import BENCH_DTYPE, FAST, emit_report, print_block
from repro.experiments.reporting import format_table
from repro.telemetry import MetricsRegistry, load_report
from repro.telemetry.microbench import DEFAULT_REPEATS, run_ops_microbench
from repro.tensor import PROFILED_FUSED_OPS


def test_fused_ops_microbench(benchmark, profile_into_suite):
    registry = MetricsRegistry()
    repeats = 5 if FAST else DEFAULT_REPEATS

    def run():
        # profile_into_suite nests around the microbench's own
        # profile_ops block, fanning the rows into BENCH_suite.json too.
        with profile_into_suite(registry):
            run_ops_microbench(registry=None, repeats=repeats, dtype=BENCH_DTYPE)

    benchmark.pedantic(run, rounds=1, iterations=1)

    report_path = emit_report(
        "ops",
        registry=registry,
        meta={"suite": "ops", "dtype": BENCH_DTYPE, "repeats": repeats, "seed": 0},
    )
    report = load_report(report_path)
    rows = {r["op"]: r for r in report["ops"]}
    table = []
    for op in PROFILED_FUSED_OPS:
        # Every fused kernel ran `repeats` times, forward and backward.
        assert rows[op]["calls"] >= repeats, op
        assert rows[op]["total_seconds"] > 0, op
        assert rows[op]["backward_seconds"] > 0, op
        table.append(
            [
                op,
                rows[op]["calls"],
                f"{1e6 * rows[op]['mean_seconds']:.1f}",
                f"{1e6 * rows[op]['backward_seconds'] / rows[op]['calls']:.1f}",
            ]
        )
    print_block(
        format_table(
            ["fused op", "calls", "fwd µs/call", "bwd µs/call"],
            table,
            title=f"fused kernel microbenchmark ({BENCH_DTYPE})",
        )
    )

"""CI perf-guard: compare a smoke-run BENCH report against the baseline.

Usage (from the repository root, after a smoke benchmark run emitted
``BENCH_computational_analysis.json`` into the current directory)::

    REPRO_BENCH_FAST=1 python -m pytest benchmarks/bench_computational_analysis.py -q
    python benchmarks/check_regression.py

Exits 0 when every compared total is within ``--threshold`` (default 2x —
deliberately tolerant, shared CI runners are noisy) of the checked-in
baseline, 1 when any total regressed, 2 on bad inputs.  The diff table is
printed either way.  Per-op rows are informational only; the gate runs on
the scalar totals (op/epoch second sums, mean epoch time, docs/sec
throughput).

The guard works on any pair of ``BENCH_*.json`` reports.  CI runs it
four times: on the end-to-end training report (defaults below), on the
fused-kernel microbenchmark, on the sparse fast-path comparison
(``benchmarks/bench_sparse_ops.py``, gating ``sparse_speedup`` /
``sparse_docs_per_sec`` / the leg wall-clocks), and on the multi-seed
parallel-vs-serial wall-clock (``benchmarks/bench_parallel_multiseed.py``),
whose ``multiseed_serial_seconds`` / ``multiseed_parallel_seconds`` /
``multiseed_speedup`` totals this guard gates automatically because they
are listed in :data:`repro.telemetry.report.TIME_TOTALS` /
``RATE_TOTALS``::

    REPRO_BENCH_FAST=1 python -m pytest benchmarks/bench_fused_ops.py -q
    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/BENCH_ops.json \
        --current BENCH_ops.json

    REPRO_BENCH_FAST=1 REPRO_WORKERS=2 \
        python -m pytest benchmarks/bench_parallel_multiseed.py -q
    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/BENCH_suite.json \
        --current BENCH_suite.json

Refreshing a baseline after an intentional perf change::

    python benchmarks/check_regression.py --update-baseline
    python benchmarks/check_regression.py --update-baseline \
        --baseline benchmarks/baselines/BENCH_ops.json --current BENCH_ops.json

Diffing two arbitrary reports (no gate, exit 0 unless inputs are bad) —
used by the ddp scaling report and handy for local before/after runs::

    python benchmarks/check_regression.py --compare BENCH_before.json BENCH_after.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.io import atomic_write  # noqa: E402
from repro.telemetry import compare_reports, load_report, summarize_report  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_computational_analysis.json"
DEFAULT_CURRENT = Path("BENCH_computational_analysis.json")


def compare_mode(path_a: Path, path_b: Path) -> int:
    """Print per-total deltas between two reports; no regression gate.

    Every ``totals`` key present in either report gets a row (A, B,
    delta, ratio); keys missing on one side show as ``-``.  Exit 0
    unless a report cannot be loaded (2).
    """
    for path in (path_a, path_b):
        if not path.exists():
            print(f"error: report {path} does not exist", file=sys.stderr)
            return 2
    try:
        report_a = load_report(path_a)
        report_b = load_report(path_b)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    totals_a = report_a.get("totals", {})
    totals_b = report_b.get("totals", {})
    print(f"compare: A={path_a} ({report_a.get('name')})")
    print(f"         B={path_b} ({report_b.get('name')})")
    header = f"{'metric':<32} {'A':>14} {'B':>14} {'delta':>14} {'ratio':>8}"
    print(header)
    print("-" * len(header))
    for key in sorted(set(totals_a) | set(totals_b)):
        a, b = totals_a.get(key), totals_b.get(key)
        if a is None or b is None:
            a_text = f"{a:.6g}" if a is not None else "-"
            b_text = f"{b:.6g}" if b is not None else "-"
            print(f"{key:<32} {a_text:>14} {b_text:>14} {'-':>14} {'-':>8}")
            continue
        delta = b - a
        ratio = f"{b / a:.3f}x" if a else "inf"
        print(
            f"{key:<32} {a:>14.6g} {b:>14.6g} {delta:>+14.6g} {ratio:>8}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"checked-in baseline report (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=DEFAULT_CURRENT,
        help=f"freshly-emitted report to check (default: {DEFAULT_CURRENT})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when a total is more than this factor slower (default: 2.0)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="copy --current over --baseline instead of comparing",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        type=Path,
        metavar=("A", "B"),
        help=(
            "diff two bench reports (per-total deltas, no pass/fail gate) "
            "instead of guarding --current against --baseline"
        ),
    )
    args = parser.parse_args(argv)

    if args.compare is not None:
        return compare_mode(*args.compare)

    if not args.current.exists():
        print(f"error: current report {args.current} does not exist", file=sys.stderr)
        print("run the smoke benchmarks first (see module docstring)", file=sys.stderr)
        return 2

    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        # Atomic copy: an interrupted update must not leave a truncated
        # baseline that every subsequent CI run would compare against.
        with atomic_write(args.baseline, "w", category="report") as fp:
            fp.write(args.current.read_text(encoding="utf-8"))
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} does not exist", file=sys.stderr)
        return 2

    try:
        baseline = load_report(args.baseline)
        current = load_report(args.current)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    failures, table = compare_reports(baseline, current, threshold=args.threshold)
    print(table)
    if failures:
        print()
        print(f"PERF REGRESSION ({len(failures)} failing total(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    # On pass, still surface what was measured: a compact per-suite
    # summary of the current report, so the CI log records the numbers
    # the guard accepted (not only the ones it rejected).
    print()
    print(summarize_report(current))
    print()
    print("perf-guard OK: no compared total regressed past the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

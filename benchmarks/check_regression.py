"""CI perf-guard: compare a smoke-run BENCH report against the baseline.

Usage (from the repository root, after a smoke benchmark run emitted
``BENCH_computational_analysis.json`` into the current directory)::

    REPRO_BENCH_FAST=1 python -m pytest benchmarks/bench_computational_analysis.py -q
    python benchmarks/check_regression.py

Exits 0 when every compared total is within ``--threshold`` (default 2x —
deliberately tolerant, shared CI runners are noisy) of the checked-in
baseline, 1 when any total regressed, 2 on bad inputs.  The diff table is
printed either way.  Per-op rows are informational only; the gate runs on
the scalar totals (op/epoch second sums, mean epoch time, docs/sec
throughput).

The guard works on any pair of ``BENCH_*.json`` reports.  CI runs it
four times: on the end-to-end training report (defaults below), on the
fused-kernel microbenchmark, on the sparse fast-path comparison
(``benchmarks/bench_sparse_ops.py``, gating ``sparse_speedup`` /
``sparse_docs_per_sec`` / the leg wall-clocks), and on the multi-seed
parallel-vs-serial wall-clock (``benchmarks/bench_parallel_multiseed.py``),
whose ``multiseed_serial_seconds`` / ``multiseed_parallel_seconds`` /
``multiseed_speedup`` totals this guard gates automatically because they
are listed in :data:`repro.telemetry.report.TIME_TOTALS` /
``RATE_TOTALS``::

    REPRO_BENCH_FAST=1 python -m pytest benchmarks/bench_fused_ops.py -q
    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/BENCH_ops.json \
        --current BENCH_ops.json

    REPRO_BENCH_FAST=1 REPRO_WORKERS=2 \
        python -m pytest benchmarks/bench_parallel_multiseed.py -q
    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/BENCH_suite.json \
        --current BENCH_suite.json

Refreshing a baseline after an intentional perf change::

    python benchmarks/check_regression.py --update-baseline
    python benchmarks/check_regression.py --update-baseline \
        --baseline benchmarks/baselines/BENCH_ops.json --current BENCH_ops.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.io import atomic_write  # noqa: E402
from repro.telemetry import compare_reports, load_report, summarize_report  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_computational_analysis.json"
DEFAULT_CURRENT = Path("BENCH_computational_analysis.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"checked-in baseline report (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=DEFAULT_CURRENT,
        help=f"freshly-emitted report to check (default: {DEFAULT_CURRENT})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when a total is more than this factor slower (default: 2.0)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="copy --current over --baseline instead of comparing",
    )
    args = parser.parse_args(argv)

    if not args.current.exists():
        print(f"error: current report {args.current} does not exist", file=sys.stderr)
        print("run the smoke benchmarks first (see module docstring)", file=sys.stderr)
        return 2

    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        # Atomic copy: an interrupted update must not leave a truncated
        # baseline that every subsequent CI run would compare against.
        with atomic_write(args.baseline, "w", category="report") as fp:
            fp.write(args.current.read_text(encoding="utf-8"))
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} does not exist", file=sys.stderr)
        return 2

    try:
        baseline = load_report(args.baseline)
        current = load_report(args.current)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    failures, table = compare_reports(baseline, current, threshold=args.threshold)
    print(table)
    if failures:
        print()
        print(f"PERF REGRESSION ({len(failures)} failing total(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    # On pass, still surface what was measured: a compact per-suite
    # summary of the current report, so the CI log records the numbers
    # the guard accepted (not only the ones it rejected).
    print()
    print(summarize_report(current))
    print()
    print("perf-guard OK: no compared total regressed past the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Data-parallel training scaling curve: 1 / 2 / 4 ranks on one run.

PR 4 parallelized *independent* runs (multi-seed fan-out); this
benchmark measures :mod:`repro.parallel.ddp` parallelizing a *single*
ContraTopic training run by sharding every batch across forked ranks
with shared-memory BOW/parameter/gradient buffers and size-weighted
gradient averaging.

Three legs train the same profile from the same seed — ``workers=1``
(the exact serial trainer, through the identity exchange), ``workers=2``
and ``workers=4`` — and the contract is:

* every leg converges: final epoch loss finite, and each DDP leg's final
  loss within a small relative band of the serial leg's (the averaged
  gradient equals the serial gradient up to the documented
  shard-randomness caveats, so trajectories stay statistically close);
* on an adequately-parallel machine (>= 4 cores, strict mode) the
  scaling targets hold: >= 1.6x at 2 ranks, >= 2.5x at 4 ranks.

Each leg's wall-clock lands in the report as ``ddp_wall_seconds_w<N>``;
the report roll-up derives ``ddp_docs_per_sec_w<N>`` and
``ddp_speedup_w<N>`` totals, which ``benchmarks/check_regression.py``
gates against ``benchmarks/baselines/BENCH_ddp.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import BENCH_DTYPE, STRICT, emit_report, print_block
from repro.experiments.context import ExperimentContext
from repro.telemetry import MetricsRegistry
from repro.telemetry.report import DDP_DOCS_KEY, DDP_WALL_KEY_PREFIX
from repro.tensor import default_dtype
from repro.training.trainer import RunSpec, Trainer

LEGS = (1, 2, 4)

#: Acceptance targets on a 4-core runner; only asserted when the machine
#: can physically deliver them (and in strict mode — at smoke scale the
#: per-shard work is too small to beat the dispatch overhead).
SPEEDUP_TARGETS = {2: 1.6, 4: 2.5}

#: How far a DDP leg's final epoch loss may drift from the serial leg's.
#: Shard-level randomness (dropout, reparameterization noise, contrastive
#: sampling see shards, not the full batch) makes the runs statistically —
#: not bitwise — equivalent.
LOSS_REL_TOL = 0.15


def test_ddp_scaling_curve(settings_20ng, bench_registry):
    context = ExperimentContext(settings_20ng)
    train = context.dataset.train
    registry = MetricsRegistry()

    # Warm the shared caches (corpus load, NPMI, embeddings, BOW cast)
    # outside the timed region so the serial leg doesn't pay one-time
    # costs the DDP legs then inherit for free.
    context.build("contratopic", seed=0)
    with default_dtype(BENCH_DTYPE):
        train.bow_matrix(np.dtype(BENCH_DTYPE))

    walls: dict[int, float] = {}
    final_losses: dict[int, float] = {}
    for workers in LEGS:
        with default_dtype(BENCH_DTYPE):
            model = context.build("contratopic", seed=0)
            spec = RunSpec(model=model.config, ddp_workers=workers)
            start = time.perf_counter()
            with registry.timer(f"{DDP_WALL_KEY_PREFIX}{workers}"):
                Trainer(spec).fit(model, train)
            walls[workers] = time.perf_counter() - start
        exchange = model._trainer.exchange
        if getattr(exchange, "metrics", None) is not None:
            registry.merge(exchange.metrics)
        final_losses[workers] = float(model.history[-1]["total"])
        assert np.isfinite(final_losses[workers]), (
            f"workers={workers} leg diverged: {final_losses[workers]}"
        )

    # Every leg trains the same document count; docs/sec per leg derives
    # from one leg's worth of work.
    registry.counter(DDP_DOCS_KEY, absolute=True).value = float(
        len(train) * settings_20ng.epochs
    )
    train.record_cast_stats(registry)

    serial_loss = final_losses[1]
    for workers in LEGS[1:]:
        drift = abs(final_losses[workers] - serial_loss) / abs(serial_loss)
        assert drift <= LOSS_REL_TOL, (
            f"workers={workers} final loss {final_losses[workers]:.4f} "
            f"drifted {drift:.1%} from serial {serial_loss:.4f}"
        )

    speedups = {w: walls[1] / walls[w] for w in LEGS[1:]}
    print_block(
        f"ddp scaling ({len(train)} docs, {os.cpu_count()} cores, "
        f"{BENCH_DTYPE})\n"
        + "\n".join(
            f"  workers={w}: {walls[w]:8.2f}s"
            f"  loss {final_losses[w]:10.4f}"
            + (f"  speedup {speedups[w]:5.2f}x" if w in speedups else "")
            for w in LEGS
        )
    )

    bench_registry.merge(registry)
    emit_report(
        "ddp",
        registry=registry,
        meta={
            "suite": "ddp",
            "dataset": settings_20ng.dataset,
            "model": "contratopic",
            "epochs": settings_20ng.epochs,
            "legs": list(LEGS),
            "cpu_count": os.cpu_count(),
            "dtype": BENCH_DTYPE,
            "speedups": {str(w): speedups[w] for w in speedups},
            "final_losses": {str(w): final_losses[w] for w in LEGS},
        },
    )

    if STRICT and (os.cpu_count() or 1) >= 4:
        for workers, target in SPEEDUP_TARGETS.items():
            assert speedups[workers] >= target, (
                f"{workers}-rank run only {speedups[workers]:.2f}x faster "
                f"than serial (target {target}x on {os.cpu_count()} cores)"
            )

"""Extension bench: the §VI multi-level (topic + document) framework.

The paper's future-work hypothesis is that adding a document-wise level
"enhances both topic interpretability and document representation".
Measured here: topic-level metrics must not degrade, and km-Purity should
match or improve over plain ContraTopic.
"""

from benchmarks.conftest import STRICT, print_block
from repro.cluster.kmeans import KMeans
from repro.core import ContraTopicConfig, npmi_kernel
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.extensions import MultiLevelConfig, MultiLevelContraTopic
from repro.metrics.clustering_metrics import normalized_mutual_information, purity
from repro.metrics.coherence import coherence_by_percentage


def test_multilevel_extension(benchmark, settings_20ng, bench_registry):
    context = ExperimentContext(settings_20ng)
    settings = context.settings

    def run():
        results = {}
        for name, lambda_document in (("contratopic", 0.0), ("multi-level", 5.0)):
            backbone = context.build("etm", seed=0)
            model = MultiLevelContraTopic(
                backbone,
                npmi_kernel(context.npmi_train, settings.kernel_temperature),
                ContraTopicConfig(
                    lambda_weight=settings.resolved_lambda(),
                    negative_weight=settings.negative_weight,
                ),
                MultiLevelConfig(lambda_document=lambda_document),
            )
            model.fit(context.dataset.train)
            beta = model.topic_word_matrix()
            coherence = coherence_by_percentage(
                beta, context.npmi_test, percentages=(0.1, 1.0)
            )
            theta = model.transform(context.dataset.test)
            assignments = KMeans(20, seed=0).fit_predict(theta)
            results[name] = {
                "coh@10%": coherence[0.1],
                "coh@100%": coherence[1.0],
                "km-purity@20": purity(assignments, context.dataset.test.labels),
                "km-nmi@20": normalized_mutual_information(
                    assignments, context.dataset.test.labels
                ),
            }
        return results

    with bench_registry.timer("extension_multilevel/run"):
        results = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["model"] + list(next(iter(results.values())))
    rows = [[name] + list(values.values()) for name, values in results.items()]
    print_block(format_table(headers, rows, title="§VI multi-level extension (20NG)"))

    multi = results["multi-level"]
    single = results["contratopic"]
    if STRICT:
        # interpretability must not collapse with the document level added
        assert multi["coh@100%"] > single["coh@100%"] - 0.08
        # and document representation should hold up or improve
        assert multi["km-purity@20"] > single["km-purity@20"] - 0.05

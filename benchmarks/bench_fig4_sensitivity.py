"""Figure 4 — sensitivity of λ and v on 20NG and Yahoo.

Expected shape: coherence of the best topics grows as λ grows from 0 (then
saturates / dips when λ dominates the ELBO); v shows a fast rise then a
plateau — "the choice of λ is more sensitive to different datasets while v
seems to be less sensitive".
"""

import pytest

from benchmarks.conftest import STRICT, print_block
from repro.experiments.fig45_sensitivity import (
    format_sensitivity,
    run_lambda_sensitivity,
    run_v_sensitivity,
)


@pytest.mark.parametrize("dataset", ["20ng", "yahoo"])
def test_fig4_lambda_sensitivity(benchmark, dataset, request, bench_registry):
    settings = request.getfixturevalue(f"settings_{dataset}")
    with bench_registry.timer(f"fig4/lambda/{dataset}"):
        result = benchmark.pedantic(
            run_lambda_sensitivity, args=(settings,), rounds=1, iterations=1
        )
    print_block(format_sensitivity(result))

    lambdas = sorted(result.coherence_min)
    zero = lambdas[0]
    assert zero == 0.0
    if STRICT:
        # Some positive λ improves all-topic coherence over λ=0.
        best = max(result.coherence_min[lam] for lam in lambdas[1:])
        assert best > result.coherence_min[zero]


@pytest.mark.parametrize("dataset", ["20ng"])
def test_fig4_v_sensitivity(benchmark, dataset, request, bench_registry):
    settings = request.getfixturevalue(f"settings_{dataset}")
    with bench_registry.timer(f"fig4/v/{dataset}"):
        result = benchmark.pedantic(
            run_v_sensitivity, args=(settings,), rounds=1, iterations=1
        )
    print_block(format_sensitivity(result))

    vs = sorted(result.coherence_min)
    # v=1 (no positive pairs within a topic sample) should not be the best
    # choice; some larger v must beat it.
    assert max(result.coherence_min[v] for v in vs[1:]) >= result.coherence_min[vs[0]]

"""Serving benchmark: the online-inference half of the CI perf guard.

Drives the resilient inference service (:mod:`repro.serving`) with the
deterministic load generator on a bundled-corpus model and emits
``BENCH_serving.json``, which ``benchmarks/check_regression.py`` compares
against the checked-in baseline.  The gated totals are the end-to-end
wall-clock, the p50/p95/p99 request latencies, and the
``serving_requests_per_sec`` throughput.

A second (ungated) chaos test replays the same request stream under
injected NaN outputs, worker death, latency spikes and corrupt
checkpoint hot-loads, and asserts the serving invariants:

* **every** request receives a well-formed response (zero unanswered);
* the circuit breaker trips on consecutive NaN batches and recovers
  (later requests are served ``ok`` again);
* a corrupt hot-load rolls back to the serving model (a rollback is
  counted, no request fails because of it) and a later clean publication
  goes live.
"""

from __future__ import annotations

from functools import lru_cache

from benchmarks.conftest import FAST, emit_report, print_block
from repro.data import load_20ng
from repro.experiments.reporting import format_table
from repro.io import save_checkpoint
from repro.models import ProdLDA
from repro.models.base import NTMConfig
from repro.serving import (
    InferenceService,
    LoadProfile,
    ModelRegistry,
    OK,
    ServingConfig,
    build_requests,
    run_load,
)
from repro.telemetry import MetricsRegistry, load_report
from repro.training.faults import FaultInjector, FaultPlan

#: Load volume: enough traffic for stable percentiles in STRICT mode,
#: a quick smoke in FAST mode.
NUM_REQUESTS = 120 if FAST else 600
CONCURRENCY = 24

#: Service shape used by both legs (small batches keep latency visible).
SERVE_CONFIG = ServingConfig(
    max_batch_size=16,
    max_wait_ms=2.0,
    breaker_threshold=3,
    breaker_cooldown_ms=50.0,
)


@lru_cache(maxsize=1)
def _fitted():
    """One small trained model + corpus shared by both benchmark legs."""
    corpus = load_20ng(scale=0.12).train
    config = NTMConfig(
        num_topics=8,
        hidden_sizes=(32,),
        epochs=2 if FAST else 4,
        batch_size=64,
        learning_rate=3e-3,
        dropout=0.1,
        seed=0,
    )
    model = ProdLDA(corpus.vocab_size, config)
    model.fit(corpus)
    model.eval()
    return corpus, model, config


def _service(corpus, model, *, metrics=None, faults=None, registry=None):
    return InferenceService(
        registry or ModelRegistry(model),
        corpus.vocabulary,
        config=SERVE_CONFIG,
        metrics=metrics,
        faults=faults,
    )


def test_serving_front_door_bench(benchmark):
    """Clean-path latency/throughput; emits the gated BENCH_serving.json."""
    corpus, model, _ = _fitted()
    metrics = MetricsRegistry()
    profile = LoadProfile(
        num_requests=NUM_REQUESTS,
        concurrency=CONCURRENCY,
        coherence_weight=0.0,
        seed=0,
    )
    requests = build_requests(corpus, profile)
    results = {}

    def run():
        service = _service(corpus, model, metrics=metrics)
        results["report"] = run_load(service, requests, concurrency=CONCURRENCY)

    benchmark.pedantic(run, rounds=1, iterations=1)
    report = results["report"]
    report.record_into(metrics)

    report_path = emit_report(
        "serving",
        registry=metrics,
        meta={
            "suite": "serving",
            "requests": NUM_REQUESTS,
            "concurrency": CONCURRENCY,
            "status_counts": report.status_counts,
        },
    )
    totals = load_report(report_path)["totals"]

    print_block(
        format_table(
            ["metric", "value"],
            [[k, f"{v:.6g}"] for k, v in sorted(totals.items())
             if k.startswith("serving")],
        )
    )

    # The serving invariant, even on the clean path: nothing unanswered.
    assert report.unanswered == 0
    assert report.status_counts[OK] == NUM_REQUESTS
    assert totals["serving_requests"] == NUM_REQUESTS
    assert totals["serving_wall_seconds"] > 0
    assert totals["serving_p50_seconds"] > 0
    assert totals["serving_p95_seconds"] >= totals["serving_p50_seconds"]
    assert totals["serving_requests_per_sec"] > 0
    # Micro-batching must actually coalesce: far fewer batches than
    # requests (otherwise the front door is a per-request dispatcher).
    batches = report.stats["count_batches"]
    assert batches < NUM_REQUESTS / 2, (
        f"{batches} batches for {NUM_REQUESTS} requests — no coalescing"
    )


def test_serving_chaos_resilience(tmp_path):
    """Chaos leg: NaN + death + latency + corrupt reloads, zero dropped."""
    corpus, model, config = _fitted()
    # Deterministic plan: the first batch attempt dies (absorbed by the
    # retry, which hits a latency spike and then succeeds), followed by a
    # NaN window wide enough for three consecutive transform batches
    # (trips the breaker; open batches consume no steps), and the first
    # hot-load corrupted on disk (rolls back).
    faults = FaultInjector(
        FaultPlan(
            serve_death_steps=(0,),
            serve_latency_steps=(1,),
            serve_nan_steps=tuple(range(3, 12)),
            serve_latency_seconds=0.02,
            corrupt_checkpoint_loads=(0,),
            seed=0,
        )
    )
    factory = lambda: ProdLDA(corpus.vocab_size, config)  # noqa: E731
    registry = ModelRegistry(model, factory=factory, faults=faults)
    service = _service(corpus, model, faults=faults, registry=registry)

    ckpt = tmp_path / "published.npz"
    save_checkpoint(model, ckpt)

    def publish_and_reload():
        save_checkpoint(model, ckpt)
        registry.load(ckpt)

    requests = build_requests(
        corpus,
        LoadProfile(
            num_requests=NUM_REQUESTS,
            concurrency=CONCURRENCY,
            coherence_weight=0.0,
            seed=1,
        ),
    )
    report = run_load(
        service,
        requests,
        concurrency=CONCURRENCY,
        reload_every=max(10, NUM_REQUESTS // 6),
        reload_hook=publish_and_reload,
    )

    counts = report.status_counts
    print_block(
        format_table(
            ["status", "count"], [[k, str(v)] for k, v in counts.items()]
        )
    )

    # 1. Every request got a well-formed response.
    assert report.unanswered == 0
    assert sum(counts.values()) == NUM_REQUESTS
    assert counts["error"] == 0  # deaths are retried, NaN degrades
    # 2. The injected NaN run tripped the breaker, and the service
    #    recovered: the stream both degraded *and* kept serving ok.
    assert service.breaker.trips >= 1
    assert counts["degraded"] > 0
    assert counts[OK] > 0
    # 3. The worker death was absorbed by the retry path.
    assert faults.counts["serve_death"] >= 1
    assert report.stats["count_retries"] >= 1
    # 4. The corrupt hot-load rolled back; a later clean one went live.
    assert faults.counts["corrupted_loads"] == 1
    assert registry.rollbacks >= 1
    assert registry.reloads >= 1
    assert registry.version > 1

"""Tables IV-VI — case study: the highest-NPMI topics of each model.

Regenerates the qualitative tables for all three datasets.  Asserted
shape: ContraTopic's top-5 topics are (a) high-NPMI and (b) non-redundant
(distinct word sets), while at least one baseline shows the repetition the
paper calls out for CLNTM.
"""

import pytest

from benchmarks.conftest import STRICT, print_block
from repro.experiments.tables456_casestudy import (
    CASESTUDY_MODELS,
    describe_topic,
    format_casestudy,
    run_casestudy,
)


def _redundancy(topics) -> float:
    """Max pairwise overlap fraction among the listed topics' words."""
    worst = 0.0
    for i in range(len(topics)):
        for j in range(i + 1, len(topics)):
            a, b = set(topics[i][1]), set(topics[j][1])
            worst = max(worst, len(a & b) / len(a))
    return worst


@pytest.mark.parametrize("dataset", ["20ng", "yahoo", "nytimes"])
def test_casestudy_tables(benchmark, dataset, request, bench_registry):
    settings = request.getfixturevalue(f"settings_{dataset}")
    with bench_registry.timer(f"casestudy/{dataset}"):
        listings = benchmark.pedantic(
            run_casestudy,
            args=(settings,),
            kwargs={"models": CASESTUDY_MODELS},
            rounds=1,
            iterations=1,
        )
    print_block(format_casestudy(listings, dataset))

    by_model = {listing.model: listing for listing in listings}
    contra = by_model["contratopic"]

    if STRICT:
        # (a) top topics are genuinely coherent under test-set NPMI
        assert all(npmi > 0.2 for npmi, _ in contra.topics)

        # (b) each top ContraTopic topic maps to a recognizable theme bank
        for _, words in contra.topics:
            description = describe_topic(words)
            assert "unknown" not in description

    # print the LLM-substitute descriptions, as the paper does
    for npmi_value, words in contra.topics:
        print(f"  {npmi_value:+.3f}  {describe_topic(words)}")

    # quantify the §V.K repetition diagnosis across the listed models
    for listing in listings:
        worst = _redundancy(listing.topics)
        print(f"  max top-word overlap among {listing.model}'s top-5: {worst:.2f}")

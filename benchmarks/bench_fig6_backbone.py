"""Figure 6 — backbone substitution (ETM / WLDA / WeTe ± regularizer).

Expected shape: "Our regularizer consistently improves topic coherence and
diversity across different backbone models" — for every backbone the
+L_con variant must improve all-topics coherence.
"""

import pytest

from benchmarks.conftest import STRICT, print_block
from repro.experiments.fig6_backbone import BACKBONES, format_fig6, run_fig6


@pytest.mark.parametrize("dataset", ["20ng", "yahoo"])
def test_fig6_backbone_substitution(benchmark, dataset, request, bench_registry):
    settings = request.getfixturevalue(f"settings_{dataset}")
    with bench_registry.timer(f"fig6/{dataset}"):
        rows = benchmark.pedantic(
            run_fig6, args=(settings,), kwargs={"backbones": BACKBONES}, rounds=1, iterations=1
        )
    print_block(format_fig6(rows, dataset))

    improved = 0
    for row in rows:
        # The regularizer's effect concentrates in the tail topics (the
        # all-topics value); head topics are saturated at this scale.
        plain = row.plain_coherence[max(row.plain_coherence)]
        regularized = row.regularized_coherence[max(row.regularized_coherence)]
        if regularized > plain:
            improved += 1
    # "consistently improves" — at least 2 of the 3 backbones must gain
    # all-topics coherence under their calibrated λ.
    if STRICT:
        assert improved >= 2, f"regularizer improved only {improved}/3 backbones"

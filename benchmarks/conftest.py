"""Shared configuration for the benchmark suite.

Every benchmark reproduces one table or figure of the paper at the default
experiment scale (see ``repro.experiments.context.ExperimentSettings``) and
prints the paper-style rows/series so the run log doubles as the
reproduction record.

Environment variables
---------------------
``REPRO_BENCH_FAST``
    ``1`` / ``true`` / ``yes`` / ``on`` (any case) switch to the
    smoke-test scale: every workload still runs and checks structural
    invariants, but the paper-shape assertions (which only hold for
    adequately-trained models) are skipped.  ``0`` / ``false`` / ``no`` /
    ``off``, the empty string, or unset keep the full, strict scale.
    Anything else is an error — a typo must not silently pick a mode.
``REPRO_BENCH_TELEMETRY_DIR``
    Directory the ``BENCH_*.json`` telemetry reports are written to
    (default: the current working directory).
``REPRO_BENCH_DTYPE``
    Precision the perf-measurement benchmarks *train* in (default
    ``float32`` — the fused hot path's intended fast configuration).
    Metrics/NPMI computations stay float64 regardless.

Telemetry
---------
Every benchmark test is timed into a session-wide
:class:`repro.telemetry.MetricsRegistry` under ``bench/<test name>``
(autouse fixture); individual benchmarks add finer-grained stage timers
via the ``bench_registry`` fixture.  At session end the aggregate is
written to ``BENCH_suite.json``; benchmarks with richer telemetry (op
tables, epoch tables) emit their own report through :func:`emit_report`.

Because :func:`repro.telemetry.profile_ops` blocks nest, op-profiled
benchmark sections also fan their per-op rows into the session registry
via :func:`profile_into_suite`, so ``BENCH_suite.json`` carries a
populated ``ops`` table without profiling (and thereby distorting) the
unprofiled headline timings.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentSettings
from repro.telemetry import MetricsRegistry, build_report, profile_ops, write_report
from repro.tensor import resolve_dtype

_TRUE_VALUES = {"1", "true", "yes", "on"}
_FALSE_VALUES = {"", "0", "false", "no", "off"}


def parse_env_flag(name: str, default: bool = False) -> bool:
    """Parse a boolean environment variable predictably.

    Unlike raw truthiness of the env string (under which ``"0"`` was
    previously *truthy*), this accepts exactly the documented spellings.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _TRUE_VALUES:
        return True
    if value in _FALSE_VALUES:
        return False
    raise ValueError(
        f"{name}={raw!r} is not a valid flag; use one of "
        f"{sorted(_TRUE_VALUES)} or {sorted(_FALSE_VALUES)}"
    )


#: True when REPRO_BENCH_FAST selects the smoke-test scale.
FAST = parse_env_flag("REPRO_BENCH_FAST")

#: False when in fast mode — the smoke run still executes every workload
#: and checks structural invariants, but skips the paper-shape assertions,
#: which only hold for adequately-trained models.
STRICT = not FAST

#: Training precision of the perf-measurement benchmarks (validated so a
#: typo in REPRO_BENCH_DTYPE fails loudly instead of silently changing
#: what the numbers mean).
BENCH_DTYPE = str(resolve_dtype(os.environ.get("REPRO_BENCH_DTYPE", "float32")))


def telemetry_dir() -> Path:
    """Directory BENCH_*.json reports are written to."""
    return Path(os.environ.get("REPRO_BENCH_TELEMETRY_DIR", "."))


def emit_report(name: str, registry=None, epochs=None, meta=None) -> Path:
    """Write ``BENCH_<name>.json`` into :func:`telemetry_dir`."""
    merged_meta = {"fast": FAST, **(meta or {})}
    report = build_report(name, registry=registry, epochs=epochs, meta=merged_meta)
    return write_report(report, telemetry_dir() / f"BENCH_{name}.json")


@pytest.fixture(scope="session")
def bench_registry():
    """Session-wide telemetry sink; dumped to BENCH_suite.json at exit."""
    registry = MetricsRegistry()
    yield registry
    emit_report("suite", registry=registry)


@pytest.fixture(autouse=True)
def _time_each_benchmark(request, bench_registry):
    """Record every test's wall time under ``bench/<test name>``."""
    with bench_registry.timer(f"bench/{request.node.name}"):
        yield


@pytest.fixture(scope="session")
def profile_into_suite(bench_registry):
    """Op-profile a block into a local registry *and* the suite registry.

    ``with profile_into_suite(registry): ...`` — both registries receive
    the ``op/*`` rows (nested :func:`profile_ops` blocks), which is what
    populates the ``ops`` table of ``BENCH_suite.json``.
    """

    @contextlib.contextmanager
    def profile(registry: MetricsRegistry):
        with profile_ops(bench_registry), profile_ops(registry):
            yield registry

    return profile


def _base(dataset: str) -> ExperimentSettings:
    settings = ExperimentSettings(dataset=dataset)
    if not STRICT:
        settings = settings.fast()
    return settings


@pytest.fixture(scope="session")
def settings_20ng() -> ExperimentSettings:
    return _base("20ng")


@pytest.fixture(scope="session")
def settings_yahoo() -> ExperimentSettings:
    return _base("yahoo")


@pytest.fixture(scope="session")
def settings_nytimes() -> ExperimentSettings:
    return _base("nytimes")


def print_block(text: str) -> None:
    """Print a result block, clearly delimited in benchmark output."""
    print()
    print(text)
    print()

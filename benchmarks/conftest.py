"""Shared configuration for the benchmark suite.

Every benchmark reproduces one table or figure of the paper at the default
experiment scale (see ``repro.experiments.context.ExperimentSettings``) and
prints the paper-style rows/series so the run log doubles as the
reproduction record.  Set ``REPRO_BENCH_FAST=1`` to use the smoke-test
scale instead (useful for CI).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentSettings


#: False when REPRO_BENCH_FAST is set — the smoke run still executes every
#: workload and checks structural invariants, but skips the paper-shape
#: assertions, which only hold for adequately-trained models.
STRICT = not os.environ.get("REPRO_BENCH_FAST")


def _base(dataset: str) -> ExperimentSettings:
    settings = ExperimentSettings(dataset=dataset)
    if not STRICT:
        settings = settings.fast()
    return settings


@pytest.fixture(scope="session")
def settings_20ng() -> ExperimentSettings:
    return _base("20ng")


@pytest.fixture(scope="session")
def settings_yahoo() -> ExperimentSettings:
    return _base("yahoo")


@pytest.fixture(scope="session")
def settings_nytimes() -> ExperimentSettings:
    return _base("nytimes")


def print_block(text: str) -> None:
    """Print a result block, clearly delimited in benchmark output."""
    print()
    print(text)
    print()

"""Extension bench: online ContraTopic over a drifting stream (§VI).

Measured shape: the warm-started online model keeps producing coherent
topics on every slice, topic drift spikes when the new theme emerges, and
at least one topic re-specializes onto the emerging theme's vocabulary.
"""

from benchmarks.conftest import print_block
from repro.core import ContraTopicConfig
from repro.data.theme_banks import THEME_BANKS
from repro.embeddings import build_embeddings
from repro.experiments.reporting import format_table
from repro.extensions import (
    DriftingStreamConfig,
    OnlineConfig,
    OnlineContraTopic,
    generate_drifting_stream,
)
from repro.metrics import compute_npmi_matrix, topic_coherence
from repro.models import ETM, NTMConfig


def test_online_extension(benchmark, bench_registry):
    stream_config = DriftingStreamConfig(
        base_themes=("space", "medicine", "finance", "cooking"),
        emerging_themes=("wrestling",),
        emerge_at=2,
        num_slices=4,
        docs_per_slice=400,
        seed=5,
    )

    def run():
        slices, _, union = generate_drifting_stream(stream_config)
        vocab_size = slices[0].vocab_size
        # embeddings from the union sample: words of not-yet-emerged themes
        # need non-degenerate vectors for any topic to adopt them later
        embeddings = build_embeddings(union, dim=40)

        def backbone_factory():
            return ETM(
                vocab_size,
                NTMConfig(num_topics=10, hidden_sizes=(48,), epochs=25, batch_size=128),
                embeddings.vectors,
            )

        online = OnlineContraTopic(
            backbone_factory,
            ContraTopicConfig(lambda_weight=40.0, negative_weight=3.0),
            OnlineConfig(kernel_decay=0.6, epochs_per_slice=12),
        )
        rows = []
        for t, corpus in enumerate(slices):
            result = online.partial_fit(corpus)
            npmi = compute_npmi_matrix(corpus)
            coherence = topic_coherence(online.topic_word_matrix(), npmi)
            rows.append([t, coherence, result.mean_drift])
        return rows, online, slices

    with bench_registry.timer("extension_online/run"):
        rows, online, slices = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        format_table(
            ["slice", "coherence (slice NPMI)", "mean drift"],
            rows,
            title="Online ContraTopic over a drifting stream",
        )
    )

    coherences = [row[1] for row in rows]
    drifts = [row[2] for row in rows]
    # the model stays useful on every slice
    assert min(coherences[1:]) > 0.2
    # drift at the emergence slice exceeds the steady-state drift after it
    assert drifts[stream_config.emerge_at] > 0.0

    # at least one final topic is dominated by the emerging theme's words
    final_words = online.history[-1].top_words
    wrestling = set(THEME_BANKS["wrestling"])
    best_hit = max(len(set(words) & wrestling) for words in final_words)
    print(f"best wrestling-bank overlap in final topics: {best_hit}/10")
    assert best_hit >= 5

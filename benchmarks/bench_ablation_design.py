"""Ablations of this reproduction's own design choices (beyond Table II).

DESIGN.md documents two calibration knobs added on top of the paper's
Eq. 2 (both default-off recovers the literal equation):

* the **kernel temperature** sharpening exp(K(·)/T) — without it the
  denominator's O(K·v) noise floor drowns the pair structure at this
  corpus scale;
* the **negative-pair weight** (explicitly suggested in the paper's §IV.B
  balance discussion).

This bench quantifies both, plus a metric-robustness check: the winner
under NPMI coherence must also win under C_v.
"""

from benchmarks.conftest import STRICT, print_block
from repro.core import ContraTopic, ContraTopicConfig, npmi_kernel
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.metrics.coherence import coherence_by_percentage
from repro.metrics.cv_coherence import cv_coherence
from repro.metrics.diversity import diversity_by_percentage


def _train_variant(context, kernel_temperature, negative_weight, seed=0):
    backbone = context.build("etm", seed=seed)
    model = ContraTopic(
        backbone,
        npmi_kernel(context.npmi_train, temperature=kernel_temperature),
        ContraTopicConfig(
            lambda_weight=context.settings.resolved_lambda(),
            negative_weight=negative_weight,
        ),
    )
    model.fit(context.dataset.train)
    return model


def test_design_choice_ablation(benchmark, settings_20ng, bench_registry):
    context = ExperimentContext(settings_20ng)

    grid = [
        ("literal Eq.2 (T=1, nw=1)", 1.0, 1.0),
        ("T=0.25, nw=1", 0.25, 1.0),
        ("T=0.25, nw=3 (default)", 0.25, 3.0),
    ]

    def run():
        rows = []
        for label, temperature, negative_weight in grid:
            model = _train_variant(context, temperature, negative_weight)
            beta = model.topic_word_matrix()
            coh = coherence_by_percentage(
                beta, context.npmi_test, percentages=(0.1, 1.0)
            )
            div = diversity_by_percentage(
                beta, context.npmi_test, percentages=(1.0,)
            )
            cv = cv_coherence(beta, context.dataset.test, window_size=30)
            rows.append([label, coh[0.1], coh[1.0], div[1.0], cv])
        # the plain backbone for reference
        etm = context.build("etm", seed=0)
        etm.fit(context.dataset.train)
        beta = etm.topic_word_matrix()
        coh = coherence_by_percentage(beta, context.npmi_test, percentages=(0.1, 1.0))
        div = diversity_by_percentage(beta, context.npmi_test, percentages=(1.0,))
        rows.append(
            ["plain ETM (no L_con)", coh[0.1], coh[1.0], div[1.0],
             cv_coherence(beta, context.dataset.test, window_size=30)]
        )
        return rows

    with bench_registry.timer("ablation_design/run"):
        rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        format_table(
            ["configuration", "coh@10%", "coh@100%", "div@100%", "C_v"],
            rows,
            title="Design-choice ablation (20NG)",
        )
    )

    by_label = {row[0]: row for row in rows}
    default = by_label["T=0.25, nw=3 (default)"]
    literal = by_label["literal Eq.2 (T=1, nw=1)"]
    plain = by_label["plain ETM (no L_con)"]
    if STRICT:
        # the calibrated kernel beats the literal one on all-topic coherence
        assert default[2] >= literal[2] - 0.02
        # the regularized model beats the plain backbone under BOTH metrics
        assert default[2] > plain[2]
        assert default[4] > plain[4] - 0.05  # C_v agrees (within noise)

"""Figure 5 — sensitivity of λ and v on NYTimes.

Same protocol as Figure 4 but on the largest profile, whose λ grid is
scaled up (the paper: "the scale of λ in the NYTimes is also much larger
than the other two datasets"); the trend must match Figure 4's.
"""

from benchmarks.conftest import STRICT, print_block
from repro.experiments.fig45_sensitivity import (
    LAMBDA_GRID_NYT,
    format_sensitivity,
    run_lambda_sensitivity,
    run_v_sensitivity,
)


def test_fig5_lambda_sensitivity_nytimes(benchmark, settings_nytimes, bench_registry):
    with bench_registry.timer("fig5/lambda/nytimes"):
        result = benchmark.pedantic(
            run_lambda_sensitivity,
            args=(settings_nytimes,),
            kwargs={"lambda_grid": LAMBDA_GRID_NYT},
            rounds=1,
            iterations=1,
        )
    print_block(format_sensitivity(result))

    lambdas = sorted(result.coherence_min)
    assert lambdas[0] == 0.0
    if STRICT:
        assert (
            max(result.coherence_min[lam] for lam in lambdas[1:])
            > result.coherence_min[0.0]
        )
    # NYTimes is unlabeled: no clustering series should appear.
    assert not result.km_purity_max


def test_fig5_v_sensitivity_nytimes(benchmark, settings_nytimes, bench_registry):
    with bench_registry.timer("fig5/v/nytimes"):
        result = benchmark.pedantic(
            run_v_sensitivity, args=(settings_nytimes,), rounds=1, iterations=1
        )
    print_block(format_sensitivity(result))
    assert len(result.coherence_min) >= 4

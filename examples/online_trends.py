"""Trend detection with online ContraTopic (the paper's §VI future work).

A document stream arrives in time slices; partway through, a new theme
(professional wrestling) starts appearing.  The online model consumes one
slice at a time — warm-starting from the previous slice and exponentially
decaying its NPMI kernel — and flags the topics that re-specialized, which
is exactly where the new theme lands.

    python examples/online_trends.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ContraTopicConfig
from repro.embeddings import build_embeddings
from repro.extensions import (
    DriftingStreamConfig,
    OnlineConfig,
    OnlineContraTopic,
    generate_drifting_stream,
)
from repro.models import ETM, NTMConfig


def main() -> None:
    print("Generating a drifting stream (wrestling emerges at slice 2)...")
    slices, _, union = generate_drifting_stream(
        DriftingStreamConfig(
            base_themes=("space", "medicine", "finance", "cooking"),
            emerging_themes=("wrestling",),
            emerge_at=2,
            num_slices=4,
            docs_per_slice=400,
            seed=3,
        )
    )
    vocab_size = slices[0].vocab_size
    print(f"  {len(slices)} slices, shared vocabulary of {vocab_size} words")

    # Train embeddings on the balanced union sample so emerging-theme
    # words have usable vectors before the theme appears in the stream.
    embeddings = build_embeddings(union, dim=40)

    def backbone_factory() -> ETM:
        return ETM(
            vocab_size,
            NTMConfig(num_topics=10, hidden_sizes=(48,), epochs=25, batch_size=128),
            embeddings.vectors,
        )

    online = OnlineContraTopic(
        backbone_factory,
        ContraTopicConfig(lambda_weight=40.0, negative_weight=3.0),
        OnlineConfig(kernel_decay=0.6, epochs_per_slice=12),
    )

    for t, corpus in enumerate(slices):
        result = online.partial_fit(corpus)
        moved = online.emerging_topics(threshold=0.25)
        print(f"\nslice {t}: mean topic drift = {result.mean_drift:.3f}; "
              f"re-specialized topics: {moved or 'none'}")
        for k in moved:
            print(f"  topic {k} now: {' '.join(result.top_words[k][:8])}")

    print("\nFinal topics:")
    for k, words in enumerate(online.history[-1].top_words):
        print(f"  topic {k}: {' '.join(words[:8])}")


if __name__ == "__main__":
    main()

"""Attach the ContraTopic regularizer to different backbone NTMs (§V.I).

The paper's Figure 6 shows the topic-wise contrastive regularizer is
architecture-agnostic: it improves ETM, WLDA and WeTe alike.  This example
trains each backbone with and without λ·L_con on the Yahoo profile and
prints the before/after interpretability metrics.

    python examples/backbone_substitution.py
"""

from __future__ import annotations

from repro import (
    ContraTopic,
    ContraTopicConfig,
    ETM,
    NTMConfig,
    WLDA,
    WeTe,
    build_embeddings,
    compute_npmi_matrix,
    load_yahoo,
    npmi_kernel,
    topic_coherence,
    topic_diversity,
)


def main() -> None:
    print("Loading the miniaturized Yahoo profile...")
    dataset = load_yahoo(scale=0.25)
    embeddings = build_embeddings(dataset.train, dim=50)
    npmi_train = compute_npmi_matrix(dataset.train)
    npmi_test = compute_npmi_matrix(dataset.test)
    kernel = npmi_kernel(npmi_train, temperature=0.25)

    def config(seed: int = 0) -> NTMConfig:
        return NTMConfig(num_topics=30, hidden_sizes=(64,), epochs=30, batch_size=200, seed=seed)

    def make_backbone(name: str):
        if name == "etm":
            return ETM(dataset.vocab_size, config(), embeddings.vectors)
        if name == "wlda":
            return WLDA(dataset.vocab_size, config())
        return WeTe(dataset.vocab_size, config(), embeddings.vectors)

    # λ is grid-searched per configuration in the paper (§V.D); WLDA's
    # free-logit decoder wants a smaller weight than the embedding models.
    lambda_for = {"etm": 40.0, "wlda": 10.0, "wete": 40.0}

    header = f"{'backbone':10s} {'coh (plain)':>12s} {'coh (+L_con)':>13s} {'div (plain)':>12s} {'div (+L_con)':>13s}"
    print("\n" + header)
    print("-" * len(header))
    for name in ("etm", "wlda", "wete"):
        plain = make_backbone(name).fit(dataset.train)
        regularized = ContraTopic(
            make_backbone(name),
            kernel,
            ContraTopicConfig(lambda_weight=lambda_for[name], negative_weight=3.0),
        ).fit(dataset.train)

        row = [
            topic_coherence(plain.topic_word_matrix(), npmi_test),
            topic_coherence(regularized.topic_word_matrix(), npmi_test),
            topic_diversity(plain.topic_word_matrix()),
            topic_diversity(regularized.topic_word_matrix()),
        ]
        print(f"{name:10s} {row[0]:12.3f} {row[1]:13.3f} {row[2]:12.3f} {row[3]:13.3f}")

    print(
        "\nExpected shape (paper Fig. 6): the +L_con column improves or "
        "matches coherence for every backbone.  At this miniature scale "
        "the ETM gain is clearest; the full-percentage curves (and the "
        "per-backbone calibrated λ) live in "
        "benchmarks/bench_fig6_backbone.py."
    )


if __name__ == "__main__":
    main()

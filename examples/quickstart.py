"""Quickstart: train ContraTopic on the miniaturized 20NG corpus.

Runs in well under a minute on CPU:

    python examples/quickstart.py

Loads the corpus, trains word embeddings and the NPMI kernel, fits an
ETM-backbone ContraTopic model, and prints the discovered topics with
their coherence scores next to a plain-ETM baseline.
"""

from __future__ import annotations

import numpy as np

from repro import (
    ContraTopic,
    ContraTopicConfig,
    ETM,
    NTMConfig,
    build_embeddings,
    compute_npmi_matrix,
    load_20ng,
    npmi_kernel,
    topic_coherence,
    topic_diversity,
)
from repro.metrics.coherence import topic_npmi_scores


def main() -> None:
    print("Loading the miniaturized 20NG corpus...")
    dataset = load_20ng(scale=0.3)
    stats = dataset.train.stats()
    print(
        f"  train={stats.num_documents} docs, vocab={stats.vocabulary_size}, "
        f"avg length={stats.average_length:.1f}"
    )

    print("Training corpus embeddings (PPMI + SVD) and the NPMI kernel...")
    embeddings = build_embeddings(dataset.train, dim=50)
    npmi_train = compute_npmi_matrix(dataset.train)
    npmi_test = compute_npmi_matrix(dataset.test)  # evaluation on unseen data

    config = NTMConfig(num_topics=40, hidden_sizes=(64,), epochs=40, batch_size=200)

    print("Training the plain ETM baseline...")
    etm = ETM(dataset.vocab_size, config, embeddings.vectors).fit(dataset.train)

    print("Training ContraTopic (ETM + topic-wise contrastive regularizer)...")
    model = ContraTopic(
        ETM(dataset.vocab_size, config, embeddings.vectors),
        npmi_kernel(npmi_train, temperature=0.25),
        ContraTopicConfig(lambda_weight=40.0, num_sampled_words=10, negative_weight=3.0),
    ).fit(dataset.train)

    for name, fitted in (("ETM", etm), ("ContraTopic", model)):
        beta = fitted.topic_word_matrix()
        print(
            f"\n{name}: coherence@100%={topic_coherence(beta, npmi_test):.3f}  "
            f"coherence@10%={topic_coherence(beta, npmi_test, 0.1):.3f}  "
            f"diversity={topic_diversity(beta):.3f}"
        )

    print("\nTop ContraTopic topics (by test-set NPMI):")
    beta = model.topic_word_matrix()
    scores = topic_npmi_scores(beta, npmi_test)
    tops = model.top_words(dataset.train.vocabulary, 8)
    for k in np.argsort(-scores)[:8]:
        print(f"  {scores[k]:+.3f}  {' '.join(tops[k])}")


if __name__ == "__main__":
    main()

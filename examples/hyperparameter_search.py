"""Grid-search λ and v on a validation split (§V.D's protocol).

The paper tunes the regularizer hyper-parameters "on a validation set split
from the training corpus".  This example uses the library's
:func:`repro.experiments.grid_search.grid_search_contratopic`: sweep
(λ, v) on a validation split, select by a combined interpretability score,
refit the winner on the full training set, and report it on test.

    python examples/hyperparameter_search.py
"""

from __future__ import annotations

from repro import (
    ETM,
    NTMConfig,
    build_embeddings,
    compute_npmi_matrix,
    load_20ng,
    topic_coherence,
    topic_diversity,
)
from repro.experiments.grid_search import grid_search_contratopic
from repro.experiments.reporting import format_table


def main() -> None:
    dataset = load_20ng(scale=0.3)
    print(f"train={len(dataset.train)} docs, test={len(dataset.test)} docs")

    embeddings = build_embeddings(dataset.train, dim=50)
    config = NTMConfig(num_topics=30, hidden_sizes=(64,), epochs=30, batch_size=150)

    def backbone_factory(vocab_size: int) -> ETM:
        return ETM(vocab_size, config, embeddings.vectors)

    print("Sweeping (lambda, v) on a 20% validation split...")
    result, final = grid_search_contratopic(
        backbone_factory,
        dataset.train,
        lambda_grid=(0.0, 10.0, 40.0, 160.0),
        v_grid=(5, 10),
        valid_fraction=0.2,
        seed=0,
    )
    print(
        format_table(
            ["lambda", "v", "valid coherence", "valid diversity", "score"],
            result.as_rows(),
            title="validation grid (best first)",
        )
    )

    best = result.best
    print(f"\nWinner: lambda={best.lambda_weight}, v={best.num_sampled_words}; "
          "refitted on the full training set.")
    npmi_test = compute_npmi_matrix(dataset.test)
    beta = final.topic_word_matrix()
    print(
        f"Test: coherence={topic_coherence(beta, npmi_test):.3f}, "
        f"diversity={topic_diversity(beta):.3f}"
    )


if __name__ == "__main__":
    main()

"""Topic-model your own raw text corpus end to end.

The paper's intro motivates topic models as a knowledge-discovery tool for
large document collections.  This example shows the full path a downstream
user takes with their own documents: raw strings -> preprocessing (the
paper's §V.A pipeline) -> embeddings + NPMI -> ContraTopic -> inspecting
topics and classifying new documents by their topic mixture.

Here the "user corpus" is a synthetic support-ticket feed mixing hardware,
billing-ish (finance) and travel themes — replace ``make_corpus_texts``
with reading your own files.

    python examples/custom_corpus.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ContraTopic,
    ContraTopicConfig,
    ETM,
    NTMConfig,
    build_embeddings,
    compute_npmi_matrix,
    npmi_kernel,
)
from repro.data import PreprocessConfig, Preprocessor
from repro.data.synthetic import SyntheticCorpusConfig, SyntheticCorpusGenerator


def make_corpus_texts() -> tuple[list[str], list[str]]:
    """Stand-in for the user's own documents: three-theme ticket feed."""
    generator = SyntheticCorpusGenerator(
        SyntheticCorpusConfig(
            themes=("computers_help", "finance", "travel"),
            num_documents=900,
            average_length=35.0,
            seed=7,
        )
    )
    texts, _, _ = generator.generate()
    new_documents = [
        "my laptop screen is frozen after the software update and the "
        "wireless card will not install",
        "the bank charged interest on my credit card account and I need "
        "the loan refund",
        "our flight to the resort was cancelled and the hotel booking "
        "needs a new itinerary",
    ]
    return texts, new_documents


def main() -> None:
    texts, new_documents = make_corpus_texts()

    print(f"Preprocessing {len(texts)} raw documents...")
    preprocessor = Preprocessor(PreprocessConfig(min_doc_count=3))
    corpus = preprocessor.fit_transform(texts)
    print(f"  kept {len(corpus)} docs, vocabulary {corpus.vocab_size}")

    print("Building embeddings and NPMI from the corpus itself...")
    embeddings = build_embeddings(corpus, dim=40)
    npmi = compute_npmi_matrix(corpus)

    print("Training ContraTopic with K=8 topics...")
    config = NTMConfig(num_topics=8, hidden_sizes=(48,), epochs=30, batch_size=128)
    model = ContraTopic(
        ETM(corpus.vocab_size, config, embeddings.vectors),
        npmi_kernel(npmi, temperature=0.25),
        ContraTopicConfig(lambda_weight=40.0, negative_weight=3.0),
    ).fit(corpus)

    print("\nDiscovered topics:")
    for k, words in enumerate(model.top_words(corpus.vocabulary, 8)):
        print(f"  topic {k}: {' '.join(words)}")

    print("\nRouting new documents by dominant topic:")
    new_corpus = preprocessor.transform(new_documents)
    theta = model.transform(new_corpus)
    tops = model.top_words(corpus.vocabulary, 4)
    for text, mixture in zip(new_documents, theta):
        k = int(np.argmax(mixture))
        print(f"  [{mixture[k]:.2f} -> topic {k}: {'/'.join(tops[k])}]")
        print(f"      {text[:70]}...")


if __name__ == "__main__":
    main()

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``train``     Train any registry model on a dataset profile, report the
              §V.B metrics, optionally save a checkpoint.  ``--guard``
              enables the fault-tolerant runtime, ``--checkpoint-dir``
              writes periodic/best/last-good resumable checkpoints, and
              ``--resume`` continues an interrupted run
              bitwise-consistently.  ``--ddp-workers N`` trains
              data-parallel: every batch is sharded across N forked
              ranks with size-weighted gradient averaging
              (:mod:`repro.parallel.ddp`).
``evaluate``  Reload a checkpoint and re-score it on the test split.
``topics``    Train (or reload) and print the top topics with NPMI.
``datasets``  Print the Table-I statistics of the bundled profiles.
``serve``     Train (or reload) a model and drive the resilient online
              inference service (:mod:`repro.serving`) with the
              deterministic load generator: micro-batched
              transform/top-words/coherence traffic with deadlines, load
              shedding, retries, circuit breaking and checkpoint
              hot-reload with last-good rollback.  ``--chaos-*`` flags
              inject latency spikes, NaN outputs, worker death and
              corrupt checkpoint loads; the run fails unless **every**
              request received a well-formed response.  Writes a
              ``BENCH_serving``-style report (p50/p95/p99 latency,
              throughput) for the CI perf-guard.
``bench``     Train with telemetry enabled and write a ``BENCH_*.json``
              report (per-op timings — on by default, disable with
              ``--no-profile-ops`` — per-epoch throughput,
              ELBO-vs-contrastive loss split).  ``--suite ops`` skips
              training and instead microbenchmarks every fused autodiff
              kernel on fixed seeded shapes.  ``--suite sparse`` times
              the training hot path dense vs CSR on the same synthetic
              ≥99%-sparse bow and records the speedup for the CI
              perf-guard.  ``--suite multiseed`` runs
              the §V.F multi-seed evaluation twice — serial and across
              ``--workers`` processes — asserts the metrics are
              identical, and records both wall-clocks (and the speedup)
              for the CI perf-guard.  ``--suite ddp`` trains the same
              profile once per ``--ddp-legs`` worker count (default
              1,2,4) and records the scaling curve
              (``ddp_wall_seconds_w<N>`` / ``ddp_docs_per_sec_w<N>`` /
              ``ddp_speedup_w<N>``) for the CI perf-guard.
              ``--suite streaming`` replays a synthetic drifting stream
              through the incremental co-occurrence/NPMI engine and
              through a per-slice full recount, checks the exactness
              contract, and records ``streaming_update_seconds`` /
              ``streaming_speedup`` / ``streaming_docs_per_sec`` for the
              CI perf-guard.  The ``--inject-*`` flags drive the
              deterministic fault harness so recovery paths can be
              smoke-tested in CI.

Every command accepts ``--dtype {float32,float64}`` to pick the training
precision (equivalent to the ``REPRO_DTYPE`` environment variable).

Examples
--------
::

    python -m repro datasets
    python -m repro train --dataset 20ng --model contratopic --epochs 30 \
        --guard --checkpoint-dir /tmp/ckpt --checkpoint /tmp/ct.npz
    python -m repro train --dataset 20ng --model contratopic --epochs 30 \
        --resume /tmp/ckpt/last.npz
    python -m repro evaluate --dataset 20ng --model contratopic \
        --checkpoint /tmp/ct.npz
    python -m repro topics --dataset yahoo --model etm --num-topics 20
    python -m repro bench --dataset 20ng --model contratopic --epochs 5 \
        --dtype float32 --telemetry out.json
    python -m repro bench --suite ops --telemetry BENCH_ops.json
    python -m repro bench --suite sparse --telemetry BENCH_sparse.json
    python -m repro bench --suite multiseed --dataset 20ng --scale 0.1 \
        --epochs 5 --num-seeds 5 --workers 4 --telemetry BENCH_suite.json
    python -m repro train --dataset 20ng --model contratopic --epochs 10 \
        --ddp-workers 4
    python -m repro bench --suite ddp --dataset 20ng --scale 0.1 \
        --epochs 3 --ddp-legs 1,2,4 --telemetry BENCH_ddp.json
    python -m repro bench --suite streaming --stream-slices 20 \
        --stream-docs 250 --telemetry BENCH_streaming.json
    python -m repro bench --dataset 20ng --model contratopic --epochs 3 \
        --guard --inject-nan 0.25 --inject-grad 0.1 --telemetry smoke.json
    python -m repro serve --dataset 20ng --scale 0.12 --epochs 3 \
        --requests 200 --telemetry BENCH_serving.json
    python -m repro serve --dataset 20ng --scale 0.12 --epochs 3 \
        --requests 300 --reload-every 50 --chaos-nan 0.1 \
        --chaos-death 0.05 --chaos-corrupt-reloads 2 \
        --telemetry BENCH_serving_chaos.json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.experiments.reporting import format_table
from repro.experiments.table1_stats import format_table1, run_table1
from repro.io import load_checkpoint, save_checkpoint
from repro.metrics.coherence import topic_npmi_scores
from repro.models.registry import available_models
from repro.objectives.registry import available_objectives
from repro.training.protocol import evaluate_model


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    return ExperimentSettings(
        dataset=args.dataset,
        scale=args.scale,
        num_topics=args.num_topics,
        epochs=args.epochs,
        seeds=(args.seed,),
        lambda_weight=args.lambda_weight,
    )


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="20ng", choices=["20ng", "yahoo", "nytimes"])
    parser.add_argument("--model", default="contratopic", choices=available_models())
    parser.add_argument("--scale", type=float, default=0.3, help="corpus scale factor")
    parser.add_argument("--num-topics", type=int, default=40)
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--lambda-weight",
        type=float,
        default=None,
        help="regularizer weight λ (default: the dataset's calibrated value)",
    )
    parser.add_argument(
        "--objective",
        default=None,
        choices=["elbo", *available_objectives()],
        help="replace the model's own objective stack: 'elbo' trains the "
        "plain ELBO, any registry name adds that regularizer at its "
        "default (or --objective-weight) weight",
    )
    parser.add_argument(
        "--objective-weight",
        type=float,
        default=None,
        help="weight of the --objective term (default: the registry's "
        "calibrated value)",
    )
    parser.add_argument(
        "--dtype",
        default=None,
        choices=["float32", "float64"],
        help="training precision (default: REPRO_DTYPE or float64)",
    )


def _objectives_from_args(args: argparse.Namespace):
    """``--objective`` → the RunSpec ``objectives`` tuple (or None)."""
    objective = getattr(args, "objective", None)
    if objective == "elbo":
        return ()  # pure ELBO: an empty stack of extra terms
    if objective:
        from repro.objectives.registry import ObjectiveSpec

        return (
            ObjectiveSpec(objective, weight=getattr(args, "objective_weight", None)),
        )
    return None


def _run_spec(args: argparse.Namespace, model):
    """Translate the CLI's resilience flags into a declarative RunSpec."""
    from repro.models.base import NeuralTopicModel
    from repro.training.trainer import CheckpointSpec, RunSpec

    guard = None
    if getattr(args, "guard", False):
        from repro.training.resilience import GuardPolicy

        guard = GuardPolicy()
    checkpoint = None
    if getattr(args, "checkpoint_dir", None):
        checkpoint = CheckpointSpec(
            args.checkpoint_dir, every=getattr(args, "checkpoint_every", 1)
        )
    resume = getattr(args, "resume", None) or None
    ddp_workers = getattr(args, "ddp_workers", None)
    objectives = _objectives_from_args(args)
    is_neural = isinstance(model, NeuralTopicModel)
    if (
        guard or checkpoint or resume or ddp_workers or objectives is not None
    ) and not is_neural:
        raise SystemExit(
            "--guard/--resume/--checkpoint-dir/--ddp-workers/--objective "
            "require a neural model"
        )
    return RunSpec(
        model=model.config if is_neural else None,
        guard=guard,
        checkpoint=checkpoint,
        resume_from=resume,
        ddp_workers=ddp_workers,
        objectives=objectives,
    )


def _build_and_maybe_load(args: argparse.Namespace, out):
    context = ExperimentContext(_settings_from_args(args))
    model = context.build(args.model, seed=args.seed)
    if getattr(args, "checkpoint", None) and args.command == "evaluate":
        from repro.nn.module import Module

        if not isinstance(model, Module):
            raise SystemExit("--checkpoint requires a neural model")
        load_checkpoint(model, args.checkpoint)
        model._fitted = True
        model.eval()
        print(f"loaded checkpoint {args.checkpoint}", file=out)
    else:
        from repro.models.base import NeuralTopicModel
        from repro.training.trainer import Trainer

        spec = _run_spec(args, model)
        if spec.resume_from:
            print(
                f"resuming {args.model} on {args.dataset} "
                f"from {spec.resume_from}...",
                file=out,
            )
        else:
            print(f"training {args.model} on {args.dataset}...", file=out)
        if isinstance(model, NeuralTopicModel):
            Trainer(spec).fit(model, context.dataset.train)
        else:
            model.fit(context.dataset.train)
    return context, model


def _report(context, model, out) -> None:
    evaluation = evaluate_model(
        model,
        context.dataset.test,
        context.npmi_test,
        cluster_counts=(20,) if context.dataset.test.labels is not None else (),
    )
    rows = [
        ["coherence@10%", evaluation.coherence[0.1]],
        ["coherence@100%", evaluation.coherence[1.0]],
        ["diversity@10%", evaluation.diversity[0.1]],
        ["diversity@100%", evaluation.diversity[1.0]],
    ]
    if evaluation.km_purity:
        rows.append(["km-purity@20", evaluation.km_purity[20]])
        rows.append(["km-nmi@20", evaluation.km_nmi[20]])
    print(format_table(["metric", "value"], rows), file=out)


def _cmd_train(args: argparse.Namespace, out) -> int:
    context, model = _build_and_maybe_load(args, out)
    _report(context, model, out)
    if args.checkpoint:
        from repro.nn.module import Module

        if isinstance(model, Module):
            extra = {"model": args.model, "dataset": args.dataset}
            if getattr(model, "_trainer", None) is not None:
                # Full v2 checkpoint (optimizer + RNG streams + epoch) so
                # the file can seed a later --resume.
                from repro.training.resilience import save_training_checkpoint

                save_training_checkpoint(model, args.checkpoint, extra=extra)
            else:
                save_checkpoint(model, args.checkpoint, extra=extra)
            print(f"saved checkpoint to {args.checkpoint}", file=out)
        else:
            print("note: non-neural model, checkpoint skipped", file=out)
    return 0


def _cmd_evaluate(args: argparse.Namespace, out) -> int:
    context, model = _build_and_maybe_load(args, out)
    _report(context, model, out)
    return 0


def _cmd_topics(args: argparse.Namespace, out) -> int:
    context, model = _build_and_maybe_load(args, out)
    beta = model.topic_word_matrix()
    scores = topic_npmi_scores(beta, context.npmi_test)
    tops = model.top_words(context.dataset.train.vocabulary, args.num_words)
    order = np.argsort(-scores)[: args.show]
    for k in order:
        print(f"{scores[k]:+.3f}  {' '.join(tops[k])}", file=out)
    return 0


def _cmd_datasets(args: argparse.Namespace, out) -> int:
    print(format_table1(run_table1(scale=args.scale)), file=out)
    return 0


def _cmd_bench_ops(args: argparse.Namespace, out) -> int:
    """``bench --suite ops``: microbenchmark the fused kernels directly."""
    from repro.telemetry import build_report, format_report, write_report
    from repro.telemetry.microbench import run_ops_microbench
    from repro.tensor import get_default_dtype

    print("microbenchmarking fused autodiff kernels...", file=out)
    registry = run_ops_microbench(
        repeats=args.repeats, dtype=args.dtype, seed=args.seed
    )
    report = build_report(
        args.name or "ops_microbench",
        registry=registry,
        meta={
            "suite": "ops",
            "dtype": args.dtype or str(get_default_dtype()),
            "repeats": args.repeats,
            "seed": args.seed,
        },
    )
    path = write_report(report, args.telemetry)
    print(format_report(report), file=out)
    print(f"wrote telemetry report to {path}", file=out)
    return 0


def _cmd_bench_sparse(args: argparse.Namespace, out) -> int:
    """``bench --suite sparse``: dense-vs-CSR fast-path comparison.

    Runs the training hot path twice on the same synthetic ≥99%-sparse
    bow — once dense (the reference oracle), once through the CSR fused
    kernels — and writes a report whose totals carry both wall-clocks,
    the ``sparse_speedup`` ratio, and docs/sec for the CI perf-guard.
    """
    from repro.telemetry import build_report, format_report, write_report
    from repro.telemetry.microbench import (
        SPARSE_BATCH,
        SPARSE_PROFILE_DENSITY,
        SPARSE_VOCAB,
        run_sparse_microbench,
    )
    from repro.tensor import get_default_dtype

    print("benchmarking sparse fast path vs dense reference...", file=out)
    registry = run_sparse_microbench(
        repeats=args.repeats, dtype=args.dtype, seed=args.seed
    )
    report = build_report(
        args.name or "sparse_fast_path",
        registry=registry,
        meta={
            "suite": "sparse",
            "dtype": args.dtype or str(get_default_dtype()),
            "repeats": args.repeats,
            "seed": args.seed,
            "batch": SPARSE_BATCH,
            "vocab": SPARSE_VOCAB,
            "density": SPARSE_PROFILE_DENSITY,
        },
    )
    path = write_report(report, args.telemetry)
    print(format_report(report), file=out)
    print(f"wrote telemetry report to {path}", file=out)
    return 0


def _results_equal(a, b) -> bool:
    """Exact equality of two :class:`EvaluationResult`\\ s (NaN-tolerant).

    NaN compares equal to NaN here: a seed that diverged identically in
    both runs must not make the serial-vs-parallel equality check fail.
    """

    def scalar_equal(x, y) -> bool:
        fx, fy = float(x), float(y)
        return fx == fy or (fx != fx and fy != fy)

    def dicts_equal(da, db) -> bool:
        return da.keys() == db.keys() and all(
            scalar_equal(da[k], db[k]) for k in da
        )

    return (
        a.seed_status == b.seed_status
        and a.diverged == b.diverged
        and all(
            dicts_equal(getattr(a, f), getattr(b, f))
            for f in (
                "coherence",
                "diversity",
                "km_purity",
                "km_nmi",
                "coherence_std",
                "diversity_std",
                "km_purity_std",
            )
        )
    )


def _cmd_bench_multiseed(args: argparse.Namespace, out) -> int:
    """``bench --suite multiseed``: serial-vs-parallel §V.F evaluation.

    Runs the same multi-seed evaluation twice — ``workers=1`` (the exact
    serial path) and ``workers=N`` — asserts the merged metrics and
    per-seed statuses are identical, and writes a report whose totals
    carry both wall-clocks plus the speedup for the CI perf-guard.
    """
    import os

    from repro.parallel import resolve_workers
    from repro.telemetry import (
        MetricsRegistry,
        build_report,
        format_report,
        write_report,
    )
    from repro.telemetry.report import MULTISEED_PARALLEL_KEY, MULTISEED_SERIAL_KEY
    from repro.training.protocol import multi_seed_evaluation

    workers = resolve_workers(args.workers)
    seeds = tuple(range(args.num_seeds))
    context = ExperimentContext(_settings_from_args(args))
    factory = context.factory(args.model)
    registry = MetricsRegistry()

    print(
        f"multi-seed benchmark: {args.model} on {args.dataset}, "
        f"{len(seeds)} seeds, serial vs {workers} workers...",
        file=out,
    )
    runs = {}
    for key, n in ((MULTISEED_SERIAL_KEY, 1), (MULTISEED_PARALLEL_KEY, workers)):
        with registry.timer(key):
            runs[key] = multi_seed_evaluation(
                factory,
                context.dataset.train,
                context.dataset.test,
                context.npmi_test,
                seeds=seeds,
                model_name=args.model,
                workers=n,
                registry=registry,
                profile=args.profile_ops,
            )
    if not _results_equal(runs[MULTISEED_SERIAL_KEY], runs[MULTISEED_PARALLEL_KEY]):
        raise SystemExit(
            "multi-seed metrics differ between workers=1 and "
            f"workers={workers}: {runs[MULTISEED_SERIAL_KEY].summary()} vs "
            f"{runs[MULTISEED_PARALLEL_KEY].summary()}"
        )
    print("serial and parallel metrics are identical", file=out)
    report = build_report(
        args.name or f"multiseed_{args.model}_{args.dataset}",
        registry=registry,
        meta={
            "suite": "multiseed",
            "dataset": args.dataset,
            "model": args.model,
            "scale": args.scale,
            "num_topics": args.num_topics,
            "epochs": args.epochs,
            "num_seeds": args.num_seeds,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "dtype": args.dtype or _current_dtype_name(),
            "profile_ops": bool(args.profile_ops),
            "metrics": runs[MULTISEED_PARALLEL_KEY].summary(),
        },
    )
    path = write_report(report, args.telemetry)
    print(format_report(report), file=out)
    print(f"wrote telemetry report to {path}", file=out)
    return 0


def _cmd_bench_ddp(args: argparse.Namespace, out) -> int:
    """``bench --suite ddp``: data-parallel scaling curve over worker counts.

    Trains the same profile once per ``--ddp-legs`` worker count (a
    fresh, identically-seeded model each leg), recording each leg's
    wall-clock under ``ddp/wall_w<N>``; the report roll-up derives the
    per-leg ``ddp_wall_seconds_w<N>`` / ``ddp_docs_per_sec_w<N>`` /
    ``ddp_speedup_w<N>`` totals (speedup vs the ``workers=1`` leg, which
    is the exact serial trainer) the CI perf-guard gates on.
    """
    import os

    from repro.models.base import NeuralTopicModel
    from repro.telemetry import (
        MetricsRegistry,
        build_report,
        format_report,
        write_report,
    )
    from repro.telemetry.report import DDP_DOCS_KEY, DDP_WALL_KEY_PREFIX
    from repro.training.trainer import RunSpec, Trainer

    try:
        legs = tuple(int(part) for part in str(args.ddp_legs).split(","))
    except ValueError:
        raise SystemExit(
            f"--ddp-legs must be comma-separated worker counts, got {args.ddp_legs!r}"
        ) from None
    context = ExperimentContext(_settings_from_args(args))
    train = context.dataset.train
    registry = MetricsRegistry()
    print(
        f"ddp scaling benchmark: {args.model} on {args.dataset}, "
        f"worker legs {list(legs)}...",
        file=out,
    )
    for workers in legs:
        model = context.build(args.model, seed=args.seed)
        if not isinstance(model, NeuralTopicModel):
            raise SystemExit("bench --suite ddp requires a neural model")
        spec = RunSpec(model=model.config, ddp_workers=workers)
        with registry.timer(f"{DDP_WALL_KEY_PREFIX}{workers}"):
            Trainer(spec).fit(model, train)
        exchange = model._trainer.exchange
        if getattr(exchange, "metrics", None) is not None:
            registry.merge(exchange.metrics)
        print(f"  workers={workers}: trained {args.epochs} epochs", file=out)
    # One leg's worth of work (every leg trains the same profile).
    registry.counter(DDP_DOCS_KEY, absolute=True).value = float(
        len(train) * args.epochs
    )
    train.record_cast_stats(registry)
    report = build_report(
        args.name or f"ddp_{args.model}_{args.dataset}",
        registry=registry,
        meta={
            "suite": "ddp",
            "dataset": args.dataset,
            "model": args.model,
            "scale": args.scale,
            "num_topics": args.num_topics,
            "epochs": args.epochs,
            "seed": args.seed,
            "legs": list(legs),
            "cpu_count": os.cpu_count(),
            "dtype": args.dtype or _current_dtype_name(),
        },
    )
    path = write_report(report, args.telemetry)
    print(format_report(report), file=out)
    print(f"wrote telemetry report to {path}", file=out)
    return 0


def _cmd_bench_streaming(args: argparse.Namespace, out) -> int:
    """``bench --suite streaming``: incremental engine vs full recount.

    Replays a synthetic drifting stream (``--stream-slices`` slices of
    ``--stream-docs`` documents) twice — once through the incremental
    :class:`repro.metrics.streaming.StreamingNpmiEngine`, once through a
    per-slice from-scratch recount + cold NPMI build — verifies the
    exactness contract (bitwise counts, NPMI within 1e-12), and writes a
    report whose totals carry ``streaming_update_seconds``,
    ``streaming_speedup``, ``streaming_docs_per_sec`` and the engine's
    counters for the CI perf-guard.
    """
    import numpy as np

    from repro.extensions.online import (
        DriftingStreamConfig,
        generate_drifting_stream,
    )
    from repro.metrics.cooccurrence import DocumentCooccurrence
    from repro.metrics.npmi import compute_npmi_matrix
    from repro.metrics.streaming import (
        StreamingNpmiEngine,
        record_streaming_stats,
    )
    from repro.telemetry import (
        MetricsRegistry,
        build_report,
        format_report,
        write_report,
    )
    from repro.telemetry.report import (
        STREAMING_DOCS_KEY,
        STREAMING_RECOUNT_KEY,
        STREAMING_UPDATE_KEY,
    )

    print(
        f"streaming benchmark: {args.stream_slices} slices x "
        f"{args.stream_docs} docs...",
        file=out,
    )
    slices, _, _ = generate_drifting_stream(
        DriftingStreamConfig(
            emerge_at=max(1, args.stream_slices // 2),
            num_slices=args.stream_slices,
            docs_per_slice=args.stream_docs,
            average_length=40.0,
            seed=args.seed,
        )
    )
    vocab_size = slices[0].vocab_size
    registry = MetricsRegistry()
    for slice_corpus in slices:  # warm incidence caches outside timers
        slice_corpus.binary_doc_word()

    engine = StreamingNpmiEngine(vocab_size)
    for slice_corpus in slices:
        with registry.timer(STREAMING_UPDATE_KEY):
            engine.update(slice_corpus)

    recount = None
    for upto in range(1, len(slices) + 1):
        with registry.timer(STREAMING_RECOUNT_KEY):
            recount = DocumentCooccurrence.empty(vocab_size)
            for past in slices[:upto]:
                recount.update(past)
            cold = compute_npmi_matrix(recount)

    engine.check_against(recount)
    npmi_gap = float(np.max(np.abs(engine.npmi.matrix - cold.matrix)))
    if npmi_gap > 1e-12:
        raise SystemExit(
            f"incremental NPMI diverged from cold build by {npmi_gap:.3e}"
        )
    total_docs = sum(len(s) for s in slices)
    registry.counter(STREAMING_DOCS_KEY, absolute=True).value = float(total_docs)
    record_streaming_stats(registry)
    report = build_report(
        args.name or "streaming_engine",
        registry=registry,
        meta={
            "suite": "streaming",
            "num_slices": args.stream_slices,
            "docs_per_slice": args.stream_docs,
            "vocab_size": vocab_size,
            "total_docs": total_docs,
            "seed": args.seed,
            "npmi_gap": npmi_gap,
        },
    )
    path = write_report(report, args.telemetry)
    print(format_report(report), file=out)
    print(f"wrote telemetry report to {path}", file=out)
    return 0


def _cmd_bench_regularizers(args: argparse.Namespace, out) -> int:
    """``bench --suite regularizers``: the objective-zoo leaderboard.

    Trains the same backbone once per objective (pure ELBO control plus
    every :mod:`repro.objectives` registry entry), fanning the seeds out
    over ``--workers`` processes, scores each with the §V.B protocol and
    writes a report whose ``regularizers_wall_seconds`` total gates the
    sweep's cost in CI while the leaderboard rows land in ``meta`` for
    the checked-in ``BENCH_regularizers`` table.
    """
    from repro.experiments.regularizers import (
        format_leaderboard,
        regularizer_leaderboard,
    )
    from repro.telemetry import (
        MetricsRegistry,
        build_report,
        format_report,
        write_report,
    )
    from repro.telemetry.report import REGULARIZERS_WALL_KEY

    context = ExperimentContext(_settings_from_args(args))
    seeds = tuple(range(args.num_seeds))
    registry = MetricsRegistry()
    print(
        f"regularizer leaderboard on {args.dataset}: "
        f"{len(seeds)} seeds per objective...",
        file=out,
    )
    with registry.timer(REGULARIZERS_WALL_KEY):
        result = regularizer_leaderboard(
            context,
            seeds=seeds,
            workers=args.workers,
            registry=registry,
            backbone=args.backbone,
        )
    report = build_report(
        args.name or "regularizers",
        registry=registry,
        meta={
            "suite": "regularizers",
            "dataset": args.dataset,
            "backbone": args.backbone,
            "scale": args.scale,
            "num_topics": args.num_topics,
            "epochs": args.epochs,
            "seeds": list(seeds),
            "leaderboard": [
                {
                    "objective": row.name,
                    "weight": row.weight,
                    **row.summary(),
                }
                for row in result.rows
            ],
            "best": result.best().name,
            "failures": {
                label: {str(seed): status for seed, status in statuses.items()}
                for label, statuses in result.failures.items()
            },
        },
    )
    path = write_report(report, args.telemetry)
    print(format_leaderboard(result, args.dataset), file=out)
    print(format_report(report), file=out)
    print(f"wrote telemetry report to {path}", file=out)
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    """``serve``: drive the resilient inference service under load.

    Trains (or reloads) a model, wraps it in a hot-loadable registry
    behind the micro-batching front door, replays a deterministic mixed
    request stream — optionally under injected chaos and checkpoint
    hot-reloads — and writes a perf-guard-compatible report.  Exits
    non-zero if any request went unanswered: under every fault the
    harness can inject, 100% of requests must receive a well-formed
    response (ok / degraded / timeout / shed / error).
    """
    from pathlib import Path

    from repro.models.base import NeuralTopicModel
    from repro.serving import (
        InferenceService,
        LoadProfile,
        ModelRegistry,
        build_requests,
        run_load,
        serving_config,
    )
    from repro.telemetry import MetricsRegistry, build_report, write_report

    context = ExperimentContext(_settings_from_args(args))
    model = context.build(args.model, seed=args.seed)
    if not isinstance(model, NeuralTopicModel):
        raise SystemExit("serve requires a neural model (checkpointable)")
    if args.checkpoint:
        load_checkpoint(model, args.checkpoint)
        model._fitted = True
        model.eval()
        print(f"loaded checkpoint {args.checkpoint}", file=out)
    else:
        print(f"training {args.model} on {args.dataset}...", file=out)
        model.fit(context.dataset.train)
        model.eval()

    faults = None
    if (
        args.chaos_latency
        or args.chaos_nan
        or args.chaos_death
        or args.chaos_corrupt_reloads
    ):
        from repro.training.faults import FaultInjector, FaultPlan

        faults = FaultInjector(
            FaultPlan(
                serve_latency_rate=args.chaos_latency,
                serve_latency_seconds=args.chaos_latency_ms / 1000.0,
                serve_nan_rate=args.chaos_nan,
                serve_death_rate=args.chaos_death,
                corrupt_checkpoint_loads=tuple(
                    range(args.chaos_corrupt_reloads)
                ),
                seed=args.faults_seed,
            )
        )

    corpus = context.dataset.train
    build = context.factory(args.model)
    registry = ModelRegistry(
        model,
        factory=lambda: build(args.seed),
        probe_corpus=_probe_corpus(corpus, 4),
        faults=faults,
    )
    metrics = MetricsRegistry()
    overrides = {
        key: value
        for key, value in (
            ("max_batch_size", args.max_batch_size),
            ("max_wait_ms", args.max_wait_ms),
            ("queue_capacity", args.queue_capacity),
            ("deadline_ms", args.deadline_ms),
            ("breaker_threshold", args.breaker_threshold),
        )
        if value is not None
    }
    with serving_config(**overrides) as config:
        service = InferenceService(
            registry,
            corpus.vocabulary,
            config=config,
            metrics=metrics,
            faults=faults,
            npmi_matrix=context.npmi_test,
        )
        profile = LoadProfile(
            num_requests=args.requests,
            concurrency=args.concurrency,
            seed=args.seed,
        )
        requests = build_requests(corpus, profile)

        reload_hook = None
        ckpt_path = None
        if args.reload_every:
            # Live publication loop: each cycle re-saves a fresh (good)
            # checkpoint and hot-loads it, so a corrupt-load chaos plan
            # rolls back and a later clean cycle recovers.
            ckpt_path = Path(args.telemetry).with_suffix(".ckpt.npz")
            save_checkpoint(model, ckpt_path)

            def reload_hook() -> None:
                save_checkpoint(model, ckpt_path)
                registry.load(ckpt_path)

        print(
            f"serving {args.requests} requests "
            f"(concurrency {args.concurrency}, "
            f"batch<= {config.max_batch_size}, wait {config.max_wait_ms}ms, "
            f"chaos={'on' if faults else 'off'})...",
            file=out,
        )
        report = run_load(
            service,
            requests,
            concurrency=args.concurrency,
            reload_every=args.reload_every,
            reload_hook=reload_hook,
        )
    if ckpt_path is not None and ckpt_path.exists():
        ckpt_path.unlink()

    report.record_into(metrics)
    summary = report.summary()
    rows = [[key, f"{value}"] for key, value in summary.items()
            if not isinstance(value, dict)]
    rows += [[f"status.{k}", str(v)] for k, v in report.status_counts.items()]
    print(format_table(["metric", "value"], rows), file=out)
    bench = build_report(
        args.name or "serving",
        registry=metrics,
        meta={
            "suite": "serving",
            "dataset": args.dataset,
            "model": args.model,
            "scale": args.scale,
            "requests": args.requests,
            "concurrency": args.concurrency,
            "reload_every": args.reload_every,
            "chaos": bool(faults),
            "fault_counts": dict(faults.counts) if faults else {},
            "summary": {
                k: v for k, v in summary.items() if not isinstance(v, dict)
            },
            "status_counts": report.status_counts,
        },
    )
    path = write_report(bench, args.telemetry)
    print(f"wrote telemetry report to {path}", file=out)
    if report.unanswered:
        raise SystemExit(
            f"{report.unanswered} request(s) received no response — the "
            "serving layer must answer every admitted request"
        )
    print("all requests received well-formed responses", file=out)
    return 0


def _probe_corpus(corpus, n: int):
    """First-``n``-document probe corpus for registry load validation."""
    from repro.data.corpus import Corpus

    return Corpus(corpus.documents[:n], corpus.vocabulary)


def _cmd_bench(args: argparse.Namespace, out) -> int:
    import contextlib

    if args.suite == "ops":
        return _cmd_bench_ops(args, out)
    if args.suite == "sparse":
        return _cmd_bench_sparse(args, out)
    if args.suite == "multiseed":
        return _cmd_bench_multiseed(args, out)
    if args.suite == "ddp":
        return _cmd_bench_ddp(args, out)
    if args.suite == "streaming":
        return _cmd_bench_streaming(args, out)
    if args.suite == "regularizers":
        return _cmd_bench_regularizers(args, out)

    from repro.models.base import NeuralTopicModel
    from repro.telemetry import (
        MetricsRegistry,
        TelemetryCallback,
        build_report,
        format_report,
        profile_ops,
        write_report,
    )

    from repro.training.trainer import CheckpointSpec, RunSpec, Trainer

    context = ExperimentContext(_settings_from_args(args))
    model = context.build(args.model, seed=args.seed)
    if not isinstance(model, NeuralTopicModel):
        raise SystemExit("bench requires a neural model (with an epoch loop)")
    registry = MetricsRegistry()
    callback = TelemetryCallback(
        path=args.jsonl, registry=registry, run_name=args.model
    )

    guard = None
    if args.guard:
        from repro.training.resilience import GuardPolicy

        guard = GuardPolicy()
    faults = None
    if args.inject_nan or args.inject_grad or args.inject_interrupts:
        from repro.training.faults import FaultPlan

        if args.inject_interrupts and not args.checkpoint_dir:
            raise SystemExit("--inject-interrupts requires --checkpoint-dir")
        faults = FaultPlan(
            nan_loss_rate=args.inject_nan,
            exploding_grad_rate=args.inject_grad,
            interrupt_saves=tuple(range(args.inject_interrupts)),
            seed=args.faults_seed,
        )
    # The whole benchmarked run travels as one declarative spec: the
    # trainer materializes the checkpoint callback and fault injector
    # (and owns the interrupted-writes context) from it, so the perf
    # guard measures the same Trainer path production runs use.
    spec = RunSpec(
        model=model.config,
        guard=guard,
        checkpoint=(
            CheckpointSpec(args.checkpoint_dir) if args.checkpoint_dir else None
        ),
        faults=faults,
        ddp_workers=args.ddp_workers,
        objectives=_objectives_from_args(args),
    )
    print(f"benchmarking {args.model} on {args.dataset}...", file=out)
    profiler = profile_ops(registry) if args.profile_ops else contextlib.nullcontext()
    with profiler, registry.timer("bench/fit"):
        Trainer(spec, callbacks=[callback]).fit(model, context.dataset.train)
    report = build_report(
        args.name or f"{args.model}_{args.dataset}",
        registry=registry,
        epochs=callback.epochs,
        meta={
            "dataset": args.dataset,
            "model": args.model,
            "scale": args.scale,
            "num_topics": args.num_topics,
            "epochs": args.epochs,
            "seed": args.seed,
            "suite": "train",
            "dtype": args.dtype or _current_dtype_name(),
            "profile_ops": bool(args.profile_ops),
            "guard": bool(args.guard),
            "inject_nan": args.inject_nan,
            "inject_grad": args.inject_grad,
            "inject_interrupts": args.inject_interrupts,
        },
    )
    path = write_report(report, args.telemetry)
    print(format_report(report), file=out)
    print(f"wrote telemetry report to {path}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a model and report metrics")
    _add_model_arguments(train)
    train.add_argument("--checkpoint", default=None, help="save parameters here")
    train.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write periodic last/best/last-good resumable checkpoints here",
    )
    train.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="epochs between periodic checkpoints (default: 1)",
    )
    train.add_argument(
        "--resume",
        default=None,
        help="resume training from a v2 checkpoint (e.g. <dir>/last.npz)",
    )
    train.add_argument(
        "--guard",
        action="store_true",
        help="enable NaN/divergence guards (skip/backoff/restore/degrade)",
    )
    train.add_argument(
        "--ddp-workers",
        type=int,
        default=None,
        help="data-parallel ranks per batch (1 = exact serial path; "
        "N shards every batch across N forked ranks with size-weighted "
        "gradient averaging)",
    )

    evaluate = sub.add_parser("evaluate", help="evaluate a saved checkpoint")
    _add_model_arguments(evaluate)
    evaluate.add_argument("--checkpoint", required=True)

    topics = sub.add_parser("topics", help="print top topics")
    _add_model_arguments(topics)
    topics.add_argument("--num-words", type=int, default=8)
    topics.add_argument("--show", type=int, default=10)
    topics.add_argument("--checkpoint", default=None)

    datasets = sub.add_parser("datasets", help="print Table-I statistics")
    datasets.add_argument("--scale", type=float, default=0.3)

    serve = sub.add_parser(
        "serve",
        help="drive the resilient online inference service under load",
    )
    _add_model_arguments(serve)
    serve.add_argument(
        "--checkpoint", default=None, help="serve this checkpoint instead of training"
    )
    serve.add_argument(
        "--requests", type=int, default=200, help="load-generator request count"
    )
    serve.add_argument(
        "--concurrency", type=int, default=32, help="in-flight request bound"
    )
    serve.add_argument(
        "--telemetry", required=True, help="path for the BENCH_serving report"
    )
    serve.add_argument("--name", default=None, help="report name (default: serving)")
    serve.add_argument(
        "--reload-every",
        type=int,
        default=0,
        metavar="N",
        help="hot-reload a freshly published checkpoint every N requests",
    )
    serve.add_argument(
        "--max-batch-size", type=int, default=None, help="micro-batch coalescing bound"
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=None, help="micro-batch coalescing window"
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=None, help="admission queue hard bound"
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None, help="per-request deadline"
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        help="consecutive model faults that trip the circuit breaker",
    )
    serve.add_argument(
        "--chaos-latency",
        type=float,
        default=0.0,
        metavar="RATE",
        help="chaos: per-batch probability of an injected latency spike",
    )
    serve.add_argument(
        "--chaos-latency-ms",
        type=float,
        default=50.0,
        help="chaos: duration of each injected latency spike",
    )
    serve.add_argument(
        "--chaos-nan",
        type=float,
        default=0.0,
        metavar="RATE",
        help="chaos: per-batch probability of NaN model outputs",
    )
    serve.add_argument(
        "--chaos-death",
        type=float,
        default=0.0,
        metavar="RATE",
        help="chaos: per-batch probability of worker death mid-batch",
    )
    serve.add_argument(
        "--chaos-corrupt-reloads",
        type=int,
        default=0,
        metavar="N",
        help="chaos: corrupt the first N checkpoint hot-loads on disk",
    )
    serve.add_argument(
        "--faults-seed",
        type=int,
        default=0,
        help="seed of the deterministic chaos injector (default: 0)",
    )

    bench = sub.add_parser(
        "bench", help="train with telemetry and write a BENCH_*.json report"
    )
    _add_model_arguments(bench)
    bench.add_argument(
        "--suite",
        default="train",
        choices=[
            "train",
            "ops",
            "sparse",
            "multiseed",
            "ddp",
            "streaming",
            "regularizers",
        ],
        help="'train': benchmark an end-to-end training run; "
        "'ops': microbenchmark every fused kernel on fixed shapes; "
        "'sparse': dense-vs-CSR fast-path hot-path comparison; "
        "'multiseed': serial-vs-parallel §V.F multi-seed evaluation "
        "with a metric-equality assertion; "
        "'ddp': data-parallel scaling curve over --ddp-legs worker counts; "
        "'streaming': incremental NPMI engine vs per-slice full recount "
        "on a synthetic drifting stream; "
        "'regularizers': objective-zoo leaderboard (ELBO control + every "
        "repro.objectives entry) on one backbone",
    )
    bench.add_argument(
        "--backbone",
        default="etm",
        help="--suite regularizers: backbone every objective trains on "
        "(default: etm)",
    )
    bench.add_argument(
        "--ddp-workers",
        type=int,
        default=None,
        help="--suite train: run the benchmarked fit data-parallel "
        "with this many ranks",
    )
    bench.add_argument(
        "--ddp-legs",
        default="1,2,4",
        metavar="N,N,...",
        help="--suite ddp: comma-separated worker counts to train and "
        "compare (default: 1,2,4)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="--suite multiseed/regularizers: worker processes of the "
        "parallel seed fan-out (default: REPRO_WORKERS or the CPU count)",
    )
    bench.add_argument(
        "--stream-slices",
        type=int,
        default=20,
        help="--suite streaming: time slices in the drift profile "
        "(default: 20)",
    )
    bench.add_argument(
        "--stream-docs",
        type=int,
        default=250,
        help="--suite streaming: documents per slice (default: 250)",
    )
    bench.add_argument(
        "--num-seeds",
        type=int,
        default=5,
        help="--suite multiseed/regularizers: how many seeds to evaluate "
        "(default: 5)",
    )
    bench.add_argument(
        "--telemetry", required=True, help="path for the BENCH_*.json report"
    )
    bench.add_argument(
        "--jsonl", default=None, help="also stream per-epoch records here"
    )
    bench.add_argument(
        "--profile-ops",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="op-level autodiff profiling (per-op tables; on by default)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=20,
        help="--suite ops/sparse: timed forward+backward repetitions",
    )
    bench.add_argument("--name", default=None, help="report name (default: model_dataset)")
    bench.add_argument(
        "--guard",
        action="store_true",
        help="enable NaN/divergence guards during the benchmarked run",
    )
    bench.add_argument(
        "--checkpoint-dir",
        default=None,
        help="also write resumable checkpoints (required by --inject-interrupts)",
    )
    bench.add_argument(
        "--inject-nan",
        type=float,
        default=0.0,
        metavar="RATE",
        help="fault harness: per-batch probability of a NaN loss",
    )
    bench.add_argument(
        "--inject-grad",
        type=float,
        default=0.0,
        metavar="RATE",
        help="fault harness: per-batch probability of exploding gradients",
    )
    bench.add_argument(
        "--inject-interrupts",
        type=int,
        default=0,
        metavar="N",
        help="fault harness: interrupt the first N checkpoint commits",
    )
    bench.add_argument(
        "--faults-seed",
        type=int,
        default=0,
        help="seed of the deterministic fault injector (default: 0)",
    )
    return parser


def _current_dtype_name() -> str:
    from repro.tensor import get_default_dtype

    return str(get_default_dtype())


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    import contextlib

    args = build_parser().parse_args(argv)
    handlers = {
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "topics": _cmd_topics,
        "datasets": _cmd_datasets,
        "serve": _cmd_serve,
        "bench": _cmd_bench,
    }
    precision = contextlib.nullcontext()
    if getattr(args, "dtype", None):
        from repro.tensor import default_dtype

        precision = default_dtype(args.dtype)
    with precision:
        return handlers[args.command](args, out)


if __name__ == "__main__":
    raise SystemExit(main())

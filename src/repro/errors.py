"""Exception hierarchy for the :mod:`repro` library.

Every error raised on purpose by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array had an incompatible shape for the requested operation."""


class GradientError(ReproError, RuntimeError):
    """Backpropagation was requested on an invalid graph state."""


class VocabularyError(ReproError, KeyError):
    """A token or token id was not present in the vocabulary."""


class CorpusError(ReproError, ValueError):
    """A corpus failed validation (empty documents, label mismatch, ...)."""


class ConfigError(ReproError, ValueError):
    """A configuration value was out of its legal range."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration budget."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before ``fit``."""


class TelemetryError(ReproError, RuntimeError):
    """Telemetry was used illegally (closed sink, malformed report...)."""


class ParallelExecutionError(ReproError, RuntimeError):
    """Every task of a parallel fan-out failed, so there is no result to
    aggregate.  Individual task failures are recorded, not raised — this
    error fires only when nothing at all succeeded."""


class TrainingDivergedError(ReproError, RuntimeError):
    """Training kept producing non-finite losses/gradients after every
    guard escalation (skip, LR backoff, restore, degradation) was spent."""


class ServingError(ReproError, RuntimeError):
    """The online inference service was used illegally (submitting to a
    stopped service, reloading without a registry, malformed request
    payloads caught before admission...).  Per-request failures are
    *responses*, not exceptions — this error is for caller mistakes."""

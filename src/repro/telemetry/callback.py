"""Trainer telemetry: the JSONL-streaming :class:`TelemetryCallback`.

The epoch loop of :meth:`repro.models.base.NeuralTopicModel.fit` already
measures per-epoch wall time and throughput (``epoch_seconds`` /
``docs_per_sec`` in the epoch logs).  This callback turns those logs into
a machine-readable record stream: one JSON object per line (JSONL), one
line per epoch, bracketed by ``fit_start`` / ``fit_end`` events — the raw
material for ``BENCH_*.json`` reports (:mod:`repro.telemetry.report`).

The loss breakdown follows the paper's §V computational analysis: the
backbone's ELBO terms (``rec + kl``) are reported separately from the
contrastive regularizer's term (the ``extra`` loss component), so the
regularizer's training cost is visible per epoch.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import IO

from repro.io import commit_file
from repro.nn.module import Module
from repro.telemetry.core import MetricsRegistry
from repro.training.callbacks import Callback

#: Epoch-log prefix the resilience guard uses; matching keys are folded
#: into the registry as ``guard/<name>`` counters.
GUARD_LOG_PREFIX = "guard_"


class TelemetryCallback(Callback):
    """Streams per-epoch telemetry as JSONL and aggregates for reports.

    Parameters
    ----------
    path:
        File to stream JSONL records to; opened at ``on_fit_start`` and
        closed at ``on_fit_end``.  Omit to keep records in memory only.
    stream:
        An already-open text file-like to write to instead of ``path``
        (not closed by the callback).  Mutually exclusive with ``path``.
    registry:
        Optional :class:`MetricsRegistry` that accumulates ``train/epoch``
        timings and ``train/docs`` counts alongside the record stream.
    run_name:
        Label stamped on every record (distinguishes runs sharing a sink).

    Attributes
    ----------
    records:
        Every emitted record, in order (including start/end events).
    epochs:
        Only the per-epoch records — the epoch table of a report.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        stream: IO[str] | None = None,
        registry: MetricsRegistry | None = None,
        run_name: str = "train",
    ):
        if path is not None and stream is not None:
            raise ValueError("pass either path or stream, not both")
        self.path = Path(path) if path is not None else None
        self.registry = registry
        self.run_name = run_name
        self.records: list[dict] = []
        self.epochs: list[dict] = []
        self._stream: IO[str] | None = stream
        self._owns_stream = False
        self._tmp_path: Path | None = None
        self._fit_start = 0.0

    # ------------------------------------------------------------------
    def _emit(self, record: dict) -> dict:
        record = {"run": self.run_name, **record}
        self.records.append(record)
        if self._stream is not None:
            self._stream.write(json.dumps(record, sort_keys=True) + "\n")
            self._stream.flush()
        return record

    # ------------------------------------------------------------------
    def on_fit_start(self, model) -> None:
        if self.path is not None:
            # Stream to a tmp file and atomically publish it at fit end:
            # a crashed run leaves the tmp behind for forensics but never
            # a truncated file at the final path.
            self._tmp_path = self.path.with_name(f"{self.path.name}.tmp")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self._tmp_path.open("w", encoding="utf-8")
            self._owns_stream = True
        self._fit_start = time.perf_counter()
        self.records.clear()
        self.epochs.clear()
        record = {
            "event": "fit_start",
            "model": type(model).__name__,
            "epochs_planned": int(model.config.epochs),
            "batch_size": int(model.config.batch_size),
        }
        if isinstance(model, Module):
            record["num_parameters"] = int(model.num_parameters())
        self._emit(record)

    def on_epoch_end(self, model, epoch, logs) -> bool:
        rec = float(logs.get("rec", 0.0))
        kl = float(logs.get("kl", 0.0))
        contrastive = float(logs.get("extra", 0.0))
        record = {
            "event": "epoch",
            **{k: float(v) for k, v in logs.items()},
            "epoch": int(epoch),
            "elbo": rec + kl,
            "contrastive": contrastive,
        }
        self.epochs.append(self._emit(record))
        if self.registry is not None:
            for key, value in logs.items():
                if key.startswith(GUARD_LOG_PREFIX) and value:
                    self.registry.count(
                        f"guard/{key[len(GUARD_LOG_PREFIX):]}",
                        float(value),
                        absolute=True,
                    )
            self.registry.count("train/epochs", absolute=True)
            if "epoch_seconds" in logs:
                self.registry.record_seconds(
                    "train/epoch", float(logs["epoch_seconds"]), absolute=True
                )
            if "docs_per_sec" in logs and "epoch_seconds" in logs:
                self.registry.count(
                    "train/docs",
                    float(logs["docs_per_sec"]) * float(logs["epoch_seconds"]),
                    absolute=True,
                )
        return False

    def on_fit_end(self, model) -> None:
        wall = time.perf_counter() - self._fit_start
        self._emit(
            {
                "event": "fit_end",
                "epochs_run": len(self.epochs),
                "wall_seconds": wall,
            }
        )
        if self.registry is not None:
            self.registry.record_seconds("train/fit", wall, absolute=True)
        if self._owns_stream and self._stream is not None:
            self._stream.flush()
            os.fsync(self._stream.fileno())
            self._stream.close()
            commit_file(self._tmp_path, self.path, category="telemetry")
            self._stream = None
            self._owns_stream = False


def read_jsonl(path: str | Path) -> list[dict]:
    """Load every record from a JSONL telemetry stream."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records

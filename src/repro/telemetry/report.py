"""``BENCH_<name>.json`` reports: build, serialise, format, compare.

The benchmark suite and the CLI both aggregate telemetry into one schema
(``repro.telemetry.bench/v1``) so results are machine-comparable across
runs and machines:

* ``ops``    — per-op table from :func:`repro.telemetry.ophooks.profile_ops`
  (calls, forward/backward wall-time, bytes allocated),
* ``epochs`` — per-epoch table from :class:`~repro.telemetry.callback.
  TelemetryCallback` (wall time, docs/sec throughput, ELBO vs contrastive
  loss split),
* ``totals`` — the scalar roll-up that CI's perf-guard
  (``benchmarks/check_regression.py``) compares against a baseline.

Timings depend on the machine; the regression comparison therefore uses a
tolerant ratio threshold (default 2x) and treats sub-millisecond baseline
entries as noise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.io import atomic_write
from repro.telemetry.core import MetricsRegistry
from repro.telemetry.ophooks import OP_PREFIX

SCHEMA = "repro.telemetry.bench/v1"

#: Baseline timings below this many seconds are noise, not signal; the
#: regression comparison reports them but never fails on them.
NOISE_FLOOR_SECONDS = 1e-3

#: Registry timer keys the multi-seed benchmark records its serial and
#: parallel wall-clock under (``python -m repro bench --suite multiseed``
#: and ``benchmarks/bench_parallel_multiseed.py``).  :func:`build_report`
#: rolls them into ``totals`` so the CI perf-guard can gate them.
MULTISEED_SERIAL_KEY = "multiseed/serial"
MULTISEED_PARALLEL_KEY = "multiseed/parallel"

#: Registry keys the sparse-vs-dense benchmark records under
#: (``python -m repro bench --suite sparse`` and
#: ``benchmarks/bench_sparse_ops.py``): wall-clock of the dense reference
#: leg, wall-clock of the CSR fast-path leg, and the number of documents
#: each leg pushed through the hot path.  :func:`build_report` rolls them
#: into ``totals`` (including the ``sparse_speedup`` ratio and the
#: per-leg docs/sec) so the CI perf-guard can gate the fast path.
SPARSE_DENSE_KEY = "sparse/dense"
SPARSE_SPARSE_KEY = "sparse/sparse"
SPARSE_DOCS_KEY = "sparse/docs"

#: Registry keys the serving load generator records under
#: (``python -m repro serve`` and ``benchmarks/bench_serving.py``):
#: end-to-end wall-clock of the load run, per-request latency
#: percentiles, and the number of requests submitted.
#: :func:`build_report` rolls them into ``totals``
#: (``serving_p50_seconds``/``p95``/``p99``, ``serving_wall_seconds``
#: and the ``serving_requests_per_sec`` throughput) so the CI perf-guard
#: can gate the online inference service.
SERVING_WALL_KEY = "serving/wall"
SERVING_P50_KEY = "serving/p50"
SERVING_P95_KEY = "serving/p95"
SERVING_P99_KEY = "serving/p99"
SERVING_REQUESTS_KEY = "serving/requests_total"

#: Registry keys the data-parallel scaling benchmark records under
#: (``python -m repro bench --suite ddp`` and ``benchmarks/bench_ddp.py``):
#: one ``ddp/wall_w<N>`` timer per worker-count leg (the leg's training
#: wall-clock) and the number of documents every leg pushes through
#: training.  :func:`build_report` rolls them into totals
#: (``ddp_wall_seconds_w<N>``, ``ddp_docs_per_sec_w<N>`` and the
#: ``ddp_speedup_w<N>`` ratios against the 1-worker leg) so the CI
#: perf-guard can gate the scaling curve.  The exchange's own ``ddp/*``
#: shard/reduce/step timers and bytes counters travel in the registry
#: snapshot for inspection.
DDP_WALL_KEY_PREFIX = "ddp/wall_w"
DDP_DOCS_KEY = "ddp/docs"

#: Registry keys the streaming-kernel benchmark records under
#: (``python -m repro bench --suite streaming`` and
#: ``benchmarks/bench_streaming.py``): wall-clock of the incremental
#: delta-update leg, wall-clock of the from-scratch recount leg, and the
#: number of documents each leg streamed.  :func:`build_report` rolls
#: them into ``totals`` (including the ``streaming_speedup`` ratio and
#: ``streaming_docs_per_sec``) so the CI perf-guard can gate the
#: incremental engine; the ``streaming/*`` counters published by
#: :func:`repro.metrics.streaming.record_streaming_stats` (updates,
#: delta_nnz, buffer reuses) and the ``npmi_cache/*`` hit/miss counters
#: become ``streaming_*`` / ``npmi_cache_*`` totals alongside them.
STREAMING_UPDATE_KEY = "streaming/update"
STREAMING_RECOUNT_KEY = "streaming/recount"
STREAMING_DOCS_KEY = "streaming/docs"
STREAMING_COUNTER_PREFIX = "streaming/"
NPMI_CACHE_COUNTER_PREFIX = "npmi_cache/"

#: wall-clock of one full regularizer-leaderboard sweep
#: (:func:`repro.experiments.regularizers.regularizer_leaderboard`).
#: :func:`build_report` surfaces it as ``regularizers_wall_seconds``,
#: which :data:`TIME_TOTALS` gates against ``BENCH_regularizers``.
REGULARIZERS_WALL_KEY = "regularizers/wall"


def _op_table(registry: MetricsRegistry) -> list[dict]:
    """Extract the per-op rows from a registry's ``op/*`` keys."""
    ops: dict[str, dict] = {}

    def row(op: str) -> dict:
        return ops.setdefault(
            op,
            {
                "op": op,
                "calls": 0,
                "total_seconds": 0.0,
                "mean_seconds": 0.0,
                "backward_seconds": 0.0,
                "bytes": 0,
            },
        )

    for key, stat in registry.timers.items():
        if not key.startswith(OP_PREFIX):
            continue
        name = key[len(OP_PREFIX):]
        if name.endswith(".backward"):
            row(name[: -len(".backward")])["backward_seconds"] = stat.total_seconds
        elif "." not in name:
            entry = row(name)
            entry["total_seconds"] = stat.total_seconds
            entry["mean_seconds"] = stat.mean_seconds
    for key, counter in registry.counters.items():
        if not key.startswith(OP_PREFIX):
            continue
        name = key[len(OP_PREFIX):]
        if name.endswith(".calls"):
            row(name[: -len(".calls")])["calls"] = int(counter.value)
        elif name.endswith(".bytes"):
            row(name[: -len(".bytes")])["bytes"] = int(counter.value)
    return sorted(ops.values(), key=lambda r: -r["total_seconds"])


def _epoch_totals(epochs: Sequence[dict]) -> dict:
    """Scalar roll-up of an epoch table."""
    if not epochs:
        return {}
    seconds = [e.get("epoch_seconds", 0.0) for e in epochs]
    throughput = [e["docs_per_sec"] for e in epochs if "docs_per_sec" in e]
    elbo = [e.get("elbo", 0.0) for e in epochs]
    contrastive = [e.get("contrastive", 0.0) for e in epochs]
    totals = {
        "epochs": len(epochs),
        "epoch_seconds": float(sum(seconds)),
        "epoch_seconds_mean": float(sum(seconds)) / len(epochs),
        "elbo_mean": float(sum(elbo)) / len(epochs),
        "contrastive_mean": float(sum(contrastive)) / len(epochs),
    }
    if throughput:
        totals["docs_per_sec"] = float(sum(throughput)) / len(throughput)
    denominator = abs(totals["elbo_mean"]) + abs(totals["contrastive_mean"])
    if denominator > 0:
        totals["contrastive_loss_share"] = abs(totals["contrastive_mean"]) / denominator
    # Guard recovery actions (repro.training.resilience) roll up as sums,
    # so a report makes divergences-and-recoveries visible at a glance.
    guard_keys = {k for e in epochs for k in e if k.startswith("guard_")}
    for key in sorted(guard_keys):
        totals[key] = float(sum(e.get(key, 0.0) for e in epochs))
    # Per-term objective contributions (repro.objectives): every enabled
    # stack term logs its weighted per-epoch mean as ``objective_<name>``,
    # which rolls up here as ``objective_<name>_loss`` so reports show one
    # scalar per regularizer.
    objective_keys = {k for e in epochs for k in e if k.startswith("objective_")}
    for key in sorted(objective_keys):
        totals[f"{key}_loss"] = float(sum(e.get(key, 0.0) for e in epochs))
    return totals


def build_report(
    name: str,
    registry: MetricsRegistry | None = None,
    epochs: Sequence[dict] | None = None,
    meta: dict | None = None,
) -> dict:
    """Assemble a ``repro.telemetry.bench/v1`` report dictionary."""
    ops = _op_table(registry) if registry is not None else []
    epoch_rows = [dict(e) for e in (epochs or [])]
    totals: dict = dict(_epoch_totals(epoch_rows))
    if ops:
        totals["op_seconds"] = float(sum(r["total_seconds"] for r in ops))
        totals["op_backward_seconds"] = float(sum(r["backward_seconds"] for r in ops))
        totals["op_calls"] = int(sum(r["calls"] for r in ops))
        totals["op_bytes"] = int(sum(r["bytes"] for r in ops))
    if registry is not None:
        serial = registry.timers.get(MULTISEED_SERIAL_KEY)
        parallel = registry.timers.get(MULTISEED_PARALLEL_KEY)
        if serial is not None and serial.count:
            totals["multiseed_serial_seconds"] = float(serial.total_seconds)
        if parallel is not None and parallel.count:
            totals["multiseed_parallel_seconds"] = float(parallel.total_seconds)
        if (
            serial is not None
            and parallel is not None
            and serial.count
            and parallel.total_seconds > 0
        ):
            totals["multiseed_speedup"] = float(
                serial.total_seconds / parallel.total_seconds
            )
        dense_leg = registry.timers.get(SPARSE_DENSE_KEY)
        sparse_leg = registry.timers.get(SPARSE_SPARSE_KEY)
        docs = registry.counters.get(SPARSE_DOCS_KEY)
        if dense_leg is not None and dense_leg.count:
            totals["sparse_dense_seconds"] = float(dense_leg.total_seconds)
        if sparse_leg is not None and sparse_leg.count:
            totals["sparse_sparse_seconds"] = float(sparse_leg.total_seconds)
        if (
            dense_leg is not None
            and sparse_leg is not None
            and dense_leg.count
            and sparse_leg.total_seconds > 0
        ):
            totals["sparse_speedup"] = float(
                dense_leg.total_seconds / sparse_leg.total_seconds
            )
        if docs is not None and docs.value:
            if sparse_leg is not None and sparse_leg.total_seconds > 0:
                totals["sparse_docs_per_sec"] = float(
                    docs.value / sparse_leg.total_seconds
                )
            if dense_leg is not None and dense_leg.total_seconds > 0:
                totals["sparse_dense_docs_per_sec"] = float(
                    docs.value / dense_leg.total_seconds
                )
        for key, total in (
            (SERVING_WALL_KEY, "serving_wall_seconds"),
            (SERVING_P50_KEY, "serving_p50_seconds"),
            (SERVING_P95_KEY, "serving_p95_seconds"),
            (SERVING_P99_KEY, "serving_p99_seconds"),
        ):
            stat = registry.timers.get(key)
            if stat is not None and stat.count:
                totals[total] = float(stat.total_seconds)
        wall = registry.timers.get(SERVING_WALL_KEY)
        served = registry.counters.get(SERVING_REQUESTS_KEY)
        if served is not None and served.value:
            totals["serving_requests"] = int(served.value)
            if wall is not None and wall.total_seconds > 0:
                totals["serving_requests_per_sec"] = float(
                    served.value / wall.total_seconds
                )
        ddp_walls = {
            key[len(DDP_WALL_KEY_PREFIX):]: stat
            for key, stat in registry.timers.items()
            if key.startswith(DDP_WALL_KEY_PREFIX) and stat.count
        }
        ddp_docs = registry.counters.get(DDP_DOCS_KEY)
        for label in sorted(ddp_walls, key=lambda s: (len(s), s)):
            stat = ddp_walls[label]
            totals[f"ddp_wall_seconds_w{label}"] = float(stat.total_seconds)
            if (
                ddp_docs is not None
                and ddp_docs.value
                and stat.total_seconds > 0
            ):
                totals[f"ddp_docs_per_sec_w{label}"] = float(
                    ddp_docs.value / stat.total_seconds
                )
        serial_leg = ddp_walls.get("1")
        if serial_leg is not None and serial_leg.total_seconds > 0:
            for label, stat in ddp_walls.items():
                if label != "1" and stat.total_seconds > 0:
                    totals[f"ddp_speedup_w{label}"] = float(
                        serial_leg.total_seconds / stat.total_seconds
                    )
        update_leg = registry.timers.get(STREAMING_UPDATE_KEY)
        recount_leg = registry.timers.get(STREAMING_RECOUNT_KEY)
        stream_docs = registry.counters.get(STREAMING_DOCS_KEY)
        if update_leg is not None and update_leg.count:
            totals["streaming_update_seconds"] = float(update_leg.total_seconds)
        if recount_leg is not None and recount_leg.count:
            totals["streaming_recount_seconds"] = float(recount_leg.total_seconds)
        if (
            update_leg is not None
            and recount_leg is not None
            and recount_leg.count
            and update_leg.total_seconds > 0
        ):
            totals["streaming_speedup"] = float(
                recount_leg.total_seconds / update_leg.total_seconds
            )
        if (
            stream_docs is not None
            and stream_docs.value
            and update_leg is not None
            and update_leg.total_seconds > 0
        ):
            totals["streaming_docs_per_sec"] = float(
                stream_docs.value / update_leg.total_seconds
            )
        for key, counter in registry.counters.items():
            for prefix in (STREAMING_COUNTER_PREFIX, NPMI_CACHE_COUNTER_PREFIX):
                if key.startswith(prefix) and key != STREAMING_DOCS_KEY:
                    totals[key.replace("/", "_", 1)] = int(counter.value)
        regularizers_wall = registry.timers.get(REGULARIZERS_WALL_KEY)
        if regularizers_wall is not None and regularizers_wall.count:
            totals["regularizers_wall_seconds"] = float(
                regularizers_wall.total_seconds
            )
    report = {
        "schema": SCHEMA,
        "name": name,
        "meta": dict(meta or {}),
        "ops": ops,
        "epochs": epoch_rows,
        "totals": totals,
    }
    if registry is not None:
        report["registry"] = registry.snapshot()
    return report


def epoch_rows_from_history(history: Sequence[dict]) -> list[dict]:
    """Adapt ``NeuralTopicModel.history`` entries to report epoch rows."""
    rows = []
    for entry in history:
        rec = float(entry.get("rec", 0.0))
        kl = float(entry.get("kl", 0.0))
        rows.append(
            {
                **{k: float(v) for k, v in entry.items()},
                "elbo": rec + kl,
                "contrastive": float(entry.get("extra", 0.0)),
            }
        )
    return rows


def write_report(report: dict, path: str | Path) -> Path:
    """Serialise a report atomically; returns the written path.

    Uses the shared tmp + fsync + rename helper, so an interrupted run
    never leaves a truncated ``BENCH_*.json`` behind.
    """
    path = Path(path)
    with atomic_write(path, "w", category="report") as fp:
        json.dump(report, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return path


def load_report(path: str | Path) -> dict:
    """Load a report written by :func:`write_report`; validates the schema."""
    with Path(path).open("r", encoding="utf-8") as fp:
        report = json.load(fp)
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, got {report.get('schema')!r}"
        )
    return report


def _format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Minimal fixed-width table (kept local to avoid layering on
    :mod:`repro.experiments`, which sits above telemetry)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_report(report: dict, max_ops: int = 12) -> str:
    """Human-readable summary of a report (op table, epochs, totals)."""
    blocks = [f"BENCH report {report['name']!r} ({report['schema']})"]
    if report["ops"]:
        rows = [
            [
                r["op"],
                r["calls"],
                f"{r['total_seconds']:.4f}",
                f"{r['backward_seconds']:.4f}",
                f"{r['bytes'] / 1e6:.1f}",
            ]
            for r in report["ops"][:max_ops]
        ]
        blocks.append(
            _format_table(
                ["op", "calls", "fwd s", "bwd s", "MB"],
                rows,
                title=f"top ops by forward time (of {len(report['ops'])})",
            )
        )
    if report["epochs"]:
        first, last = report["epochs"][0], report["epochs"][-1]
        rows = [
            [
                e["epoch"],
                f"{e.get('epoch_seconds', 0.0):.3f}",
                f"{e.get('docs_per_sec', 0.0):.0f}",
                f"{e.get('elbo', 0.0):.3f}",
                f"{e.get('contrastive', 0.0):.3f}",
            ]
            for e in (first, last)
        ]
        blocks.append(
            _format_table(
                ["epoch", "seconds", "docs/s", "elbo", "contrastive"],
                rows,
                title=f"epochs (first/last of {len(report['epochs'])})",
            )
        )
    if report["totals"]:
        rows = [[k, f"{v:.6g}"] for k, v in sorted(report["totals"].items())]
        blocks.append(_format_table(["total", "value"], rows, title="totals"))
    return "\n\n".join(blocks)


def summarize_report(report: dict) -> str:
    """One compact per-suite summary table for CI job logs.

    Unlike :func:`format_report` (the full dump), this is the short block
    ``benchmarks/check_regression.py`` prints for every suite **on pass as
    well as on failure**, so a green job still shows what was measured:
    suite name, op/epoch row counts, and the gated totals.
    """
    totals = report.get("totals", {})
    suite = report.get("meta", {}).get("suite", report.get("name", "?"))
    rows: list[list[str]] = [
        ["suite", str(suite)],
        ["ops rows", str(len(report.get("ops", [])))],
        ["epoch rows", str(len(report.get("epochs", [])))],
    ]
    for key in (*TIME_TOTALS, *RATE_TOTALS):
        if key in totals:
            rows.append([f"totals.{key}", f"{totals[key]:.6g}"])
    return _format_table(
        ["metric", "value"],
        rows,
        title=f"suite summary: {report.get('name', '?')}",
    )


# ----------------------------------------------------------------------
# regression comparison (consumed by benchmarks/check_regression.py)
# ----------------------------------------------------------------------

#: totals keys where *larger* current values mean a slowdown.
TIME_TOTALS = (
    "op_seconds",
    "op_backward_seconds",
    "epoch_seconds",
    "epoch_seconds_mean",
    "multiseed_serial_seconds",
    "multiseed_parallel_seconds",
    "sparse_sparse_seconds",
    "serving_wall_seconds",
    "serving_p50_seconds",
    "serving_p95_seconds",
    "serving_p99_seconds",
    "ddp_wall_seconds_w1",
    "ddp_wall_seconds_w2",
    "ddp_wall_seconds_w4",
    "streaming_update_seconds",
    "regularizers_wall_seconds",
)

#: totals keys where *smaller* current values mean a slowdown.
RATE_TOTALS = (
    "docs_per_sec",
    "multiseed_speedup",
    "sparse_speedup",
    "sparse_docs_per_sec",
    "serving_requests_per_sec",
    "ddp_docs_per_sec_w1",
    "ddp_docs_per_sec_w2",
    "ddp_docs_per_sec_w4",
    "ddp_speedup_w2",
    "ddp_speedup_w4",
    "streaming_speedup",
    "streaming_docs_per_sec",
    "streaming_buffer_reuses",
)


def compare_reports(
    baseline: dict, current: dict, threshold: float = 2.0
) -> tuple[list[str], str]:
    """Compare two reports' totals; returns (failures, diff table text).

    A timing total fails when ``current > threshold * baseline``; a rate
    total (throughput) fails when ``current < baseline / threshold``.
    Baseline entries under :data:`NOISE_FLOOR_SECONDS` are informational
    only.  Per-op rows are always informational — per-op wall times are
    too noisy on shared runners to gate on.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must be > 1")
    failures: list[str] = []
    rows: list[list[str]] = []

    def add_row(label: str, base: float, cur: float, slower_when: str) -> None:
        ratio = cur / base if base else float("inf")
        gated = base >= NOISE_FLOOR_SECONDS or slower_when == "lower"
        if slower_when == "higher":
            failed = gated and ratio > threshold
        else:
            failed = base > 0 and cur < base / threshold
        status = "FAIL" if failed else "ok"
        if not gated and slower_when == "higher":
            status = "noise"
        rows.append([label, f"{base:.6g}", f"{cur:.6g}", f"{ratio:.2f}x", status])
        if failed:
            failures.append(
                f"{label}: {cur:.6g} vs baseline {base:.6g} "
                f"(ratio {ratio:.2f}, threshold {threshold:.2f})"
            )

    base_totals = baseline.get("totals", {})
    cur_totals = current.get("totals", {})
    for key in TIME_TOTALS:
        if key in base_totals and key in cur_totals:
            add_row(f"totals.{key}", base_totals[key], cur_totals[key], "higher")
    for key in RATE_TOTALS:
        if key in base_totals and key in cur_totals:
            add_row(f"totals.{key}", base_totals[key], cur_totals[key], "lower")

    base_ops = {r["op"]: r for r in baseline.get("ops", [])}
    for row in current.get("ops", []):
        base_row = base_ops.get(row["op"])
        if base_row is None or base_row["total_seconds"] < NOISE_FLOOR_SECONDS:
            continue
        ratio = (
            row["total_seconds"] / base_row["total_seconds"]
            if base_row["total_seconds"]
            else float("inf")
        )
        rows.append(
            [
                f"op.{row['op']}",
                f"{base_row['total_seconds']:.6g}",
                f"{row['total_seconds']:.6g}",
                f"{ratio:.2f}x",
                "info",
            ]
        )

    table = _format_table(
        ["metric", "baseline", "current", "ratio", "status"],
        rows,
        title=(
            f"perf-guard: {current.get('name')} vs baseline "
            f"(threshold {threshold:.2f}x)"
        ),
    )
    return failures, table

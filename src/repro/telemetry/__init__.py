"""Telemetry & performance-measurement subsystem.

Layers, bottom-up:

* :mod:`repro.telemetry.core` — :class:`MetricsRegistry` with nested
  monotonic-clock timers and counters (the sink everything writes into);
* :mod:`repro.telemetry.ophooks` — :func:`profile_ops`, op-level
  profiling of the autodiff engine (per-op call counts, forward/backward
  wall-time, bytes allocated), zero-cost unless the context is active;
* :mod:`repro.telemetry.callback` — :class:`TelemetryCallback`, per-epoch
  trainer telemetry (throughput, ELBO-vs-contrastive loss split) streamed
  as JSONL;
* :mod:`repro.telemetry.report` — the ``BENCH_<name>.json`` schema:
  build/load/format reports and compare them for perf regressions.

See ``docs/TELEMETRY.md`` for the schema and the CI perf-guard workflow.
"""

from repro.telemetry.core import Counter, MetricsRegistry, Timer, TimerStat
from repro.telemetry.ophooks import OP_PREFIX, is_profiling, profile_ops
from repro.telemetry.callback import TelemetryCallback, read_jsonl
from repro.telemetry.report import (
    SCHEMA,
    build_report,
    compare_reports,
    epoch_rows_from_history,
    format_report,
    load_report,
    summarize_report,
    write_report,
)

__all__ = [
    "Counter",
    "MetricsRegistry",
    "Timer",
    "TimerStat",
    "OP_PREFIX",
    "is_profiling",
    "profile_ops",
    "TelemetryCallback",
    "read_jsonl",
    "SCHEMA",
    "build_report",
    "compare_reports",
    "epoch_rows_from_history",
    "format_report",
    "load_report",
    "summarize_report",
    "write_report",
]

"""Deterministic microbenchmark of the fused autodiff kernels.

``repro bench --suite ops`` runs every kernel in
:data:`repro.tensor.fused.PROFILED_FUSED_OPS` — forward *and* backward —
on fixed, seeded shapes under :func:`~repro.telemetry.ophooks.profile_ops`
and reports the resulting per-op table.  Because the shapes and inputs
are pinned, two reports produced on the same machine are directly
comparable and CI can guard the kernels against timing regressions
individually, not just through end-to-end training throughput.

Shapes mirror the training hot path of the paper's configuration: a
mini-batch of documents through an encoder layer (``linear``,
``batch_norm``, activations), the softmax family over a vocabulary-sized
axis, and the fused ELBO terms over (batch, vocab) count matrices.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.core import MetricsRegistry
from repro.telemetry.ophooks import profile_ops
from repro.telemetry.report import (
    SPARSE_DENSE_KEY,
    SPARSE_DOCS_KEY,
    SPARSE_SPARSE_KEY,
)
from repro.tensor import fused
from repro.tensor.dtypes import default_dtype, get_default_dtype, resolve_dtype
from repro.tensor.sparse import CSRBatch
from repro.tensor.tensor import Tensor

#: Fixed case shapes (documents per batch, encoder width, topics, vocab).
BATCH = 64
HIDDEN = 256
TOPICS = 50
VOCAB = 2000

#: Nonzero fraction of the synthetic CSR bow used by the ``*_csr`` cases
#: (matches the ≥95%-sparse corpora the fast path targets).
SPARSE_CASE_DENSITY = 0.05

#: Default number of timed forward+backward repetitions per op.
DEFAULT_REPEATS = 20


def _cases(rng: np.random.Generator, dt: np.dtype) -> list[tuple[str, callable]]:
    """One ``(label, thunk)`` per fused op; each thunk runs fwd + bwd."""

    def t(shape, scale=1.0):
        return Tensor(
            (rng.standard_normal(shape) * scale).astype(dt), requires_grad=True
        )

    bow_topics = rng.integers(0, 5, size=(BATCH, TOPICS)).astype(dt)
    bow_vocab = rng.integers(0, 3, size=(BATCH, VOCAB)).astype(dt)
    # A ≥95%-sparse (batch, vocab) count matrix for the CSR kernel cases.
    bow_sparse = np.where(
        rng.random((BATCH, VOCAB)) < SPARSE_CASE_DENSITY,
        rng.integers(1, 4, size=(BATCH, VOCAB)),
        0,
    ).astype(dt)
    bow_csr = CSRBatch.from_dense(bow_sparse)

    def linear():
        fused.linear(t((BATCH, HIDDEN)), t((TOPICS, HIDDEN)), t(TOPICS)).sum().backward()

    def linear_csr():
        fused.linear_csr(bow_csr, t((HIDDEN, VOCAB)), t(HIDDEN)).sum().backward()

    def softmax():
        fused.softmax(t((BATCH, VOCAB)), axis=1).max(axis=1).sum().backward()

    def log_softmax():
        fused.log_softmax(t((BATCH, VOCAB)), axis=1).mean().backward()

    def logsumexp():
        fused.logsumexp(t((BATCH, VOCAB)), axis=1).sum().backward()

    def sigmoid():
        fused.sigmoid(t((BATCH, HIDDEN))).sum().backward()

    def softplus():
        fused.softplus(t((BATCH, HIDDEN))).sum().backward()

    def nll_from_probs():
        probs = fused.softmax(t((BATCH, VOCAB)), axis=1)
        fused.nll_from_probs(probs, bow_vocab).backward()

    def nll_from_probs_csr():
        probs = fused.softmax(t((BATCH, VOCAB)), axis=1)
        fused.nll_from_probs_csr(probs, bow_csr).backward()

    def log_softmax_nll():
        fused.log_softmax_nll(t((BATCH, VOCAB)), bow_vocab).backward()

    def log_softmax_nll_csr():
        fused.log_softmax_nll_csr(t((BATCH, VOCAB)), bow_csr).backward()

    def nll_from_mixture_csr():
        theta = fused.softmax(t((BATCH, TOPICS)), axis=1)
        beta = fused.softmax(t((TOPICS, VOCAB)), axis=1)
        fused.nll_from_mixture_csr(theta, beta, bow_csr).backward()

    def kl_normal_standard():
        fused.kl_normal_standard(t((BATCH, TOPICS)), t((BATCH, TOPICS), 0.1)).backward()

    def batch_norm():
        fused.batch_norm(
            t((BATCH, HIDDEN)),
            running_mean=np.zeros(HIDDEN, dtype=dt),
            running_var=np.ones(HIDDEN, dtype=dt),
            weight=t(HIDDEN, 0.1),
            bias=t(HIDDEN, 0.1),
            training=True,
        ).sum().backward()

    cases = [
        ("linear", linear),
        ("linear_csr", linear_csr),
        ("softmax", softmax),
        ("log_softmax", log_softmax),
        ("logsumexp", logsumexp),
        ("sigmoid", sigmoid),
        ("softplus", softplus),
        ("nll_from_probs", nll_from_probs),
        ("nll_from_probs_csr", nll_from_probs_csr),
        ("nll_from_mixture_csr", nll_from_mixture_csr),
        ("log_softmax_nll", log_softmax_nll),
        ("log_softmax_nll_csr", log_softmax_nll_csr),
        ("kl_normal_standard", kl_normal_standard),
        ("batch_norm", batch_norm),
    ]
    missing = set(fused.PROFILED_FUSED_OPS) - {name for name, _ in cases}
    if missing:  # a new kernel must get a case before it ships
        raise AssertionError(f"fused ops without a microbench case: {sorted(missing)}")
    return cases


def run_ops_microbench(
    registry: MetricsRegistry | None = None,
    repeats: int = DEFAULT_REPEATS,
    dtype: str | np.dtype | None = None,
    seed: int = 0,
) -> MetricsRegistry:
    """Time every fused kernel's forward+backward on fixed seeded inputs.

    Parameters
    ----------
    registry:
        Sink for the ``op/*`` metrics (a fresh one is created if omitted).
    repeats:
        Timed repetitions per op (each repetition is one forward and one
        full backward on freshly built inputs).
    dtype:
        ``"float32"``/``"float64"``; defaults to the process default.
    seed:
        Seed of the input generator; fixed inputs make reports comparable.

    Returns
    -------
    The registry holding one ``op/<name>`` timer row per fused kernel.
    """
    registry = registry if registry is not None else MetricsRegistry()
    dt = resolve_dtype(dtype) if dtype is not None else get_default_dtype()
    with default_dtype(dt):
        cases = _cases(np.random.default_rng(seed), dt)
        for _, thunk in cases:  # warm-up: exclude first-call costs
            thunk()
        with profile_ops(registry):
            for _ in range(repeats):
                for _, thunk in cases:
                    thunk()
    registry.count("microbench/repeats", repeats, absolute=True)
    return registry


# ----------------------------------------------------------------------
# sparse-vs-dense fast-path benchmark (``repro bench --suite sparse``)
# ----------------------------------------------------------------------

#: Profile of the sparse suite: 10× the ops-bench vocabulary, 8× the
#: batch (the paper trains with batches of 1000 documents), and a
#: ≥99%-sparse count matrix — the regime real bag-of-words corpora live
#: in and where the CSR kernels earn their integer-multiple speedup.
SPARSE_BATCH = 512
SPARSE_VOCAB = 20000
SPARSE_HIDDEN = 256
SPARSE_TOPICS = 50
SPARSE_PROFILE_DENSITY = 0.005

#: Default timed repetitions per leg of the sparse suite (each repetition
#: is a full forward + backward of the training hot path).
DEFAULT_SPARSE_REPEATS = 10


def run_sparse_microbench(
    registry: MetricsRegistry | None = None,
    repeats: int = DEFAULT_SPARSE_REPEATS,
    dtype: str | np.dtype | None = None,
    seed: int = 0,
    batch: int = SPARSE_BATCH,
    vocab: int = SPARSE_VOCAB,
    density: float = SPARSE_PROFILE_DENSITY,
) -> MetricsRegistry:
    """Time the training hot path dense vs CSR on the same synthetic bow.

    Both legs run the identical computation — encoder linear (V→H),
    sigmoid, topic head (H→K), softmax θ, mixture decode ``θ @ β`` and the
    count-weighted NLL, forward **and** backward — differing only in the
    bag-of-words operand: a dense ``(batch, vocab)`` matrix on the
    reference leg, the equivalent :class:`~repro.tensor.sparse.CSRBatch`
    on the fast-path leg (the fused kernels dispatch on operand type,
    exactly as training does).

    Records into ``registry``:

    - timer :data:`~repro.telemetry.report.SPARSE_DENSE_KEY` — dense leg
      wall-clock over all repetitions,
    - timer :data:`~repro.telemetry.report.SPARSE_SPARSE_KEY` — CSR leg
      wall-clock,
    - counter :data:`~repro.telemetry.report.SPARSE_DOCS_KEY` — documents
      pushed through each leg (for docs/sec),
    - counter ``sparse/loss_gap`` — ``|dense loss − sparse loss|`` of the
      final repetition (an equivalence tripwire: must be ≈0),
    - counter ``sparse/profile_density`` — actual nnz fraction of the
      generated bow.

    :func:`repro.telemetry.report.build_report` rolls the timers into
    ``totals.sparse_*`` including the gated ``sparse_speedup``.
    """
    registry = registry if registry is not None else MetricsRegistry()
    dt = resolve_dtype(dtype) if dtype is not None else get_default_dtype()
    rng = np.random.default_rng(seed)
    dense_bow = np.where(
        rng.random((batch, vocab)) < density,
        rng.integers(1, 4, size=(batch, vocab)),
        0,
    ).astype(dt)
    csr_bow = CSRBatch.from_dense(dense_bow)
    # Fixed parameter arrays, shared by both legs: every repetition wraps
    # them in fresh Tensors so each is an independent forward + backward.
    w1 = (rng.standard_normal((SPARSE_HIDDEN, vocab)) * 0.02).astype(dt)
    b1 = np.zeros(SPARSE_HIDDEN, dtype=dt)
    w2 = (rng.standard_normal((SPARSE_TOPICS, SPARSE_HIDDEN)) * 0.1).astype(dt)
    b2 = np.zeros(SPARSE_TOPICS, dtype=dt)
    beta_logits = (rng.standard_normal((SPARSE_TOPICS, vocab)) * 0.1).astype(dt)

    def step(bow) -> float:
        hidden = fused.linear(
            bow, Tensor(w1, requires_grad=True), Tensor(b1, requires_grad=True)
        )
        act = fused.sigmoid(hidden)
        logits = fused.linear(
            act, Tensor(w2, requires_grad=True), Tensor(b2, requires_grad=True)
        )
        theta = fused.softmax(logits, axis=1)
        beta = fused.softmax(Tensor(beta_logits, requires_grad=True), axis=1)
        if isinstance(bow, CSRBatch):
            # The fast path never materializes theta @ beta — exactly what
            # NeuralTopicModel.reconstruction_loss does on a CSRBatch.
            loss = fused.nll_from_mixture_csr(theta, beta, bow)
        else:
            loss = fused.nll_from_probs(theta @ beta, bow)
        loss.backward()
        return float(loss.data)

    with default_dtype(dt):
        dense_loss = step(dense_bow)  # warm-up: exclude first-call costs
        sparse_loss = step(csr_bow)
        with registry.timer(SPARSE_DENSE_KEY):
            for _ in range(repeats):
                dense_loss = step(dense_bow)
        with registry.timer(SPARSE_SPARSE_KEY):
            for _ in range(repeats):
                sparse_loss = step(csr_bow)
    registry.count(SPARSE_DOCS_KEY, repeats * batch, absolute=True)
    registry.count(
        "sparse/loss_gap", abs(dense_loss - sparse_loss), absolute=True
    )
    registry.count(
        "sparse/profile_density", float(csr_bow.density), absolute=True
    )
    registry.count("microbench/repeats", repeats, absolute=True)
    return registry

"""Deterministic microbenchmark of the fused autodiff kernels.

``repro bench --suite ops`` runs every kernel in
:data:`repro.tensor.fused.PROFILED_FUSED_OPS` — forward *and* backward —
on fixed, seeded shapes under :func:`~repro.telemetry.ophooks.profile_ops`
and reports the resulting per-op table.  Because the shapes and inputs
are pinned, two reports produced on the same machine are directly
comparable and CI can guard the kernels against timing regressions
individually, not just through end-to-end training throughput.

Shapes mirror the training hot path of the paper's configuration: a
mini-batch of documents through an encoder layer (``linear``,
``batch_norm``, activations), the softmax family over a vocabulary-sized
axis, and the fused ELBO terms over (batch, vocab) count matrices.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.core import MetricsRegistry
from repro.telemetry.ophooks import profile_ops
from repro.tensor import fused
from repro.tensor.dtypes import default_dtype, get_default_dtype, resolve_dtype
from repro.tensor.tensor import Tensor

#: Fixed case shapes (documents per batch, encoder width, topics, vocab).
BATCH = 64
HIDDEN = 256
TOPICS = 50
VOCAB = 2000

#: Default number of timed forward+backward repetitions per op.
DEFAULT_REPEATS = 20


def _cases(rng: np.random.Generator, dt: np.dtype) -> list[tuple[str, callable]]:
    """One ``(label, thunk)`` per fused op; each thunk runs fwd + bwd."""

    def t(shape, scale=1.0):
        return Tensor(
            (rng.standard_normal(shape) * scale).astype(dt), requires_grad=True
        )

    bow_topics = rng.integers(0, 5, size=(BATCH, TOPICS)).astype(dt)
    bow_vocab = rng.integers(0, 3, size=(BATCH, VOCAB)).astype(dt)

    def linear():
        fused.linear(t((BATCH, HIDDEN)), t((TOPICS, HIDDEN)), t(TOPICS)).sum().backward()

    def softmax():
        fused.softmax(t((BATCH, VOCAB)), axis=1).max(axis=1).sum().backward()

    def log_softmax():
        fused.log_softmax(t((BATCH, VOCAB)), axis=1).mean().backward()

    def logsumexp():
        fused.logsumexp(t((BATCH, VOCAB)), axis=1).sum().backward()

    def sigmoid():
        fused.sigmoid(t((BATCH, HIDDEN))).sum().backward()

    def softplus():
        fused.softplus(t((BATCH, HIDDEN))).sum().backward()

    def nll_from_probs():
        probs = fused.softmax(t((BATCH, VOCAB)), axis=1)
        fused.nll_from_probs(probs, bow_vocab).backward()

    def log_softmax_nll():
        fused.log_softmax_nll(t((BATCH, VOCAB)), bow_vocab).backward()

    def kl_normal_standard():
        fused.kl_normal_standard(t((BATCH, TOPICS)), t((BATCH, TOPICS), 0.1)).backward()

    def batch_norm():
        fused.batch_norm(
            t((BATCH, HIDDEN)),
            running_mean=np.zeros(HIDDEN, dtype=dt),
            running_var=np.ones(HIDDEN, dtype=dt),
            weight=t(HIDDEN, 0.1),
            bias=t(HIDDEN, 0.1),
            training=True,
        ).sum().backward()

    cases = [
        ("linear", linear),
        ("softmax", softmax),
        ("log_softmax", log_softmax),
        ("logsumexp", logsumexp),
        ("sigmoid", sigmoid),
        ("softplus", softplus),
        ("nll_from_probs", nll_from_probs),
        ("log_softmax_nll", log_softmax_nll),
        ("kl_normal_standard", kl_normal_standard),
        ("batch_norm", batch_norm),
    ]
    missing = set(fused.PROFILED_FUSED_OPS) - {name for name, _ in cases}
    if missing:  # a new kernel must get a case before it ships
        raise AssertionError(f"fused ops without a microbench case: {sorted(missing)}")
    return cases


def run_ops_microbench(
    registry: MetricsRegistry | None = None,
    repeats: int = DEFAULT_REPEATS,
    dtype: str | np.dtype | None = None,
    seed: int = 0,
) -> MetricsRegistry:
    """Time every fused kernel's forward+backward on fixed seeded inputs.

    Parameters
    ----------
    registry:
        Sink for the ``op/*`` metrics (a fresh one is created if omitted).
    repeats:
        Timed repetitions per op (each repetition is one forward and one
        full backward on freshly built inputs).
    dtype:
        ``"float32"``/``"float64"``; defaults to the process default.
    seed:
        Seed of the input generator; fixed inputs make reports comparable.

    Returns
    -------
    The registry holding one ``op/<name>`` timer row per fused kernel.
    """
    registry = registry if registry is not None else MetricsRegistry()
    dt = resolve_dtype(dtype) if dtype is not None else get_default_dtype()
    with default_dtype(dt):
        cases = _cases(np.random.default_rng(seed), dt)
        for _, thunk in cases:  # warm-up: exclude first-call costs
            thunk()
        with profile_ops(registry):
            for _ in range(repeats):
                for _, thunk in cases:
                    thunk()
    registry.count("microbench/repeats", repeats, absolute=True)
    return registry

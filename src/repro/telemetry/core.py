"""Low-overhead timers, counters and the :class:`MetricsRegistry`.

The registry is the single sink every telemetry producer writes into:
op-level profiling hooks (:mod:`repro.telemetry.ophooks`), the trainer's
:class:`~repro.telemetry.callback.TelemetryCallback`, and the benchmark
suite's per-stage timers.  Timings use the monotonic high-resolution clock
(``time.perf_counter``) so they are immune to wall-clock adjustments.

Scoped keys
-----------
Timer blocks nest: entering ``registry.timer("fit")`` and, inside it,
``registry.timer("epoch")`` records the inner block under the key
``"fit/epoch"``.  The scope stack is thread-local, so timings from
different threads never interleave into wrong keys.  Producers that need
stable keys regardless of the caller's scope (the op hooks do) pass
``absolute=True``.
"""

from __future__ import annotations

import json
import math
import threading
import time
import uuid
from dataclasses import dataclass
from typing import IO

SCOPE_SEPARATOR = "/"


class Counter:
    """A named monotonically-growing tally (calls, bytes, documents...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value

    def add(self, amount: float = 1) -> None:
        """Increase the tally by ``amount`` (int or float)."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Counter({self.name!r}, {self.value!r})"


@dataclass
class TimerStat:
    """Aggregate statistics of every completed timing of one key."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0

    def record(self, seconds: float) -> None:
        """Fold one measured duration into the aggregate."""
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        """Average duration over all recordings (0.0 before the first)."""
        return self.total_seconds / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-ready summary of this stat."""
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
        }

    def merge(self, other: "TimerStat | dict") -> None:
        """Fold another stat (or its :meth:`as_dict` form) into this one."""
        if isinstance(other, dict):
            count = int(other.get("count", 0))
            if not count:
                return
            self.count += count
            self.total_seconds += float(other.get("total_seconds", 0.0))
            self.min_seconds = min(
                self.min_seconds, float(other.get("min_seconds", math.inf))
            )
            self.max_seconds = max(
                self.max_seconds, float(other.get("max_seconds", 0.0))
            )
        else:
            if not other.count:
                return
            self.count += other.count
            self.total_seconds += other.total_seconds
            self.min_seconds = min(self.min_seconds, other.min_seconds)
            self.max_seconds = max(self.max_seconds, other.max_seconds)


class Timer:
    """Context manager timing one block into a registry.

    Entering pushes the timer's name onto the registry's (thread-local)
    scope stack, so timers started inside the block nest under it.  The
    elapsed time is recorded on exit — also when the block raises, so a
    failing stage still shows up in the report.
    """

    __slots__ = ("registry", "name", "_key", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self.registry = registry
        self.name = name
        self._key: str | None = None
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._key = self.registry._push_scope(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        self.registry._pop_scope()
        assert self._key is not None
        self.registry.record_seconds(self._key, elapsed, absolute=True)

    @property
    def key(self) -> str | None:
        """Full scoped key this timer records under (set on ``__enter__``)."""
        return self._key


class MetricsRegistry:
    """Accumulates named counters and timer statistics.

    All mutating methods are cheap (a dict lookup and a float add); the
    registry itself is a passive sink and performs no I/O — serialisation
    lives in :meth:`snapshot` / :meth:`dump_json` and
    :mod:`repro.telemetry.report`.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.timers: dict[str, TimerStat] = {}
        self._scopes = threading.local()
        #: Identity of this registry's recorded contents, carried through
        #: :meth:`snapshot` so merges can be made idempotent: folding the
        #: same source in twice (directly or via a snapshot that already
        #: contains it) is a no-op instead of a double count.
        self.uid: str = uuid.uuid4().hex
        self._merged_uids: set[str] = set()

    # ------------------------------------------------------------------
    # scope handling
    # ------------------------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._scopes, "stack", None)
        if stack is None:
            stack = []
            self._scopes.stack = stack
        return stack

    def _push_scope(self, name: str) -> str:
        stack = self._stack()
        key = SCOPE_SEPARATOR.join([*stack, name]) if stack else name
        stack.append(name)
        return key

    def _pop_scope(self) -> None:
        self._stack().pop()

    def current_scope(self) -> str:
        """The active scope prefix ("" at top level)."""
        return SCOPE_SEPARATOR.join(self._stack())

    def scoped_key(self, name: str, absolute: bool = False) -> str:
        """Resolve ``name`` against the active scope stack."""
        if absolute:
            return name
        prefix = self.current_scope()
        return f"{prefix}{SCOPE_SEPARATOR}{name}" if prefix else name

    # ------------------------------------------------------------------
    # producers
    # ------------------------------------------------------------------
    def counter(self, name: str, absolute: bool = False) -> Counter:
        """Get (or create) the counter for ``name``."""
        key = self.scoped_key(name, absolute=absolute)
        counter = self.counters.get(key)
        if counter is None:
            counter = self.counters[key] = Counter(key)
        return counter

    def count(self, name: str, amount: float = 1, absolute: bool = False) -> None:
        """Shorthand for ``counter(name).add(amount)``."""
        self.counter(name, absolute=absolute).add(amount)

    def timer(self, name: str) -> Timer:
        """A context manager timing a block under the (nested) key ``name``."""
        return Timer(self, name)

    def record_seconds(self, name: str, seconds: float, absolute: bool = False) -> None:
        """Fold an externally-measured duration into the stats for ``name``."""
        key = self.scoped_key(name, absolute=absolute)
        stat = self.timers.get(key)
        if stat is None:
            stat = self.timers[key] = TimerStat()
        stat.record(seconds)

    # ------------------------------------------------------------------
    # consumers
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-serialisable view of every counter and timer.

        Includes the registry's ``uid`` (and the uids already merged into
        it), so :meth:`merge_snapshot` on the receiving side can reject
        duplicates.
        """
        return {
            "uid": self.uid,
            "merged_uids": sorted(self._merged_uids),
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "timers": {k: t.as_dict() for k, t in sorted(self.timers.items())},
        }

    def dump_json(self, fp: IO[str], indent: int | None = 2) -> None:
        """Write :meth:`snapshot` as JSON to an open text file."""
        json.dump(self.snapshot(), fp, indent=indent, sort_keys=True)

    def merge(self, other: "MetricsRegistry") -> bool:
        """Fold another registry's counters and timers into this one.

        Idempotent: a source registry (identified by its ``uid``) is
        folded in at most once, and a source that already contains this
        registry's own contributions is likewise rejected, so parallel
        fan-in cannot double-count nested ``profile_ops`` scopes no
        matter how many code paths hand the same registry back.  Returns
        ``True`` when the contents were folded, ``False`` on a no-op.
        """
        if not self._admit(other.uid, other._merged_uids):
            return False
        for key, counter in other.counters.items():
            self.counter(key, absolute=True).add(counter.value)
        for key, stat in other.timers.items():
            mine = self.timers.get(key)
            if mine is None:
                mine = self.timers[key] = TimerStat()
            mine.merge(stat)
        return True

    def merge_snapshot(self, snapshot: dict) -> bool:
        """Fold a :meth:`snapshot` dictionary into this registry.

        The cross-process form of :meth:`merge` — worker processes ship
        snapshots, not live registries.  Same idempotence contract: a
        snapshot whose ``uid`` was already merged is a no-op.  Snapshots
        predating the ``uid`` field are merged unconditionally.
        """
        uid = snapshot.get("uid")
        if not self._admit(uid, snapshot.get("merged_uids", ())):
            return False
        for key, value in snapshot.get("counters", {}).items():
            self.counter(key, absolute=True).add(value)
        for key, stats in snapshot.get("timers", {}).items():
            mine = self.timers.get(key)
            if mine is None:
                mine = self.timers[key] = TimerStat()
            mine.merge(stats)
        return True

    def _admit(self, uid: str | None, transitive) -> bool:
        """Record a merge source; False when it was already folded in."""
        if uid is not None:
            if uid == self.uid or uid in self._merged_uids:
                return False
            self._merged_uids.add(uid)
        self._merged_uids.update(u for u in transitive if u != self.uid)
        return True

    def reset(self) -> None:
        """Drop every recorded counter and timer (scope stack survives).

        Also forgets merged-source uids and adopts a fresh ``uid``: an
        emptied registry is new content, mergeable again.
        """
        self.counters.clear()
        self.timers.clear()
        self._merged_uids.clear()
        self.uid = uuid.uuid4().hex

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"timers={len(self.timers)})"
        )


__all__ = ["Counter", "TimerStat", "Timer", "MetricsRegistry", "SCOPE_SEPARATOR"]

"""Op-level profiling hooks for the autodiff engine.

:func:`profile_ops` wraps every operation listed in
:data:`repro.tensor.tensor.PROFILED_TENSOR_OPS`,
:data:`repro.tensor.tensor.PROFILED_MODULE_OPS` and
:data:`repro.tensor.functional.PROFILED_FUNCTIONAL_OPS` with a shim that
records, per op:

* ``op/<name>`` (timer)            — forward wall-time
* ``op/<name>.backward`` (timer)   — wall-time of the op's backward closure
* ``op/<name>.calls`` (counter)    — forward invocations
* ``op/<name>.bytes`` (counter)    — bytes allocated for the output array

The shims are installed by *swapping class and module attributes* and are
removed on exit, so the disabled path runs the original, unwrapped
functions — zero overhead when profiling is off, and zero numerical
impact when it is on (the shim calls the original exactly once and only
observes the result).

Profiling is process-global (it patches the shared classes/modules), so it
is deliberately non-reentrant: nesting two ``profile_ops`` blocks raises
:class:`~repro.errors.TelemetryError`.  It is also not thread-safe —
profile single-threaded sections only.
"""

from __future__ import annotations

import contextlib
import functools
import time
from typing import Iterator

from repro.errors import TelemetryError
from repro.telemetry.core import MetricsRegistry
from repro.tensor import functional as _functional
from repro.tensor import tensor as _tensor
from repro.tensor.tensor import (
    PROFILED_MODULE_OPS,
    PROFILED_TENSOR_OPS,
    Tensor,
)

#: Key prefix every op-hook metric is recorded under.
OP_PREFIX = "op/"

#: Timer key for full reverse-mode graph traversals.
BACKWARD_PASS_KEY = "autograd/backward_pass"

# The single active registry; module-global so the wrappers can assert
# non-reentrancy cheaply.
_ACTIVE: MetricsRegistry | None = None


def is_profiling() -> bool:
    """Whether a :func:`profile_ops` block is currently active."""
    return _ACTIVE is not None


def op_label(attribute_name: str) -> str:
    """Human-readable op name: ``__matmul__`` -> ``matmul``."""
    return attribute_name.strip("_")


def _wrap_op(fn, label: str, registry: MetricsRegistry):
    """Build the timing/counting shim around one forward function."""
    key = OP_PREFIX + label
    backward_key = key + ".backward"
    calls_key = key + ".calls"
    bytes_key = key + ".bytes"

    @functools.wraps(fn)
    def profiled(*args, **kwargs):
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        registry.record_seconds(key, time.perf_counter() - start, absolute=True)
        registry.count(calls_key, absolute=True)
        if isinstance(out, Tensor):
            registry.count(bytes_key, out.data.nbytes, absolute=True)
            inner = out._backward
            if inner is not None:

                def timed_backward(grad, _inner=inner):
                    t0 = time.perf_counter()
                    _inner(grad)
                    registry.record_seconds(
                        backward_key, time.perf_counter() - t0, absolute=True
                    )

                out._backward = timed_backward
        return out

    profiled.__profiled_original__ = fn
    return profiled


def _wrap_backward_pass(fn, registry: MetricsRegistry):
    """Time whole ``Tensor.backward`` traversals (closures included)."""

    @functools.wraps(fn)
    def profiled(self, grad=None):
        start = time.perf_counter()
        result = fn(self, grad)
        registry.record_seconds(
            BACKWARD_PASS_KEY, time.perf_counter() - start, absolute=True
        )
        registry.count(BACKWARD_PASS_KEY + ".calls", absolute=True)
        return result

    profiled.__profiled_original__ = fn
    return profiled


@contextlib.contextmanager
def profile_ops(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Enable op-level profiling of the autodiff engine inside a block.

    Parameters
    ----------
    registry:
        Sink for the recorded metrics.  A fresh :class:`MetricsRegistry`
        is created (and yielded) when omitted.

    Yields
    ------
    The registry collecting ``op/*`` timers and counters.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise TelemetryError("profile_ops() does not nest; a block is already active")
    registry = registry if registry is not None else MetricsRegistry()
    _ACTIVE = registry

    saved: list[tuple[object, str, object]] = []

    def install(owner, attribute: str, wrapper) -> None:
        saved.append((owner, attribute, getattr(owner, attribute)))
        setattr(owner, attribute, wrapper)

    try:
        for name in PROFILED_TENSOR_OPS:
            original = getattr(Tensor, name)
            install(Tensor, name, _wrap_op(original, op_label(name), registry))
        install(
            Tensor, "backward", _wrap_backward_pass(Tensor.backward, registry)
        )
        for name in PROFILED_MODULE_OPS:
            original = getattr(_tensor, name)
            install(_tensor, name, _wrap_op(original, op_label(name), registry))
        for name in _functional.PROFILED_FUNCTIONAL_OPS:
            original = getattr(_functional, name)
            install(_functional, name, _wrap_op(original, op_label(name), registry))
        yield registry
    finally:
        for owner, attribute, original in reversed(saved):
            setattr(owner, attribute, original)
        _ACTIVE = None

"""Op-level profiling hooks for the autodiff engine.

:func:`profile_ops` wraps every operation listed in
:data:`repro.tensor.tensor.PROFILED_TENSOR_OPS`,
:data:`repro.tensor.tensor.PROFILED_MODULE_OPS`,
:data:`repro.tensor.functional.PROFILED_FUNCTIONAL_OPS` and
:data:`repro.tensor.fused.PROFILED_FUSED_OPS` with a shim that records,
per op:

* ``op/<name>`` (timer)            — forward wall-time
* ``op/<name>.backward`` (timer)   — wall-time of the op's backward closure
* ``op/<name>.calls`` (counter)    — forward invocations
* ``op/<name>.bytes`` (counter)    — bytes allocated for the output array

The shims are installed by *swapping class and module attributes* and are
removed again when no block is active, so the disabled path runs the
original, unwrapped functions — zero overhead when profiling is off, and
zero numerical impact when it is on (the shim calls the original exactly
once and only observes the result).

Blocks **nest**: the attribute swap happens once, at the outermost entry,
and every active block's registry receives the recorded metrics.  This is
what lets the benchmark suite keep a session-wide ops table (for
``BENCH_suite.json``) while individual benchmarks run their own focused
``profile_ops`` sections.  An op's backward closure is attributed to the
blocks that were active when its *forward* ran, which keeps attribution
stable even when ``backward()`` fires after an inner block has exited.

Profiling is process-global (it patches the shared classes/modules) and
not thread-safe — profile single-threaded sections only.
"""

from __future__ import annotations

import contextlib
import functools
import time
from typing import Iterator

from repro.telemetry.core import MetricsRegistry
from repro.tensor import functional as _functional
from repro.tensor import fused as _fused
from repro.tensor import tensor as _tensor
from repro.tensor.tensor import (
    PROFILED_MODULE_OPS,
    PROFILED_TENSOR_OPS,
    Tensor,
)

#: Key prefix every op-hook metric is recorded under.
OP_PREFIX = "op/"

#: Timer key for full reverse-mode graph traversals.
BACKWARD_PASS_KEY = "autograd/backward_pass"

# The stack of active registries; module-global so the installed shims can
# fan recorded metrics out to every enclosing profile_ops block.
_STACK: list[MetricsRegistry] = []

# Attribute swaps made by the outermost block, unwound when it exits.
_SAVED: list[tuple[object, str, object]] = []


def is_profiling() -> bool:
    """Whether at least one :func:`profile_ops` block is currently active."""
    return bool(_STACK)


def op_label(attribute_name: str) -> str:
    """Human-readable op name: ``__matmul__`` -> ``matmul``."""
    return attribute_name.strip("_")


def _wrap_op(fn, label: str):
    """Build the timing/counting shim around one forward function."""
    key = OP_PREFIX + label
    backward_key = key + ".backward"
    calls_key = key + ".calls"
    bytes_key = key + ".bytes"

    @functools.wraps(fn)
    def profiled(*args, **kwargs):
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        registries = tuple(_STACK)
        for registry in registries:
            registry.record_seconds(key, elapsed, absolute=True)
            registry.count(calls_key, absolute=True)
        if isinstance(out, Tensor):
            for registry in registries:
                registry.count(bytes_key, out.data.nbytes, absolute=True)
            inner = out._backward
            if inner is not None:

                def timed_backward(grad, _inner=inner, _regs=registries):
                    t0 = time.perf_counter()
                    _inner(grad)
                    elapsed_b = time.perf_counter() - t0
                    for registry in _regs:
                        registry.record_seconds(
                            backward_key, elapsed_b, absolute=True
                        )

                out._backward = timed_backward
        return out

    profiled.__profiled_original__ = fn
    return profiled


def _wrap_backward_pass(fn):
    """Time whole ``Tensor.backward`` traversals (closures included)."""

    @functools.wraps(fn)
    def profiled(self, grad=None):
        start = time.perf_counter()
        result = fn(self, grad)
        elapsed = time.perf_counter() - start
        for registry in tuple(_STACK):
            registry.record_seconds(BACKWARD_PASS_KEY, elapsed, absolute=True)
            registry.count(BACKWARD_PASS_KEY + ".calls", absolute=True)
        return result

    profiled.__profiled_original__ = fn
    return profiled


def _install_shims() -> None:
    def install(owner, attribute: str, wrapper) -> None:
        _SAVED.append((owner, attribute, getattr(owner, attribute)))
        setattr(owner, attribute, wrapper)

    for name in PROFILED_TENSOR_OPS:
        install(Tensor, name, _wrap_op(getattr(Tensor, name), op_label(name)))
    install(Tensor, "backward", _wrap_backward_pass(Tensor.backward))
    for name in PROFILED_MODULE_OPS:
        install(_tensor, name, _wrap_op(getattr(_tensor, name), op_label(name)))
    # Fused kernels before their functional aliases: both module attributes
    # point at the same raw function, so each gets its own shim around the
    # unwrapped original and a call through either records exactly once.
    for name in _fused.PROFILED_FUSED_OPS:
        install(_fused, name, _wrap_op(getattr(_fused, name), op_label(name)))
    for name in _functional.PROFILED_FUNCTIONAL_OPS:
        install(
            _functional, name, _wrap_op(getattr(_functional, name), op_label(name))
        )


def _uninstall_shims() -> None:
    while _SAVED:
        owner, attribute, original = _SAVED.pop()
        setattr(owner, attribute, original)


@contextlib.contextmanager
def profile_ops(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Enable op-level profiling of the autodiff engine inside a block.

    Blocks nest: the shims are installed once by the outermost block and
    every active block's registry receives the metrics, so a suite-wide
    profiling session and a benchmark-local one can overlap.

    Parameters
    ----------
    registry:
        Sink for the recorded metrics.  A fresh :class:`MetricsRegistry`
        is created (and yielded) when omitted.

    Yields
    ------
    The registry collecting ``op/*`` timers and counters.
    """
    registry = registry if registry is not None else MetricsRegistry()
    if not _STACK:
        _install_shims()
    _STACK.append(registry)
    try:
        yield registry
    finally:
        _STACK.remove(registry)
        if not _STACK:
            _uninstall_shims()

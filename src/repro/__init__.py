"""repro — ContraTopic (ICDE 2024) reproduction.

A complete, from-scratch reproduction of "Enhancing Topic Interpretability
for Neural Topic Modeling through Topic-wise Contrastive Learning" on a
numpy-only stack: a reverse-mode autodiff engine (:mod:`repro.tensor`), a
neural-network library (:mod:`repro.nn`), corpus / embedding / metric
substrates, nine baseline topic models, the ContraTopic model itself
(:mod:`repro.core`), and an experiment harness regenerating every table
and figure of the paper (:mod:`repro.experiments`).

Quickstart::

    from repro import load_20ng, build_embeddings, compute_npmi_matrix
    from repro import ETM, NTMConfig, ContraTopic, ContraTopicConfig, npmi_kernel

    ds = load_20ng(scale=0.3)
    emb = build_embeddings(ds.train, dim=50)
    npmi = compute_npmi_matrix(ds.train)
    backbone = ETM(ds.vocab_size, NTMConfig(num_topics=40), emb.vectors)
    model = ContraTopic(backbone, npmi_kernel(npmi),
                        ContraTopicConfig(lambda_weight=200.0))
    model.fit(ds.train)
    print(model.top_words(ds.train.vocabulary, 10)[:5])
"""

from repro.data import (
    Corpus,
    Vocabulary,
    load_20ng,
    load_yahoo,
    load_nytimes,
    load_dataset,
)
from repro.embeddings import build_embeddings, EmbeddingStore
from repro.metrics import (
    compute_npmi_matrix,
    NpmiMatrix,
    topic_coherence,
    topic_diversity,
    purity,
    normalized_mutual_information,
    word_intrusion_score,
)
from repro.models import (
    NTMConfig,
    TopicModel,
    LatentDirichletAllocation,
    ProdLDA,
    ETM,
    WLDA,
    NSTM,
    WeTe,
    NTMR,
    VTMRL,
    CLNTM,
    build_model,
    available_models,
)
from repro.core import (
    ContraTopic,
    ContraTopicConfig,
    ContrastiveMode,
    npmi_kernel,
    embedding_kernel,
    build_variant,
)

__version__ = "1.0.0"

__all__ = [
    "Corpus",
    "Vocabulary",
    "load_20ng",
    "load_yahoo",
    "load_nytimes",
    "load_dataset",
    "build_embeddings",
    "EmbeddingStore",
    "compute_npmi_matrix",
    "NpmiMatrix",
    "topic_coherence",
    "topic_diversity",
    "purity",
    "normalized_mutual_information",
    "word_intrusion_score",
    "NTMConfig",
    "TopicModel",
    "LatentDirichletAllocation",
    "ProdLDA",
    "ETM",
    "WLDA",
    "NSTM",
    "WeTe",
    "NTMR",
    "VTMRL",
    "CLNTM",
    "build_model",
    "available_models",
    "ContraTopic",
    "ContraTopicConfig",
    "ContrastiveMode",
    "npmi_kernel",
    "embedding_kernel",
    "build_variant",
    "__version__",
]

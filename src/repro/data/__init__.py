"""Corpus substrate: vocabularies, documents, preprocessing and datasets.

The paper evaluates on 20 Newsgroups, UIUC Yahoo Answers and NYTimes.  None
of these can be downloaded in this offline environment, so the package ships
a ground-truth synthetic corpus generator (:mod:`repro.data.synthetic`) over
hand-written *theme banks*, with dataset profiles that miniaturize each of
the paper's corpora (:mod:`repro.data.datasets`).  The full real-text
preprocessing pipeline from the paper (tokenize, stop-word removal,
document-frequency filters, short-document removal) is implemented in
:mod:`repro.data.preprocessing` and applied to the generated raw text, so a
user with the real corpora can substitute them directly.
"""

from repro.data.vocabulary import Vocabulary
from repro.data.corpus import Corpus, CorpusStats
from repro.data.preprocessing import (
    PreprocessConfig,
    Preprocessor,
    simple_tokenize,
    STOP_WORDS,
)
from repro.data.synthetic import SyntheticCorpusConfig, SyntheticCorpusGenerator, THEME_BANKS
from repro.data.datasets import (
    DatasetProfile,
    load_20ng,
    load_yahoo,
    load_nytimes,
    load_dataset,
    DATASET_PROFILES,
)
from repro.data.loaders import BatchIterator, train_valid_split

__all__ = [
    "Vocabulary",
    "Corpus",
    "CorpusStats",
    "PreprocessConfig",
    "Preprocessor",
    "simple_tokenize",
    "STOP_WORDS",
    "SyntheticCorpusConfig",
    "SyntheticCorpusGenerator",
    "THEME_BANKS",
    "DatasetProfile",
    "load_20ng",
    "load_yahoo",
    "load_nytimes",
    "load_dataset",
    "DATASET_PROFILES",
    "BatchIterator",
    "train_valid_split",
]

"""Hand-written theme word banks used by the synthetic corpus generator.

Each bank is a list of English words that co-occur within one latent theme.
The banks deliberately mirror the themes of the paper's three corpora: the
20 Newsgroups groups (space, medicine, religion, cryptography, hockey, ...),
Yahoo Answers categories (cooking, pets, gaming, relationships, ...) and New
York Times desks (mid-east conflict, Afghanistan war, NBA, markets, Spanish-
language news, ...).  A small number of words are intentionally shared
between related banks (e.g. ``government`` in guns/politics/mideast) so that
topic models face realistic topic overlap.
"""

from __future__ import annotations

THEME_BANKS: dict[str, tuple[str, ...]] = {
    # ------------------------------------------------------------------
    # 20 Newsgroups flavoured themes
    # ------------------------------------------------------------------
    "space": (
        "space", "nasa", "launch", "orbit", "earth", "moon", "shuttle",
        "satellite", "lunar", "mission", "rocket", "solar", "mars",
        "astronaut", "spacecraft", "telescope", "gravity", "payload",
        "probe", "station", "flight", "apollo", "jupiter", "comet",
        "astronomy", "propulsion", "reentry", "booster",
    ),
    "medicine": (
        "patients", "health", "medical", "disease", "cancer", "drug",
        "study", "drugs", "doctor", "treatment", "symptoms", "pain",
        "blood", "diet", "infection", "diagnosis", "therapy", "clinical",
        "medicine", "vitamin", "syndrome", "chronic", "surgery", "dose",
        "physician", "immune", "allergy", "diabetes",
    ),
    "christianity": (
        "god", "jesus", "bible", "church", "christian", "faith", "christ",
        "christians", "holy", "scripture", "sin", "heaven", "prayer",
        "gospel", "lord", "catholic", "spirit", "worship", "belief",
        "doctrine", "resurrection", "apostle", "testament", "grace",
        "salvation", "priest", "theology", "sermon",
    ),
    "atheism": (
        "atheism", "atheist", "religion", "morality", "argument",
        "evidence", "claim", "belief", "exist", "existence", "rational",
        "logic", "reason", "moral", "objective", "fallacy", "agnostic",
        "deity", "dogma", "skeptic", "proof", "premise", "philosophy",
        "assertion", "debate", "secular",
    ),
    "mideast": (
        "israel", "jews", "israeli", "war", "jewish", "arab", "state",
        "land", "palestinian", "peace", "arabs", "lebanon", "occupation",
        "territory", "zionism", "settlement", "gaza", "syria", "border",
        "conflict", "refugees", "homeland", "treaty", "militia",
    ),
    "guns": (
        "gun", "guns", "weapon", "weapons", "firearms", "police", "crime",
        "criminal", "amendment", "rights", "control", "law", "defense",
        "shooting", "rifle", "pistol", "ammunition", "permit", "militia",
        "homicide", "legislation", "ban", "ownership", "holster",
    ),
    "armenia": (
        "armenian", "armenians", "turkish", "turkey", "genocide",
        "azerbaijan", "turks", "armenia", "greek", "ottoman", "massacre",
        "soviet", "muslims", "villages", "azeri", "karabakh", "empire",
        "deportation", "anatolia", "caucasus", "istanbul", "nagorno",
    ),
    "cryptography": (
        "key", "encryption", "chip", "keys", "clipper", "security",
        "privacy", "escrow", "algorithm", "nsa", "cipher", "secret",
        "crypto", "des", "rsa", "wiretap", "decrypt", "encrypt",
        "cryptography", "protocol", "backdoor", "plaintext", "secure",
        "surveillance",
    ),
    "hockey": (
        "hockey", "nhl", "goal", "puck", "ice", "penguins", "rangers",
        "playoff", "playoffs", "goalie", "leafs", "bruins", "detroit",
        "wings", "canadiens", "skate", "defenseman", "overtime",
        "espn", "stanley", "cup", "period", "shots", "roster",
    ),
    "baseball": (
        "baseball", "pitcher", "braves", "hitter", "runs", "pitching",
        "yankees", "mets", "inning", "hit", "batting", "league",
        "season", "game", "team", "players", "stats", "catcher",
        "outfield", "bullpen", "shortstop", "homer", "strikeout", "cubs",
    ),
    "graphics": (
        "image", "graphics", "images", "jpeg", "color", "gif", "format",
        "picture", "bit", "files", "file", "animation", "pixel",
        "polygon", "conversion", "viewer", "tiff", "render", "scanner",
        "shareware", "bitmap", "resolution", "palette", "rgb",
    ),
    "windows_os": (
        "windows", "dos", "file", "program", "files", "driver", "drivers",
        "microsoft", "version", "application", "running", "memory",
        "swap", "mode", "utility", "directory", "install", "config",
        "desktop", "shell", "menu", "icon", "crash", "patch",
    ),
    "pc_hardware": (
        "drive", "scsi", "disk", "hard", "controller", "drives", "bus",
        "floppy", "ide", "card", "motherboard", "ram", "bios", "cpu",
        "mhz", "jumper", "cache", "slot", "isa", "port", "modem",
        "monitor", "vga", "upgrade",
    ),
    "mac_hardware": (
        "mac", "apple", "quadra", "centris", "powerbook", "simms",
        "duo", "monitor", "nubus", "adb", "lciii", "macs", "vram",
        "system", "fpu", "keyboard", "mouse", "printer", "appletalk",
        "serial", "scsi", "expansion", "internal",
    ),
    "xwindows": (
        "server", "motif", "application", "widget", "export", "client",
        "xterm", "unix", "display", "window", "openwindows", "font",
        "sunos", "xlib", "usr", "lib", "screen", "session", "manager",
        "toolkit", "resources", "binaries", "compile", "xfree",
    ),
    "electronics": (
        "circuit", "voltage", "amp", "battery", "power", "wire",
        "signal", "output", "input", "radio", "frequency", "resistor",
        "capacitor", "chip", "audio", "ground", "electronics", "volt",
        "transistor", "oscillator", "antenna", "detector", "supply",
    ),
    "autos": (
        "car", "cars", "engine", "dealer", "ford", "oil", "mileage",
        "tires", "toyota", "honda", "brake", "brakes", "wheel",
        "transmission", "vehicle", "driving", "clutch", "sedan",
        "warranty", "convertible", "mustang", "rust", "exhaust",
    ),
    "motorcycles": (
        "bike", "motorcycle", "ride", "riding", "helmet", "bikes",
        "bmw", "rider", "dod", "yamaha", "honda", "harley", "kawasaki",
        "dirt", "seat", "gloves", "gear", "throttle", "passenger",
        "highway", "wheelie", "countersteering",
    ),
    "forsale": (
        "sale", "offer", "shipping", "condition", "asking", "sell",
        "price", "email", "interested", "items", "includes", "obo",
        "manual", "brand", "box", "mint", "postage", "stereo",
        "cassette", "packaging", "bundle", "auction",
    ),
    "us_politics": (
        "president", "clinton", "government", "congress", "tax", "taxes",
        "house", "senate", "administration", "bill", "jobs", "economy",
        "budget", "deficit", "federal", "policy", "campaign", "vote",
        "republican", "democrat", "reform", "senator", "legislation",
    ),
    "waco": (
        "fbi", "koresh", "fire", "waco", "batf", "compound", "davidians",
        "agents", "cult", "raid", "siege", "hostages", "gas", "atf",
        "warrant", "branch", "standoff", "tear", "assault", "children",
        "investigation", "tanks",
    ),
    # ------------------------------------------------------------------
    # Yahoo Answers flavoured themes
    # ------------------------------------------------------------------
    "cooking": (
        "cup", "add", "salt", "minutes", "sugar", "butter", "mix",
        "cream", "oil", "cheese", "sauce", "pepper", "garlic", "juice",
        "flour", "bake", "oven", "recipe", "chicken", "onion", "dough",
        "boil", "simmer", "preheat", "parmesan", "mozzarella", "saute",
        "grated", "browned", "baking", "chocolate",
    ),
    "dieting": (
        "weight", "body", "fat", "lose", "eat", "healthy", "exercise",
        "calories", "diet", "eating", "foods", "protein", "carbs",
        "muscle", "workout", "gym", "metabolism", "meals", "snack",
        "pounds", "fitness", "nutrition", "cardio", "hunger",
    ),
    "pets": (
        "dog", "dogs", "cat", "cats", "vet", "puppy", "feed", "pet",
        "animals", "kitten", "breed", "food", "litter", "toys",
        "training", "leash", "fur", "paws", "veterinarian", "adopt",
        "shelter", "fleas", "groom", "bark",
    ),
    "relationships": (
        "love", "girlfriend", "boyfriend", "friend", "relationship",
        "feelings", "talk", "together", "heart", "marriage", "dating",
        "breakup", "trust", "crush", "divorce", "jealous", "romantic",
        "partner", "commitment", "flirt", "honesty", "apology",
    ),
    "finance": (
        "money", "credit", "bank", "loan", "pay", "account", "debt",
        "interest", "card", "insurance", "mortgage", "invest", "savings",
        "stock", "salary", "rent", "budget", "refund", "paycheck",
        "bankruptcy", "dividend", "retirement", "taxes",
    ),
    "gadgets": (
        "phone", "ipod", "music", "song", "itunes", "cell", "plan",
        "number", "send", "email", "mail", "text", "download", "mp3",
        "ringtone", "bluetooth", "charger", "sim", "verizon", "nokia",
        "battery", "headphones", "speaker", "sync",
    ),
    "gaming": (
        "pokemon", "game", "games", "xbox", "ps2", "nintendo", "wii",
        "console", "level", "player", "diamond", "pearl", "trade",
        "battle", "cheat", "codes", "controller", "online", "halo",
        "zelda", "shiny", "quest", "unlock", "multiplayer",
    ),
    "computers_help": (
        "laptop", "pc", "card", "memory", "graphics", "ram", "processor",
        "pentium", "mhz", "nvidia", "ghz", "intel", "geforce", "screen",
        "virus", "install", "software", "update", "wireless", "router",
        "browser", "firewall", "desktop", "gigabyte",
    ),
    "fashion": (
        "wear", "shoes", "shirt", "outfit", "dress", "jeans", "stores",
        "style", "clothes", "fashion", "abercrombie", "aeropostale",
        "pacsun", "store", "brand", "hollister", "skirt", "makeup",
        "accessories", "jacket", "sneakers", "trendy",
    ),
    "wrestling": (
        "wwe", "cena", "batista", "hhh", "khali", "umaga", "orton",
        "wrestling", "wrestler", "match", "champion", "raw", "smackdown",
        "wrestlemania", "title", "belt", "undertaker", "ring", "feud",
        "heel", "promo", "tagteam",
    ),
    "education": (
        "school", "college", "class", "teacher", "grade", "student",
        "study", "exam", "homework", "university", "degree", "courses",
        "semester", "tuition", "scholarship", "essay", "math",
        "science", "history", "diploma", "professor", "campus",
    ),
    "travel": (
        "trip", "travel", "hotel", "flight", "vacation", "airport",
        "ticket", "beach", "city", "tour", "passport", "visa",
        "luggage", "resort", "cruise", "destination", "booking",
        "itinerary", "sightseeing", "hostel", "airline", "abroad",
    ),
    # ------------------------------------------------------------------
    # NYTimes flavoured themes
    # ------------------------------------------------------------------
    "israel_palestine": (
        "palestinian", "israeli", "israel", "arafat", "yasser", "peace",
        "sharon", "israelis", "jerusalem", "arab", "westbank", "hamas",
        "intifada", "barak", "negotiations", "violence", "settlers",
        "ceasefire", "plo", "diplomacy", "summit", "truce",
    ),
    "afghan_war": (
        "military", "army", "taliban", "afghanistan", "forces", "war",
        "troop", "soldier", "laden", "afghan", "bin", "pakistan",
        "islamic", "osama", "terrorism", "qaeda", "kabul", "bombing",
        "pentagon", "airstrikes", "insurgents", "alliance",
    ),
    "russia": (
        "russian", "russia", "soviet", "vladimir", "putin", "moscow",
        "union", "chechnya", "kremlin", "yeltsin", "communist",
        "oligarch", "chechen", "siberia", "grozny", "duma", "tsar",
        "perestroika", "rubles", "gazprom",
    ),
    "markets": (
        "stock", "market", "percent", "shares", "investors", "company",
        "billion", "earnings", "nasdaq", "dow", "economy", "profit",
        "quarter", "analysts", "trading", "index", "bonds", "rally",
        "recession", "inflation", "merger", "acquisition",
    ),
    "film": (
        "film", "movie", "character", "actor", "movies", "comedy",
        "starring", "hollywood", "director", "screenplay", "drama",
        "audience", "oscar", "studio", "script", "premiere", "sequel",
        "documentary", "cinema", "box", "actress", "producer",
    ),
    "nba": (
        "laker", "nba", "neal", "shaquille", "bryant", "kobe", "phil",
        "jackson", "basketball", "knicks", "points", "rebounds",
        "celtics", "spurs", "finals", "coach", "guard", "forward",
        "dunk", "jumper", "timeout", "quarter",
    ),
    "nfl": (
        "game", "coach", "quarterback", "yard", "football", "bowl",
        "touchdown", "defensive", "offense", "receiver", "giants",
        "jets", "kicker", "fumble", "interception", "linebacker",
        "playoffs", "stadium", "huddle", "punt", "snap",
    ),
    "golf": (
        "pga", "bogey", "birdie", "birdies", "putt", "fairway", "par",
        "tee", "golf", "woods", "tournament", "hole", "round", "stroke",
        "caddie", "green", "bunker", "clubhouse", "masters", "leaderboard",
    ),
    "spanish_news": (
        "economia", "dedicada", "notas", "cubrir", "transmiten",
        "comercio", "temas", "expertos", "informacion", "telefono",
        "dicen", "algunos", "tienen", "estan", "para", "gran", "entre",
        "anos", "parte", "nuevas", "clase", "tiempos",
    ),
    "mlb_angels": (
        "erstad", "spiezio", "glaus", "bengie", "schoeneweis", "darin",
        "disarcina", "garret", "anaheim", "angels", "molina", "salmon",
        "percival", "scioscia", "anderson", "washburn", "rally",
        "clubhouse", "lineup", "bullpen",
    ),
}

# Generic words that appear across every theme: the "background" unigram
# distribution of a corpus.  These words carry no topical signal and give
# topic models something to explain away.
BACKGROUND_BANK: tuple[str, ...] = (
    "time", "people", "good", "make", "way", "think", "know", "take",
    "year", "years", "day", "thing", "things", "world", "work", "part",
    "back", "new", "first", "last", "long", "great", "little", "right",
    "place", "point", "number", "fact", "need", "want", "look", "find",
    "help", "problem", "question", "answer", "case", "different", "small",
    "large", "best", "better", "really", "sure", "actually", "probably",
    "someone", "anyone", "everyone", "anything", "something", "idea",
    "reason", "kind", "lot", "bit", "end", "start", "read", "write",
)


def bank_vocabulary() -> list[str]:
    """All distinct theme + background words, in deterministic order."""
    seen: set[str] = set()
    ordered: list[str] = []
    for bank in THEME_BANKS.values():
        for word in bank:
            if word not in seen:
                seen.add(word)
                ordered.append(word)
    for word in BACKGROUND_BANK:
        if word not in seen:
            seen.add(word)
            ordered.append(word)
    return ordered

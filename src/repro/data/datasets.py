"""Miniaturized dataset profiles for the paper's three corpora.

Each profile generates a synthetic raw-text corpus from theme banks (see
:mod:`repro.data.synthetic`), runs the paper's preprocessing pipeline, and
splits train/test.  Profiles mirror the *relative* characteristics of
Table I — Yahoo has more, shorter documents than 20NG; NYTimes has the most
documents, the longest documents and the largest vocabulary (it includes
Spanish-language themes, as the paper's Table VI shows) — at a scale that
trains on CPU in seconds.

A ``scale`` argument multiplies document counts, so experiments can trade
fidelity for speed uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.corpus import Corpus
from repro.data.preprocessing import PreprocessConfig, Preprocessor
from repro.data.synthetic import SyntheticCorpusConfig, SyntheticCorpusGenerator
from repro.data.theme_banks import THEME_BANKS
from repro.errors import ConfigError

_20NG_THEMES = (
    "space", "medicine", "christianity", "atheism", "mideast", "guns",
    "armenia", "cryptography", "hockey", "baseball", "graphics",
    "windows_os", "pc_hardware", "mac_hardware", "xwindows", "electronics",
    "autos", "motorcycles", "forsale", "us_politics", "waco",
)

_YAHOO_THEMES = (
    "cooking", "dieting", "pets", "relationships", "finance", "gadgets",
    "gaming", "computers_help", "fashion", "wrestling", "education",
    "travel", "christianity",
)

_NYT_THEMES = (
    "israel_palestine", "afghan_war", "russia", "markets", "film", "nba",
    "nfl", "golf", "spanish_news", "mlb_angels", "us_politics", "cooking",
    "medicine", "guns", "space", "armenia", "travel", "education",
)


@dataclass(frozen=True)
class DatasetProfile:
    """Recipe for one miniaturized corpus."""

    name: str
    themes: tuple[str, ...]
    num_train: int
    num_test: int
    average_length: float
    labeled: bool
    min_doc_count: int = 3
    doc_topic_alpha: float = 0.08
    seed: int = 2024

    def __post_init__(self) -> None:
        unknown = [t for t in self.themes if t not in THEME_BANKS]
        if unknown:
            raise ConfigError(f"profile {self.name}: unknown themes {unknown}")


DATASET_PROFILES: dict[str, DatasetProfile] = {
    # 20NG: mid-sized, 20 labels, ~60-token documents.
    "20ng": DatasetProfile(
        name="20ng",
        themes=_20NG_THEMES,
        num_train=1500,
        num_test=1000,
        average_length=60.0,
        labeled=True,
        seed=20,
    ),
    # Yahoo: more, shorter documents; fewer labels.
    "yahoo": DatasetProfile(
        name="yahoo",
        themes=_YAHOO_THEMES,
        num_train=2400,
        num_test=1600,
        average_length=46.0,
        labeled=True,
        seed=46,
    ),
    # NYTimes: most documents, longest documents, widest vocabulary,
    # no labels (the paper only clusters 20NG and Yahoo).
    "nytimes": DatasetProfile(
        name="nytimes",
        themes=_NYT_THEMES,
        num_train=2600,
        num_test=1700,
        average_length=140.0,
        labeled=False,
        min_doc_count=4,
        seed=345,
    ),
}


@dataclass
class Dataset:
    """A loaded dataset: train/test corpora sharing one vocabulary."""

    name: str
    train: Corpus
    test: Corpus
    label_names: list[str] | None
    profile: DatasetProfile

    @property
    def vocab_size(self) -> int:
        return self.train.vocab_size


def load_dataset(name: str, scale: float = 1.0, seed: int | None = None) -> Dataset:
    """Generate + preprocess one of the miniaturized paper corpora.

    Parameters
    ----------
    name:
        ``"20ng"``, ``"yahoo"`` or ``"nytimes"``.
    scale:
        Multiplier on the train/test document counts (e.g. ``0.25`` for the
        fast test-suite configuration).
    seed:
        Overrides the profile's generation seed (for multi-seed protocols).
    """
    try:
        profile = DATASET_PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_PROFILES)}"
        ) from None
    if scale <= 0:
        raise ConfigError("scale must be positive")

    num_train = max(40, int(round(profile.num_train * scale)))
    num_test = max(20, int(round(profile.num_test * scale)))
    gen_config = SyntheticCorpusConfig(
        themes=profile.themes,
        num_documents=num_train + num_test,
        average_length=profile.average_length,
        doc_topic_alpha=profile.doc_topic_alpha,
        seed=profile.seed if seed is None else seed,
    )
    texts, labels, _ = SyntheticCorpusGenerator(gen_config).generate()

    train_texts, test_texts = texts[:num_train], texts[num_train:]
    train_labels: Sequence[int] | None = labels[:num_train]
    test_labels: Sequence[int] | None = labels[num_train:]
    label_names: list[str] | None = list(profile.themes)
    if not profile.labeled:
        train_labels = None
        test_labels = None
        label_names = None

    pre = Preprocessor(
        PreprocessConfig(min_doc_count=_scaled_min_count(profile, scale))
    )
    train = pre.fit_transform(train_texts, labels=train_labels, label_names=label_names)
    test = pre.transform(test_texts, labels=test_labels, label_names=label_names)
    return Dataset(
        name=profile.name,
        train=train,
        test=test,
        label_names=label_names,
        profile=profile,
    )


def _scaled_min_count(profile: DatasetProfile, scale: float) -> int:
    """Scale the absolute min-document-count filter with corpus size."""
    return max(2, int(round(profile.min_doc_count * min(scale, 1.0))))


def load_20ng(scale: float = 1.0, seed: int | None = None) -> Dataset:
    """The miniaturized 20 Newsgroups profile (labeled, 21 themes)."""
    return load_dataset("20ng", scale=scale, seed=seed)


def load_yahoo(scale: float = 1.0, seed: int | None = None) -> Dataset:
    """The miniaturized Yahoo Answers profile (labeled, shorter docs)."""
    return load_dataset("yahoo", scale=scale, seed=seed)


def load_nytimes(scale: float = 1.0, seed: int | None = None) -> Dataset:
    """The miniaturized NYTimes profile (unlabeled, long docs, wide vocab)."""
    return load_dataset("nytimes", scale=scale, seed=seed)

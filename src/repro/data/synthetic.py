"""Ground-truth synthetic corpus generation.

Real 20NG / Yahoo / NYTimes text cannot be downloaded in this offline
environment, so corpora are generated from a Dirichlet-multinomial model
over the hand-written theme banks in :mod:`repro.data.theme_banks`:

1. each *theme* is a Zipf-weighted distribution over its word bank, mixed
   with a small amount of probability over the shared background bank;
2. each *document* draws a sparse Dirichlet mixture over themes, biased
   toward one dominant theme whose group provides the document label;
3. raw text is emitted (with injected stop words and hapax noise tokens) so
   that the full Table-I preprocessing pipeline is exercised end to end.

Because the generating topics are known, tests can verify that a topic model
recovers structure that actually exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.theme_banks import BACKGROUND_BANK, THEME_BANKS
from repro.errors import ConfigError


@dataclass
class SyntheticCorpusConfig:
    """Configuration of the generative story.

    Parameters
    ----------
    themes:
        Theme-bank names acting as ground-truth topics.
    num_documents:
        Documents to generate.
    average_length:
        Mean document length in tokens (before stop-word injection).
    doc_topic_alpha:
        Dirichlet concentration of the per-document theme mixture; small
        values give the sparse mixtures typical of news corpora.
    dominant_boost:
        Extra mass added to one randomly chosen dominant theme per document
        (its group id becomes the label).
    zipf_exponent:
        Within-theme word distribution decays as ``rank**-zipf_exponent``.
    background_weight:
        Fraction of topical draws replaced by background-bank words.
    stopword_rate:
        Fraction of emitted tokens that are injected stop words (removed
        again by preprocessing; they exist to exercise that code path).
    noise_word_rate / num_noise_words:
        Rare hapax-like tokens injected to exercise the min-doc-count filter.
    seed:
        RNG seed; the whole corpus is a deterministic function of the config.
    """

    themes: Sequence[str]
    num_documents: int = 1000
    average_length: float = 60.0
    doc_topic_alpha: float = 0.08
    dominant_boost: float = 6.0
    zipf_exponent: float = 1.05
    background_weight: float = 0.18
    stopword_rate: float = 0.25
    noise_word_rate: float = 0.01
    num_noise_words: int = 40
    min_length: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.themes:
            raise ConfigError("at least one theme is required")
        unknown = [t for t in self.themes if t not in THEME_BANKS]
        if unknown:
            raise ConfigError(f"unknown themes: {unknown}")
        if self.num_documents < 1:
            raise ConfigError("num_documents must be >= 1")
        if self.average_length < self.min_length:
            raise ConfigError("average_length must be >= min_length")
        if not 0.0 <= self.background_weight < 1.0:
            raise ConfigError("background_weight must be in [0, 1)")
        if not 0.0 <= self.stopword_rate < 1.0:
            raise ConfigError("stopword_rate must be in [0, 1)")


@dataclass
class SyntheticDocument:
    """A generated raw-text document with its ground-truth provenance."""

    text: str
    label: int
    theme_mixture: np.ndarray


# A few injectable stop words (all present in preprocessing.STOP_WORDS).
_INJECTED_STOP_WORDS = (
    "the", "and", "of", "to", "in", "is", "that", "it", "for", "with",
    "was", "this", "are", "be", "on", "not", "have", "you",
)


class SyntheticCorpusGenerator:
    """Sample raw-text documents from the theme-bank generative story."""

    def __init__(self, config: SyntheticCorpusConfig):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.theme_names = list(config.themes)
        self._vocab, self._theme_dists = self._build_theme_distributions()
        self._noise_words = [f"qz{i}noise" for i in range(config.num_noise_words)]

    # ------------------------------------------------------------------
    def _build_theme_distributions(self) -> tuple[list[str], np.ndarray]:
        """Per-theme word distributions over the union vocabulary."""
        cfg = self.config
        vocab: list[str] = []
        index: dict[str, int] = {}
        for name in self.theme_names:
            for word in THEME_BANKS[name]:
                if word not in index:
                    index[word] = len(vocab)
                    vocab.append(word)
        for word in BACKGROUND_BANK:
            if word not in index:
                index[word] = len(vocab)
                vocab.append(word)

        v = len(vocab)
        dists = np.zeros((len(self.theme_names), v))
        background = np.zeros(v)
        for word in BACKGROUND_BANK:
            background[index[word]] = 1.0
        background /= background.sum()

        for k, name in enumerate(self.theme_names):
            bank = THEME_BANKS[name]
            ranks = np.arange(1, len(bank) + 1, dtype=np.float64)
            weights = ranks**-cfg.zipf_exponent
            weights /= weights.sum()
            topical = np.zeros(v)
            for word, w in zip(bank, weights):
                topical[index[word]] += w
            dists[k] = (1.0 - cfg.background_weight) * topical
            dists[k] += cfg.background_weight * background
        return vocab, dists

    @property
    def vocabulary_words(self) -> list[str]:
        """The topical + background vocabulary the generator draws from."""
        return list(self._vocab)

    @property
    def num_themes(self) -> int:
        return len(self.theme_names)

    def theme_word_distributions(self) -> np.ndarray:
        """Ground-truth ``(themes, vocab)`` word distributions (a copy)."""
        return self._theme_dists.copy()

    # ------------------------------------------------------------------
    def sample_document(self) -> SyntheticDocument:
        """Draw one document (text, label, ground-truth mixture)."""
        cfg = self.config
        rng = self._rng
        k = self.num_themes

        alpha = np.full(k, cfg.doc_topic_alpha)
        dominant = int(rng.integers(k))
        alpha[dominant] += cfg.dominant_boost
        mixture = rng.dirichlet(alpha)

        length = max(cfg.min_length, int(rng.poisson(cfg.average_length)))
        word_dist = mixture @ self._theme_dists
        word_ids = rng.choice(len(self._vocab), size=length, p=word_dist)

        tokens: list[str] = []
        for wid in word_ids:
            if cfg.stopword_rate and rng.random() < cfg.stopword_rate:
                tokens.append(str(rng.choice(_INJECTED_STOP_WORDS)))
            if cfg.noise_word_rate and rng.random() < cfg.noise_word_rate:
                tokens.append(str(rng.choice(self._noise_words)))
            tokens.append(self._vocab[wid])
        return SyntheticDocument(
            text=" ".join(tokens), label=dominant, theme_mixture=mixture
        )

    def generate(self) -> tuple[list[str], list[int], np.ndarray]:
        """Generate the whole corpus.

        Returns
        -------
        (texts, labels, mixtures):
            Raw texts, dominant-theme labels, and the ground-truth
            ``(docs, themes)`` mixture matrix.
        """
        texts: list[str] = []
        labels: list[int] = []
        mixtures = np.zeros((self.config.num_documents, self.num_themes))
        for i in range(self.config.num_documents):
            doc = self.sample_document()
            texts.append(doc.text)
            labels.append(doc.label)
            mixtures[i] = doc.theme_mixture
        return texts, labels, mixtures

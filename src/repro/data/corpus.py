"""The :class:`Corpus` container: bag-of-words documents plus labels.

A corpus stores documents as lists of token ids (order preserved for
window-based co-occurrence counting) and materializes dense or sparse
bag-of-words matrices on demand.  It also computes the statistics reported
in the paper's Table I.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.data.vocabulary import Vocabulary
from repro.errors import CorpusError
from repro.tensor.sparse import CSRBatch

#: Effectiveness counters of the memoised content fingerprint
#: (:meth:`Corpus.content_fingerprint`).  ``documents_hashed`` is the
#: ground truth for "a warm lookup does zero hashing work": it only
#: advances when document payloads are actually fed to the digest.
_FINGERPRINT_STATS = {"computes": 0, "memo_hits": 0, "documents_hashed": 0}


def fingerprint_stats() -> dict[str, int]:
    """Counters of fingerprint computes / memo hits / documents hashed."""
    return dict(_FINGERPRINT_STATS)


def reset_fingerprint_stats() -> None:
    """Zero the fingerprint counters (tests use this)."""
    for key in _FINGERPRINT_STATS:
        _FINGERPRINT_STATS[key] = 0


@dataclass(frozen=True)
class CorpusStats:
    """The per-dataset statistics reported in Table I of the paper."""

    vocabulary_size: int
    num_documents: int
    average_length: float
    num_tokens: int

    def as_row(self) -> dict[str, float]:
        return {
            "Vocabulary Size": self.vocabulary_size,
            "Documents": self.num_documents,
            "Average Length": round(self.average_length, 1),
            "Number of Tokens": self.num_tokens,
        }


class Corpus:
    """Documents as token-id sequences, with an optional label per document.

    Parameters
    ----------
    documents:
        One list/array of token ids per document.  Must be non-empty lists of
        ids valid for ``vocabulary``.
    vocabulary:
        The (usually frozen) vocabulary the ids index into.
    labels:
        Optional integer class label per document (document labels exist for
        20NG and Yahoo in the paper; NYTimes has none).
    label_names:
        Optional printable name per label id.
    """

    def __init__(
        self,
        documents: Sequence[Sequence[int]],
        vocabulary: Vocabulary,
        labels: Sequence[int] | None = None,
        label_names: Sequence[str] | None = None,
    ):
        if not documents:
            raise CorpusError("corpus must contain at least one document")
        self.documents = [np.asarray(doc, dtype=np.int64) for doc in documents]
        self.vocabulary = vocabulary
        self._validate_documents(self.documents, len(vocabulary), first_index=0)
        if labels is not None:
            labels_arr = np.asarray(labels, dtype=np.int64)
            if labels_arr.shape != (len(self.documents),):
                raise CorpusError(
                    f"labels shape {labels_arr.shape} does not match "
                    f"{len(self.documents)} documents"
                )
            self.labels: np.ndarray | None = labels_arr
        else:
            self.labels = None
        self.label_names = list(label_names) if label_names is not None else None
        # Content-fingerprint memo: a running blake2b over document
        # payloads (advanced lazily, so an ``extend`` only ever hashes the
        # new documents) plus the finalized hex digest.  Invalidated by
        # any mutating operation (see :meth:`extend`).
        self._doc_digest = None
        self._digested_count = 0
        self._fingerprint: str | None = None
        self._bow_cache: np.ndarray | None = None
        self._bow_casts: dict[np.dtype, np.ndarray] = {}
        self._csr_cache: sparse.csr_matrix | None = None
        self._csr_master: CSRBatch | None = None
        self._csr_casts: dict[np.dtype, CSRBatch] = {}
        # Cache-effectiveness counters (see record_cast_stats): a "rebuild"
        # is a from-scratch materialization for a dtype, a "hit" a cached
        # return.  With the per-dtype dict caches each dtype rebuilds at
        # most once per corpus lifetime — alternating float32 training with
        # float64 NPMI evaluation no longer thrashes.
        self.cast_stats: dict[str, int] = {
            "bow_rebuilds": 0,
            "bow_hits": 0,
            "csr_rebuilds": 0,
            "csr_hits": 0,
        }

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.documents)

    @property
    def vocab_size(self) -> int:
        return len(self.vocabulary)

    @property
    def num_labels(self) -> int:
        if self.labels is None:
            return 0
        return int(self.labels.max()) + 1

    def document_lengths(self) -> np.ndarray:
        return np.array([doc.size for doc in self.documents], dtype=np.int64)

    def stats(self) -> CorpusStats:
        """Statistics in the style of the paper's Table I."""
        lengths = self.document_lengths()
        return CorpusStats(
            vocabulary_size=self.vocab_size,
            num_documents=len(self),
            average_length=float(lengths.mean()),
            num_tokens=int(lengths.sum()),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_documents(documents, vocab_size: int, first_index: int) -> None:
        """Reject empty documents and out-of-vocabulary token ids."""
        for offset, doc in enumerate(documents):
            i = first_index + offset
            if doc.size == 0:
                raise CorpusError(f"document {i} is empty")
            if doc.min() < 0 or doc.max() >= vocab_size:
                raise CorpusError(
                    f"document {i} has token ids outside [0, {vocab_size})"
                )

    # ------------------------------------------------------------------
    def content_fingerprint(self) -> str:
        """Memoised content hash of the documents (order-sensitive).

        Two corpora with identical document sequences over the same-sized
        vocabulary fingerprint identically regardless of how they were
        built — including a corpus grown by :meth:`extend`, whose
        fingerprint chains from the parent digest plus the new documents'
        delta digest instead of re-hashing every document.  The finalized
        hex digest is memoised, so a warm lookup does zero hashing work;
        every mutating operation invalidates the memo.
        """
        if self._fingerprint is not None and self._digested_count == len(
            self.documents
        ):
            _FINGERPRINT_STATS["memo_hits"] += 1
            return self._fingerprint
        if self._doc_digest is None:
            self._doc_digest = hashlib.blake2b(digest_size=16)
            self._digested_count = 0
        for doc in self.documents[self._digested_count:]:
            self._doc_digest.update(doc.size.to_bytes(8, "little"))
            self._doc_digest.update(np.ascontiguousarray(doc).tobytes())
            _FINGERPRINT_STATS["documents_hashed"] += 1
        self._digested_count = len(self.documents)
        final = hashlib.blake2b(digest_size=16)
        final.update(f"{len(self)}:{self.vocab_size}:".encode())
        final.update(self._doc_digest.copy().digest())
        self._fingerprint = final.hexdigest()
        _FINGERPRINT_STATS["computes"] += 1
        return self._fingerprint

    def extend(
        self,
        documents: Sequence[Sequence[int]],
        labels: Sequence[int] | None = None,
    ) -> int:
        """Append ``documents`` in place; returns how many were added.

        The streaming mutation: new documents join the corpus under the
        existing vocabulary, and every derived cache (dense/CSR BOW and
        their per-dtype casts) is invalidated.  The fingerprint memo is
        invalidated too, but the *running* document digest is kept — the
        next :meth:`content_fingerprint` hashes only the appended
        documents and still equals the fingerprint of an equal corpus
        built from scratch.

        ``labels`` is required exactly when the corpus is labeled (one
        label per new document) and rejected when it is not.
        """
        new_docs = [np.asarray(doc, dtype=np.int64) for doc in documents]
        self._validate_documents(
            new_docs, self.vocab_size, first_index=len(self.documents)
        )
        if self.labels is not None:
            if labels is None:
                raise CorpusError(
                    "extend on a labeled corpus requires one label per document"
                )
            labels_arr = np.asarray(labels, dtype=np.int64)
            if labels_arr.shape != (len(new_docs),):
                raise CorpusError(
                    f"labels shape {labels_arr.shape} does not match "
                    f"{len(new_docs)} new documents"
                )
        elif labels is not None:
            raise CorpusError("extend on an unlabeled corpus got labels")
        if not new_docs:
            return 0
        self.documents.extend(new_docs)
        if self.labels is not None:
            self.labels = np.concatenate([self.labels, labels_arr])
        self._invalidate_caches()
        return len(new_docs)

    def _invalidate_caches(self) -> None:
        """Drop every derived cache after a mutating operation.

        The running document digest intentionally survives (it is
        position-consistent with the retained documents); only the
        finalized fingerprint memo and the materialized BOW forms go.
        """
        self._fingerprint = None
        self._bow_cache = None
        self._bow_casts = {}
        self._csr_cache = None
        self._csr_master = None
        self._csr_casts = {}

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Drop the (unpicklable) running hash object; keep the memo."""
        state = dict(self.__dict__)
        state["_doc_digest"] = None
        state["_digested_count"] = (
            len(self.documents) if self._fingerprint is not None else 0
        )
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    def bow_matrix(self, dtype=np.float64) -> np.ndarray:
        """Dense ``(docs, vocab)`` bag-of-words count matrix (cached).

        Each requested dtype is scattered **directly** from the cached CSR
        nonzeros into a zeroed array of that dtype — a float32 request
        never materialises a full-corpus float64 intermediate (counts are
        exact in either precision).  float64 results keep their dedicated
        cache slot; every other dtype — e.g. the active policy dtype from
        :func:`repro.tensor.dtypes.get_default_dtype`, as the trainer and
        ``transform`` do — gets its own entry in a per-dtype cast dict, so
        each dtype is built at most once per corpus lifetime even when
        requests alternate (float32 training interleaved with float64
        evaluation used to rebuild on every switch).
        """
        resolved = np.dtype(dtype)
        if resolved == np.float64:
            if self._bow_cache is None:
                self.cast_stats["bow_rebuilds"] += 1
                self._bow_cache = self.bow_csr(np.float64).toarray()
            else:
                self.cast_stats["bow_hits"] += 1
            return self._bow_cache
        if resolved not in self._bow_casts:
            self.cast_stats["bow_rebuilds"] += 1
            self._bow_casts[resolved] = self.bow_csr(resolved).toarray()
        else:
            self.cast_stats["bow_hits"] += 1
        return self._bow_casts[resolved]

    def bow_sparse(self) -> sparse.csr_matrix:
        """Sparse CSR bag-of-words count matrix (cached; do not mutate)."""
        if self._csr_cache is None:
            indptr = [0]
            indices: list[int] = []
            data: list[int] = []
            for doc in self.documents:
                ids, counts = np.unique(doc, return_counts=True)
                indices.extend(ids.tolist())
                data.extend(counts.tolist())
                indptr.append(len(indices))
            self._csr_cache = sparse.csr_matrix(
                (
                    np.array(data, dtype=np.float64),
                    np.array(indices),
                    np.array(indptr),
                ),
                shape=(len(self), self.vocab_size),
            )
        return self._csr_cache

    def bow_csr(self, dtype=np.float64) -> CSRBatch:
        """The corpus counts as a :class:`~repro.tensor.sparse.CSRBatch`.

        This is the batch format of the sparse fast path:
        :class:`~repro.data.loaders.BatchIterator` gathers mini-batch row
        views from it and the fused ``*_csr`` kernels consume them without
        ever densifying.  Casts share the structure arrays
        (``indices``/``indptr``) and touch only the nnz ``data`` values;
        the per-dtype cast dict mirrors :meth:`bow_matrix`'s at O(nnz)
        cost instead of O(docs·vocab).
        """
        resolved = np.dtype(dtype)
        built_master = self._csr_master is None
        if built_master:
            self._csr_master = CSRBatch.from_scipy(self.bow_sparse())
        if resolved == self._csr_master.dtype:
            key = "csr_rebuilds" if built_master else "csr_hits"
            self.cast_stats[key] += 1
            return self._csr_master
        if resolved not in self._csr_casts:
            self.cast_stats["csr_rebuilds"] += 1
            self._csr_casts[resolved] = self._csr_master.astype(resolved)
        else:
            self.cast_stats["csr_hits"] += 1
        return self._csr_casts[resolved]

    def bow_density(self) -> float:
        """Nonzero fraction of the bag-of-words matrix (sparse dispatch)."""
        return self.bow_csr(np.float64).density

    # ------------------------------------------------------------------
    def adopt_bow_matrix(self, dtype, array: np.ndarray) -> None:
        """Install ``array`` as the cached dense BOW for ``dtype``.

        The DDP exchange (:mod:`repro.parallel.shm`) uses this to swap a
        cache entry's backing storage for a shared-memory copy before
        forking workers, so every rank maps one physical BOW.  The adopted
        array must match the cached entry's shape and dtype exactly.
        """
        resolved = np.dtype(dtype)
        expected = (len(self), self.vocab_size)
        if array.shape != expected or array.dtype != resolved:
            raise CorpusError(
                f"adopted bow has shape {array.shape} dtype {array.dtype}, "
                f"expected {expected} {resolved}"
            )
        if resolved == np.float64:
            self._bow_cache = array
        else:
            self._bow_casts[resolved] = array

    def adopt_bow_csr(self, dtype, csr: CSRBatch) -> None:
        """Install ``csr`` as the cached :class:`CSRBatch` for ``dtype``.

        Shared-memory counterpart of :meth:`adopt_bow_matrix` for the
        sparse fast path; replaces the float64 master or the per-dtype
        cast entry.
        """
        resolved = np.dtype(dtype)
        expected = (len(self), self.vocab_size)
        if tuple(csr.shape) != expected or csr.dtype != resolved:
            raise CorpusError(
                f"adopted csr has shape {tuple(csr.shape)} dtype {csr.dtype}, "
                f"expected {expected} {resolved}"
            )
        if resolved == np.float64:
            self._csr_master = csr
        else:
            self._csr_casts[resolved] = csr

    def record_cast_stats(self, metrics, prefix: str = "data") -> None:
        """Publish the cast-cache counters into a ``MetricsRegistry``.

        Keys are absolute (``<prefix>/bow_cast_rebuilds`` etc.) so callers
        in nested timer scopes record the same names.
        """
        for name, value in self.cast_stats.items():
            kind, event = name.split("_", 1)
            key = f"{prefix}/{kind}_cast_{event}"
            metrics.counter(key, absolute=True).add(value)

    def binary_doc_word(self) -> sparse.csr_matrix:
        """Sparse boolean doc-word incidence (for NPMI co-occurrence)."""
        mat = self.bow_sparse()
        # A fresh matrix sharing the structure arrays — the cached counts
        # must not be overwritten.
        return sparse.csr_matrix(
            (np.ones_like(mat.data), mat.indices, mat.indptr),
            shape=mat.shape,
        )

    # ------------------------------------------------------------------
    def subset(self, indices: Iterable[int]) -> "Corpus":
        """A new corpus restricted to ``indices`` (shares the vocabulary)."""
        idx = list(indices)
        if not idx:
            raise CorpusError("subset indices must be non-empty")
        docs = [self.documents[i] for i in idx]
        labels = self.labels[idx] if self.labels is not None else None
        return Corpus(docs, self.vocabulary, labels=labels, label_names=self.label_names)

    def word_document_frequency(self) -> np.ndarray:
        """Number of documents containing each word, shape ``(vocab,)``."""
        return np.asarray(self.binary_doc_word().sum(axis=0)).ravel()

    def word_frequency(self) -> np.ndarray:
        """Total count of each word across the corpus, shape ``(vocab,)``."""
        return np.asarray(self.bow_sparse().sum(axis=0)).ravel()

    def top_words(self, n: int = 10) -> list[str]:
        """The ``n`` most frequent tokens in the corpus."""
        order = np.argsort(-self.word_frequency())[:n]
        return [self.vocabulary.token_of(int(i)) for i in order]

    def __repr__(self) -> str:
        labeled = "labeled" if self.labels is not None else "unlabeled"
        return f"Corpus(docs={len(self)}, vocab={self.vocab_size}, {labeled})"

"""Real-text preprocessing pipeline (paper §V.A).

The paper preprocesses each corpus by "tokenizing, filtering out stop words,
words with document frequency above 70%, and words appearing in less than
around 100 documents (depending on the dataset).  Then we remove the
documents shorter than two words."  This module implements exactly that
pipeline over raw text documents and produces a :class:`~repro.data.corpus.Corpus`.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.data.corpus import Corpus
from repro.data.vocabulary import Vocabulary
from repro.errors import ConfigError, CorpusError

# A compact English stop-word list (the usual suspects from the SMART list).
STOP_WORDS: frozenset[str] = frozenset(
    """
    a about above after again against all am an and any are as at be because
    been before being below between both but by cannot could did do does doing
    down during each few for from further had has have having he her here hers
    herself him himself his how i if in into is it its itself me more most my
    myself no nor not of off on once only or other ought our ours ourselves
    out over own same she should so some such than that the their theirs them
    themselves then there these they this those through to too under until up
    very was we were what when where which while who whom why with would you
    your yours yourself yourselves will just can get got also one two may
    much many us said says like went going go come came
    """.split()
)

_TOKEN_PATTERN = re.compile(r"[a-z][a-z0-9_']+")


def simple_tokenize(text: str) -> list[str]:
    """Lower-case and extract alphabetic tokens of length >= 2."""
    return _TOKEN_PATTERN.findall(text.lower())


@dataclass
class PreprocessConfig:
    """Knobs for the Table-I preprocessing pipeline.

    ``max_doc_frequency`` is a fraction of documents (paper: 0.7);
    ``min_doc_count`` is an absolute document count (paper: "around 100",
    scaled down with our corpora); ``min_doc_length`` removes documents
    shorter than that many kept tokens (paper: 2).
    """

    max_doc_frequency: float = 0.7
    min_doc_count: int = 3
    min_doc_length: int = 2
    stop_words: frozenset[str] = field(default_factory=lambda: STOP_WORDS)
    max_vocab_size: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.max_doc_frequency <= 1.0:
            raise ConfigError("max_doc_frequency must be in (0, 1]")
        if self.min_doc_count < 1:
            raise ConfigError("min_doc_count must be >= 1")
        if self.min_doc_length < 1:
            raise ConfigError("min_doc_length must be >= 1")


class Preprocessor:
    """Fit a vocabulary on training text and index train/test consistently.

    Usage::

        pre = Preprocessor(PreprocessConfig(min_doc_count=5))
        train = pre.fit_transform(train_texts, labels=train_labels)
        test = pre.transform(test_texts, labels=test_labels)
    """

    def __init__(self, config: PreprocessConfig | None = None):
        self.config = config or PreprocessConfig()
        self.vocabulary: Vocabulary | None = None

    # ------------------------------------------------------------------
    def fit(self, texts: Sequence[str]) -> "Preprocessor":
        """Build the vocabulary from raw training texts."""
        if not texts:
            raise CorpusError("cannot fit a preprocessor on an empty text list")
        cfg = self.config
        doc_freq: Counter[str] = Counter()
        total_freq: Counter[str] = Counter()
        n_docs = len(texts)
        for text in texts:
            tokens = [t for t in simple_tokenize(text) if t not in cfg.stop_words]
            doc_freq.update(set(tokens))
            total_freq.update(tokens)

        max_df = cfg.max_doc_frequency * n_docs
        kept = [
            token
            for token, df in doc_freq.items()
            if cfg.min_doc_count <= df <= max_df
        ]
        # Order by descending corpus frequency (stable & interpretable ids).
        kept.sort(key=lambda t: (-total_freq[t], t))
        if cfg.max_vocab_size is not None:
            kept = kept[: cfg.max_vocab_size]
        if not kept:
            raise CorpusError(
                "preprocessing removed every token; relax the frequency filters"
            )
        self.vocabulary = Vocabulary(kept).freeze()
        return self

    def transform(
        self,
        texts: Sequence[str],
        labels: Sequence[int] | None = None,
        label_names: Sequence[str] | None = None,
    ) -> Corpus:
        """Index raw texts against the fitted vocabulary.

        Documents that end up shorter than ``min_doc_length`` are dropped
        (and so are their labels), per the paper.
        """
        if self.vocabulary is None:
            raise CorpusError("Preprocessor.transform called before fit")
        vocab = self.vocabulary
        documents: list[list[int]] = []
        kept_labels: list[int] = []
        for i, text in enumerate(texts):
            ids = [
                vocab.id_of(token)
                for token in simple_tokenize(text)
                if token in vocab
            ]
            if len(ids) < self.config.min_doc_length:
                continue
            documents.append(ids)
            if labels is not None:
                kept_labels.append(int(labels[i]))
        if not documents:
            raise CorpusError("all documents were filtered out")
        return Corpus(
            documents,
            vocab,
            labels=kept_labels if labels is not None else None,
            label_names=label_names,
        )

    def fit_transform(
        self,
        texts: Sequence[str],
        labels: Sequence[int] | None = None,
        label_names: Sequence[str] | None = None,
    ) -> Corpus:
        """Fit the vocabulary and transform in one step."""
        return self.fit(texts).transform(texts, labels=labels, label_names=label_names)

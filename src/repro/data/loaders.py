"""Mini-batching and train/validation splitting over corpora."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.corpus import Corpus
from repro.errors import ConfigError


class BatchIterator:
    """Yield shuffled bag-of-words mini-batches from a corpus.

    Each epoch re-shuffles with the supplied generator, so training is a
    deterministic function of (corpus, seed).  Batches are dense
    ``(batch, vocab)`` count matrices in ``dtype`` — by default float64,
    but the trainer passes the active dtype policy
    (:func:`repro.tensor.dtypes.get_default_dtype`) so the matrix is
    materialized once in the precision the models consume and each batch
    is a zero-copy fancy-indexed view of it, instead of being re-cast by
    ``encode_theta`` on every step.
    """

    def __init__(
        self,
        corpus: Corpus,
        batch_size: int,
        rng: np.random.Generator,
        drop_last: bool = False,
        dtype: np.dtype | type | None = None,
    ):
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        self.corpus = corpus
        self.batch_size = batch_size
        self.drop_last = drop_last
        self._rng = rng
        self._bow = (
            corpus.bow_matrix() if dtype is None else corpus.bow_matrix(dtype=dtype)
        )

    def __len__(self) -> int:
        n = len(self.corpus)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[np.ndarray]:
        order = self._rng.permutation(len(self.corpus))
        for start in range(0, len(order), self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if self.drop_last and batch_idx.size < self.batch_size:
                return
            yield self._bow[batch_idx]

    def batches_with_indices(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Like iteration, but also yields the document indices per batch."""
        order = self._rng.permutation(len(self.corpus))
        for start in range(0, len(order), self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if self.drop_last and batch_idx.size < self.batch_size:
                return
            yield self._bow[batch_idx], batch_idx


def train_valid_split(
    corpus: Corpus, valid_fraction: float, rng: np.random.Generator
) -> tuple[Corpus, Corpus]:
    """Randomly split a corpus into train and validation subsets.

    Used for the paper's hyper-parameter grid search, which runs "on a
    validation set split from the training corpus".
    """
    if not 0.0 < valid_fraction < 1.0:
        raise ConfigError("valid_fraction must be in (0, 1)")
    n = len(corpus)
    n_valid = max(1, int(round(n * valid_fraction)))
    if n_valid >= n:
        raise ConfigError("validation split would consume the whole corpus")
    order = rng.permutation(n)
    valid_idx = order[:n_valid].tolist()
    train_idx = order[n_valid:].tolist()
    return corpus.subset(train_idx), corpus.subset(valid_idx)

"""Mini-batching and train/validation splitting over corpora."""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

from repro.data.corpus import Corpus
from repro.errors import ConfigError
from repro.tensor.dtypes import get_sparse_policy
from repro.tensor.sparse import CSRBatch

#: What a batch iterator yields: a dense ``(batch, vocab)`` count matrix
#: on the reference path, or a :class:`~repro.tensor.sparse.CSRBatch` on
#: the sparse fast path.  Both support ``len``, ``.shape`` and
#: ``np.asarray`` densification, and every bag-of-words consumer in
#: :mod:`repro.models` accepts either.
Batch = Union[np.ndarray, CSRBatch]


class BatchIterator:
    """Yield shuffled bag-of-words mini-batches from a corpus.

    Each epoch re-shuffles with the supplied generator, so training is a
    deterministic function of (corpus, seed).  Batch format is chosen once
    per iterator by the sparse dispatch policy
    (:func:`repro.tensor.dtypes.get_sparse_policy`) against the corpus
    density:

    - **Sparse fast path** (policy enabled and the corpus is sparser than
      the threshold): batches are :class:`~repro.tensor.sparse.CSRBatch`
      row-gathers from the cached corpus CSR — O(batch nnz) per step, fed
      straight into the fused ``*_csr`` kernels.  A pathological batch
      that lands denser than the threshold (shuffling can concentrate the
      long documents) falls back to dense for that batch only.
    - **Dense reference path**: the matrix is materialized once in
      ``dtype`` — by default float64, but the trainer passes the active
      dtype policy (:func:`repro.tensor.dtypes.get_default_dtype`) — and
      each batch is a fancy-indexed view of it.

    Pass ``sparse=True``/``sparse=False`` to pin the format explicitly
    (tests and oracle comparisons do).
    """

    def __init__(
        self,
        corpus: Corpus,
        batch_size: int,
        rng: np.random.Generator,
        drop_last: bool = False,
        dtype: np.dtype | type | None = None,
        sparse: bool | None = None,
    ):
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        self.corpus = corpus
        self.batch_size = batch_size
        self.drop_last = drop_last
        self._rng = rng
        policy = get_sparse_policy()
        if sparse is None:
            sparse = policy.use_sparse(corpus.bow_density())
        elif sparse and not policy.enabled:
            sparse = False  # REPRO_SPARSE=0 wins over a per-iterator opt-in
        self.sparse = bool(sparse)
        self._density_threshold = policy.density_threshold
        if self.sparse:
            self._csr = (
                corpus.bow_csr() if dtype is None else corpus.bow_csr(dtype=dtype)
            )
            self._bow = None
        else:
            self._csr = None
            self._bow = (
                corpus.bow_matrix()
                if dtype is None
                else corpus.bow_matrix(dtype=dtype)
            )

    def __len__(self) -> int:
        n = len(self.corpus)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _materialize(self, batch_idx: np.ndarray) -> Batch:
        """Gather one batch in the chosen format (with density fallback)."""
        if not self.sparse:
            return self._bow[batch_idx]
        batch = self._csr.take_rows(batch_idx)
        if batch.density >= self._density_threshold:
            # Dense enough that gather/scatter overhead loses to BLAS.
            return batch.toarray()
        return batch

    def __iter__(self) -> Iterator[Batch]:
        order = self._rng.permutation(len(self.corpus))
        for start in range(0, len(order), self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if self.drop_last and batch_idx.size < self.batch_size:
                return
            yield self._materialize(batch_idx)

    def batches_with_indices(self) -> Iterator[tuple[Batch, np.ndarray]]:
        """Like iteration, but also yields the document indices per batch."""
        order = self._rng.permutation(len(self.corpus))
        for start in range(0, len(order), self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if self.drop_last and batch_idx.size < self.batch_size:
                return
            yield self._materialize(batch_idx), batch_idx


def train_valid_split(
    corpus: Corpus, valid_fraction: float, rng: np.random.Generator
) -> tuple[Corpus, Corpus]:
    """Randomly split a corpus into train and validation subsets.

    Used for the paper's hyper-parameter grid search, which runs "on a
    validation set split from the training corpus".
    """
    if not 0.0 < valid_fraction < 1.0:
        raise ConfigError("valid_fraction must be in (0, 1)")
    n = len(corpus)
    n_valid = max(1, int(round(n * valid_fraction)))
    if n_valid >= n:
        raise ConfigError("validation split would consume the whole corpus")
    order = rng.permutation(n)
    valid_idx = order[:n_valid].tolist()
    train_idx = order[n_valid:].tolist()
    return corpus.subset(train_idx), corpus.subset(valid_idx)

"""Bidirectional token <-> id mapping with optional freezing."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import VocabularyError


class Vocabulary:
    """An ordered, bidirectional mapping between tokens and integer ids.

    Ids are assigned densely in first-seen order.  A vocabulary can be
    *frozen*, after which looking up an unknown token raises
    :class:`~repro.errors.VocabularyError` instead of allocating a new id —
    this is how test corpora are indexed against a training vocabulary.
    """

    def __init__(self, tokens: Iterable[str] = ()):
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._frozen = False
        for token in tokens:
            self.add(token)

    # ------------------------------------------------------------------
    def add(self, token: str) -> int:
        """Return the id of ``token``, allocating one if needed."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        if self._frozen:
            raise VocabularyError(f"vocabulary is frozen; unknown token {token!r}")
        new_id = len(self._id_to_token)
        self._token_to_id[token] = new_id
        self._id_to_token.append(token)
        return new_id

    def freeze(self) -> "Vocabulary":
        """Disallow further token additions; returns self for chaining."""
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    # ------------------------------------------------------------------
    def id_of(self, token: str) -> int:
        """Id of a known token; raises :class:`VocabularyError` if absent."""
        try:
            return self._token_to_id[token]
        except KeyError:
            raise VocabularyError(f"unknown token {token!r}") from None

    def token_of(self, token_id: int) -> str:
        """Token string for a known id."""
        if not 0 <= token_id < len(self._id_to_token):
            raise VocabularyError(f"token id {token_id} out of range")
        return self._id_to_token[token_id]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    def tokens(self) -> list[str]:
        """All tokens in id order (a copy)."""
        return list(self._id_to_token)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._id_to_token == other._id_to_token

    def __repr__(self) -> str:
        state = "frozen" if self._frozen else "open"
        return f"Vocabulary(size={len(self)}, {state})"

    # ------------------------------------------------------------------
    def subset(self, keep_tokens: Iterable[str]) -> "Vocabulary":
        """New vocabulary containing only ``keep_tokens`` (original order)."""
        keep = set(keep_tokens)
        return Vocabulary(t for t in self._id_to_token if t in keep)

"""ASCII line/bar charts — a matplotlib substitute for terminal-only runs.

The paper's Figures 2-6 are line plots; these helpers render the same
series dictionaries the experiment harness produces as fixed-width text,
so benchmark logs carry an actual *picture* of each figure, not just the
numbers.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ConfigError

_MARKERS = "ox*+#@%&"


def ascii_line_chart(
    series: Mapping[str, Mapping[float, float]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render ``{line_name: {x: y}}`` as an ASCII chart with a legend.

    Lines are drawn with distinct marker characters on a shared canvas;
    later series overwrite earlier ones on collisions (collisions mean the
    curves genuinely overlap at this resolution).
    """
    if not series:
        raise ConfigError("no series to plot")
    xs = sorted({x for line in series.values() for x in line})
    ys = [y for line in series.values() for y in line.values()]
    if not xs or not ys:
        raise ConfigError("series contain no points")
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, int(round((x - x_min) / x_span * (width - 1))))

    def to_row(y: float) -> int:
        return min(height - 1, int(round((y_max - y) / y_span * (height - 1))))

    legend: list[str] = []
    for index, (name, line) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker}={name}")
        for x, y in sorted(line.items()):
            canvas[to_row(y)][to_col(x)] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3f}"
    bottom_label = f"{y_min:.3f}"
    pad = max(len(top_label), len(bottom_label), len(y_label))
    for i, row in enumerate(canvas):
        if i == 0:
            prefix = top_label.rjust(pad)
        elif i == height - 1:
            prefix = bottom_label.rjust(pad)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    axis = f"{' ' * pad} +{'-' * width}"
    lines.append(axis)
    x_axis = f"{x_min:g}".ljust(width // 2) + f"{x_max:g}".rjust(width - width // 2)
    lines.append(f"{' ' * pad}  {x_axis}")
    lines.append(f"{' ' * pad}  legend: {'  '.join(legend)}")
    return "\n".join(lines)


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 48,
    title: str | None = None,
) -> str:
    """Horizontal bar chart of ``{name: value}`` (e.g. Table III's WIS)."""
    if not values:
        raise ConfigError("no values to plot")
    maximum = max(values.values())
    if maximum <= 0:
        maximum = 1.0
    name_pad = max(len(name) for name in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(0, int(round(value / maximum * width)))
        lines.append(f"{name.ljust(name_pad)} |{bar} {value:.3f}")
    return "\n".join(lines)

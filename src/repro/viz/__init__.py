"""Text-mode visualization of experiment series (offline 'figures')."""

from repro.viz.ascii_chart import ascii_line_chart, ascii_bar_chart

__all__ = ["ascii_line_chart", "ascii_bar_chart"]

"""The paper's topic-wise contrastive regularizer as a pluggable objective.

This is λ·L_con of Eq. 6 extracted from :class:`repro.core.contratopic.
ContraTopic` onto the :class:`~repro.objectives.base.Objective` protocol:
per batch, draw a relaxed v-word subset from every topic's β_k via Gumbel
top-k (:mod:`repro.core.subset_sampling`), then evaluate the contrastive
loss under a precomputed similarity kernel
(:func:`repro.core.contrastive.topic_contrastive_loss`).

ContraTopic itself now *owns an instance of this class* and delegates its
``contrastive_samples``/``contrastive_loss`` methods here, so the model
and the standalone spec (``--objective contrastive`` on any backbone)
share one implementation — and train bitwise-identically for the same
seed, because both draw Gumbel noise from a ``default_rng(seed + 7)``
stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.contrastive import ContrastiveMode, topic_contrastive_loss
from repro.core.similarity import SimilarityKernel, npmi_kernel
from repro.core.subset_sampling import relaxed_topk_sample, sample_gumbel
from repro.errors import ConfigError
from repro.objectives.base import BatchContext, Objective

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.data.corpus import Corpus
    from repro.tensor.tensor import Tensor

#: Offset of the Gumbel stream from the model seed — the same convention
#: ContraTopic has always used, so spec-built and class-built runs match.
GUMBEL_SEED_OFFSET = 7


@dataclass
class TopicContrastiveParams:
    """Sampler/loss knobs when the objective is built standalone.

    Mirrors the regularizer fields of
    :class:`repro.core.contratopic.ContraTopicConfig` (which duck-types as
    this — ContraTopic passes its config object straight through so
    post-construction mutations, e.g. the ContraTopic-S ablation flipping
    ``use_sampling``, are seen live).
    """

    num_sampled_words: int = 10
    gumbel_temperature: float = 0.5
    mode: ContrastiveMode = ContrastiveMode.FULL
    use_sampling: bool = True
    negative_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.num_sampled_words < 1:
            raise ConfigError("num_sampled_words must be >= 1")
        if self.gumbel_temperature <= 0:
            raise ConfigError("gumbel_temperature must be positive")
        if self.negative_weight <= 0:
            raise ConfigError("negative_weight must be positive")


class TopicContrastiveObjective(Objective):
    """Topic-wise contrastive term: Gumbel top-k subsets under a kernel.

    Parameters
    ----------
    kernel:
        Precomputed similarity kernel; ``None`` defers to :meth:`prepare`,
        which builds an NPMI kernel from the training corpus (the paper's
        main configuration).
    config:
        A :class:`TopicContrastiveParams`-shaped object; ContraTopic
        passes its own ``ContraTopicConfig`` so both stay one source of
        truth.
    rng:
        The Gumbel noise stream.  ContraTopic shares its ``_rng`` here;
        standalone builds leave it ``None`` and :meth:`prepare` seeds
        ``default_rng(model.config.seed + GUMBEL_SEED_OFFSET)``.
    kernel_temperature:
        NPMI-kernel temperature used only when :meth:`prepare` builds the
        kernel itself.
    """

    name = "contrastive"

    def __init__(
        self,
        kernel: SimilarityKernel | None = None,
        config=None,
        rng: np.random.Generator | None = None,
        kernel_temperature: float = 0.25,
        mode: "ContrastiveMode | str" = ContrastiveMode.FULL,
        num_sampled_words: int = 10,
        gumbel_temperature: float = 0.5,
        use_sampling: bool = True,
        negative_weight: float = 1.0,
    ):
        if isinstance(mode, str):
            mode = ContrastiveMode(mode)
        self.kernel = kernel
        self.config = (
            config
            if config is not None
            else TopicContrastiveParams(
                num_sampled_words=num_sampled_words,
                gumbel_temperature=gumbel_temperature,
                mode=mode,
                use_sampling=use_sampling,
                negative_weight=negative_weight,
            )
        )
        self.rng = rng
        if kernel_temperature <= 0:
            raise ConfigError("kernel_temperature must be positive")
        self.kernel_temperature = kernel_temperature

    # ------------------------------------------------------------------
    def prepare(self, model, corpus: "Corpus") -> None:
        """Build the NPMI kernel / seed the Gumbel stream if not injected."""
        if self.kernel is None:
            from repro.metrics.npmi import compute_npmi_matrix

            self.kernel = npmi_kernel(
                compute_npmi_matrix(corpus), temperature=self.kernel_temperature
            )
        if self.rng is None:
            self.rng = np.random.default_rng(
                model.config.seed + GUMBEL_SEED_OFFSET
            )

    # ------------------------------------------------------------------
    def samples(self, beta: "Tensor") -> "Tensor":
        """Relaxed v-hot samples per topic (or v·β for ContraTopic-S)."""
        cfg = self.config
        if not cfg.use_sampling:
            # ContraTopic-S: "leverage the weight sum operation of
            # topic-word distribution as an expectation".
            return beta * float(cfg.num_sampled_words)
        if self.rng is None:
            raise ConfigError(
                "TopicContrastiveObjective has no RNG stream yet; call "
                "prepare() (fit does) or pass rng= at construction"
            )
        log_beta = (beta + 1e-12).log()
        noise = sample_gumbel(beta.shape, self.rng)
        return relaxed_topk_sample(
            log_beta,
            cfg.num_sampled_words,
            cfg.gumbel_temperature,
            gumbel_noise=noise,
        )

    def loss(self, beta: "Tensor") -> "Tensor":
        if self.kernel is None:
            raise ConfigError(
                "TopicContrastiveObjective has no similarity kernel yet; "
                "call prepare() (fit does) or pass kernel= at construction"
            )
        return topic_contrastive_loss(
            self.samples(beta),
            self.kernel,
            mode=self.config.mode,
            negative_weight=self.config.negative_weight,
        )

    def term_on_batch(self, model, batch, ctx: BatchContext):
        return self.loss(ctx.beta), {}

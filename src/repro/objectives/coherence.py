"""Diversity-aware coherence regularization (Li et al., 2023) as an objective.

The second rival from the paper's related work: instead of contrasting
sampled word subsets, directly *optimize* a differentiable surrogate of
the evaluation metrics — push each topic's internal NPMI mass up
(coherence) while pushing the NPMI mass shared *between* topics down
(diversity), so topics become individually coherent and mutually distinct:

    L = −(1/K) Σ_k β_k N β_kᵀ  +  w_div · (1/(K(K−1))) Σ_{k≠l} β_k N β_lᵀ

with N the train-corpus NPMI matrix (diagonal zeroed — a word trivially
co-occurs with itself) and the topic rows β_k acting as the paper's
relaxed stand-in for the hard top-word indicator.  The cross-topic mass is
computed via the identity Σ_{k,l} β_k N β_lᵀ = t N tᵀ with t = Σ_k β_k, so
the whole term costs one (K,V)·(V,V) product — the same shape as the
topic-wise contrastive loss, and it reuses the same NPMI infrastructure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError
from repro.objectives.base import BatchContext, Objective
from repro.tensor.tensor import Tensor

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.data.corpus import Corpus
    from repro.metrics.npmi import NpmiMatrix


class DiversityAwareCoherenceObjective(Objective):
    """Differentiable NPMI coherence reward + cross-topic diversity penalty.

    Parameters
    ----------
    diversity_weight:
        w_div above — how hard overlapping topics are penalized relative
        to the per-topic coherence reward.
    npmi:
        Precomputed :class:`~repro.metrics.npmi.NpmiMatrix`; ``None``
        defers to :meth:`prepare`, which computes it from the training
        corpus (fingerprint-cached, so it is shared with evaluation).
    """

    name = "coherence"

    def __init__(
        self,
        diversity_weight: float = 1.0,
        npmi: "NpmiMatrix | None" = None,
    ):
        if diversity_weight < 0:
            raise ConfigError("diversity_weight must be non-negative")
        self.diversity_weight = diversity_weight
        self._matrix: np.ndarray | None = None
        self._cached: dict[np.dtype, Tensor] = {}
        if npmi is not None:
            self._set_matrix(npmi.matrix)

    def _set_matrix(self, matrix: np.ndarray) -> None:
        hollow = np.asarray(matrix, dtype=np.float64).copy()
        np.fill_diagonal(hollow, 0.0)
        self._matrix = hollow
        self._cached = {}

    def prepare(self, model, corpus: "Corpus") -> None:
        if self._matrix is None:
            from repro.metrics.npmi import compute_npmi_matrix

            self._set_matrix(compute_npmi_matrix(corpus).matrix)

    def _matrix_tensor(self, dtype) -> Tensor:
        """The hollow NPMI matrix as a constant tensor, cached per dtype."""
        if self._matrix is None:
            raise ConfigError(
                "DiversityAwareCoherenceObjective has no NPMI matrix yet; "
                "call prepare() (fit does) or pass npmi= at construction"
            )
        key = np.dtype(dtype)
        cached = self._cached.get(key)
        if cached is None:
            cached = Tensor(self._matrix.astype(key, copy=False))
            self._cached[key] = cached
        return cached

    def loss(self, beta: Tensor) -> Tensor:
        num_topics = beta.shape[0]
        kernel = self._matrix_tensor(beta.data.dtype)
        weighted = beta @ kernel  # (K, V)
        per_topic = (weighted * beta).sum(axis=1)  # β_k N β_kᵀ per topic
        coherence = per_topic.mean()
        loss = -coherence
        if num_topics > 1 and self.diversity_weight > 0:
            totals = beta.sum(axis=0, keepdims=True)  # t = Σ_k β_k, (1, V)
            all_pairs = ((totals @ kernel) * totals).sum()  # t N tᵀ
            cross = (all_pairs - per_topic.sum()) * (
                1.0 / (num_topics * (num_topics - 1))
            )
            loss = loss + cross * self.diversity_weight
        return loss

    def term_on_batch(self, model, batch, ctx: BatchContext):
        return self.loss(ctx.beta), {}

"""CLNTM's document-wise contrastive loss (Nguyen & Luu, 2021) as an objective.

The rival the paper contrasts against in §IV.E: perturb each document's
bag-of-words by tf-idf salience — the positive view keeps the salient
words, the negative view deletes them — and apply an InfoNCE loss over the
*document-topic* representations θ.  Any benefit to the topic-word matrix
is indirect, which is exactly the weakness ContraTopic's topic-wise loss
addresses.

The math lives here as pure functions (:func:`compute_idf`,
:func:`salient_views`, :func:`document_infonce`) shared by three callers:
this objective, the legacy :class:`repro.models.clntm.CLNTM` facade (now a
ProdLDA backbone + this term), and the multi-level extension's document
branch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError
from repro.objectives.base import BatchContext, Objective
from repro.tensor import functional as F
from repro.tensor.dtypes import get_default_dtype

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.data.corpus import Corpus
    from repro.tensor.tensor import Tensor


def compute_idf(corpus: "Corpus") -> np.ndarray:
    """Smoothed inverse document frequency, ``log((D+1)/(df+1)) + 1``."""
    doc_freq = corpus.word_document_frequency()
    return np.log((len(corpus) + 1.0) / (doc_freq + 1.0)) + 1.0


def salient_views(
    bow: np.ndarray, idf: np.ndarray, salient_fraction: float
) -> tuple[np.ndarray, np.ndarray]:
    """Positive view keeps tf-idf-salient words; negative deletes them."""
    tfidf = bow * idf[None, :]
    positive = np.zeros_like(bow)
    negative = bow.copy()
    for i in range(bow.shape[0]):
        present = np.flatnonzero(bow[i] > 0)
        if present.size == 0:
            continue
        n_salient = max(1, int(round(present.size * salient_fraction)))
        salient = present[np.argsort(-tfidf[i, present])[:n_salient]]
        positive[i, salient] = bow[i, salient]
        negative[i, salient] = 0.0
    return positive, negative


def l2_normalize(x: "Tensor") -> "Tensor":
    norm = ((x * x).sum(axis=1, keepdims=True) + 1e-12).sqrt()
    return x / norm


def document_infonce(
    model,
    theta: "Tensor",
    bow,
    idf: np.ndarray,
    salient_fraction: float,
    temperature: float,
) -> "Tensor":
    """InfoNCE over (anchor, salient-view, deleted-view) θ triplets.

    With one positive and one negative per anchor,
    ``-log(e^{s+} / (e^{s+} + e^{s-})) = softplus(s- - s+)``.
    """
    dense = np.asarray(
        bow.toarray() if hasattr(bow, "toarray") else bow,
        dtype=get_default_dtype(),
    )
    positive_bow, negative_bow = salient_views(dense, idf, salient_fraction)
    theta_pos, _, _ = model.encode_theta(positive_bow, sample=False)
    theta_neg, _, _ = model.encode_theta(negative_bow, sample=False)
    anchor = l2_normalize(theta)
    pos = l2_normalize(theta_pos)
    neg = l2_normalize(theta_neg)
    sim_pos = (anchor * pos).sum(axis=1) * (1.0 / temperature)
    sim_neg = (anchor * neg).sum(axis=1) * (1.0 / temperature)
    return F.softplus(sim_neg - sim_pos).mean()


class DocumentContrastiveObjective(Objective):
    """CLNTM's document-wise InfoNCE with tf-idf driven views.

    Parameters
    ----------
    salient_fraction:
        Fraction of a document's present words (by tf-idf) treated salient.
    temperature:
        InfoNCE softmax temperature.
    idf:
        Precomputed idf vector; ``None`` defers to :meth:`prepare`, and
        view construction without either falls back to uniform idf
        (transform-time / unit-test use, the legacy CLNTM behaviour).
    """

    name = "clntm"

    def __init__(
        self,
        salient_fraction: float = 0.25,
        temperature: float = 0.5,
        idf: "np.ndarray | list | None" = None,
    ):
        if not 0.0 < salient_fraction < 1.0:
            raise ConfigError("salient_fraction must be in (0, 1)")
        if temperature <= 0:
            raise ConfigError("temperature must be positive")
        self.salient_fraction = salient_fraction
        self.temperature = temperature
        self.idf = None if idf is None else np.asarray(idf, dtype=float)

    def prepare(self, model, corpus: "Corpus") -> None:
        self.idf = compute_idf(corpus)

    def _idf_for(self, bow) -> np.ndarray:
        if self.idf is None:
            self.idf = np.ones(bow.shape[1])
        return self.idf

    def views(self, bow: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The (positive, negative) augmentation pair for a dense batch."""
        return salient_views(bow, self._idf_for(bow), self.salient_fraction)

    def infonce(self, model, theta: "Tensor", bow) -> "Tensor":
        return document_infonce(
            model,
            theta,
            bow,
            self._idf_for(bow),
            self.salient_fraction,
            self.temperature,
        )

    def term_on_batch(self, model, batch, ctx: BatchContext):
        return self.infonce(model, ctx.theta, batch), {}

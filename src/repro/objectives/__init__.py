"""Composable training objectives: a base ELBO term plus named regularizers.

The paper's comparative claim — topic-wise contrastive learning beats rival
interpretability objectives — needs those rivals to be *pluggable*: the
regularizer must be data, not an inheritance hierarchy.  This package
defines the :class:`~repro.objectives.base.Objective` protocol
(``term_on_batch(model, batch, ctx) -> (loss, diagnostics)``), the
:class:`~repro.objectives.base.ObjectiveStack` that sums a base
reconstruction/ELBO term with named weighted regularizer terms, and the
registry of declarative :class:`~repro.objectives.registry.ObjectiveSpec`
entries that travel through :class:`~repro.training.trainer.RunSpec`, the
CLI and the parallel fan-out.

Layering: this package may import tensor/autodiff machinery, the
similarity/NPMI infrastructure and :mod:`repro.core`'s pure loss kernels —
but never the trainer, optimizers or model classes.  Models *consume*
objectives (via ``build_objectives``); objectives only ever see a model as
a duck-typed argument.
"""

from repro.objectives.base import (
    BatchContext,
    ElboObjective,
    ExtraLossAdapter,
    Objective,
    ObjectiveStack,
    ObjectiveTerm,
)
from repro.objectives.clntm import DocumentContrastiveObjective
from repro.objectives.coherence import DiversityAwareCoherenceObjective
from repro.objectives.contrastive import TopicContrastiveObjective
from repro.objectives.registry import (
    ObjectiveSpec,
    attach_objectives,
    available_objectives,
    build_objective,
    build_stack,
)
from repro.objectives.vicreg import VicRegObjective

__all__ = [
    "BatchContext",
    "DiversityAwareCoherenceObjective",
    "DocumentContrastiveObjective",
    "ElboObjective",
    "ExtraLossAdapter",
    "Objective",
    "ObjectiveSpec",
    "ObjectiveStack",
    "ObjectiveTerm",
    "TopicContrastiveObjective",
    "VicRegObjective",
    "attach_objectives",
    "available_objectives",
    "build_objective",
    "build_stack",
]

"""VICReg-style variance-invariance-covariance regularization on θ.

The third rival: Bardes et al.'s VICReg recipe (the variant PAPERS.md's
Xu et al. 2025 applies to topic models), transplanted onto the
document-topic representations.  Two stochastic views of every document
come for free from the VAE: the batch's θ (reparameterized with the
model's own noise) and a second draw θ' from the *same* posterior
``N(μ, σ²)`` using this objective's private RNG stream.  Three penalties:

* **invariance** — mean squared distance between the two views;
* **variance** — a hinge ``relu(γ − std(θ_k))`` per topic dimension,
  fighting the posterior-collapse failure mode where every document gets
  the same θ (γ defaults to 1/K, the scale of a simplex coordinate);
* **covariance** — squared off-diagonal entries of the batch covariance,
  decorrelating topic usage across the batch (the diversity mechanism).

All three are plain autodiff tensor ops — no new kernels needed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError
from repro.objectives.base import BatchContext, Objective
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.data.corpus import Corpus

#: Offset of the second-view noise stream from the model seed.
VICREG_SEED_OFFSET = 13


class VicRegObjective(Objective):
    """Variance-invariance-covariance regularization over document θ.

    Parameters
    ----------
    sim_coeff / std_coeff / cov_coeff:
        The three VICReg weights (paper defaults 25 / 25 / 1).
    std_target:
        γ of the variance hinge; ``None`` uses 1/num_topics at call time.
    """

    name = "vicreg"

    def __init__(
        self,
        sim_coeff: float = 25.0,
        std_coeff: float = 25.0,
        cov_coeff: float = 1.0,
        std_target: float | None = None,
    ):
        for label, value in (
            ("sim_coeff", sim_coeff),
            ("std_coeff", std_coeff),
            ("cov_coeff", cov_coeff),
        ):
            if value < 0:
                raise ConfigError(f"{label} must be non-negative")
        if std_target is not None and std_target <= 0:
            raise ConfigError("std_target must be positive (or None)")
        self.sim_coeff = sim_coeff
        self.std_coeff = std_coeff
        self.cov_coeff = cov_coeff
        self.std_target = std_target
        self._masks: dict[tuple[int, np.dtype], np.ndarray] = {}

    def prepare(self, model, corpus: "Corpus") -> None:
        if self.rng is None:
            self.rng = np.random.default_rng(
                model.config.seed + VICREG_SEED_OFFSET
            )

    # ------------------------------------------------------------------
    def _off_diagonal_mask(self, size: int, dtype) -> np.ndarray:
        key = (size, np.dtype(dtype))
        mask = self._masks.get(key)
        if mask is None:
            mask = np.ones((size, size), dtype=key[1])
            np.fill_diagonal(mask, 0.0)
            self._masks[key] = mask
        return mask

    def _variance_hinge(self, x: Tensor, target: float) -> Tensor:
        centered = x - x.mean(axis=0, keepdims=True)
        variance = (centered * centered).mean(axis=0)
        std = (variance + 1e-8).sqrt()
        return F.relu(target - std).mean()

    def _covariance_penalty(self, x: Tensor) -> Tensor:
        batch, dims = x.shape
        centered = x - x.mean(axis=0, keepdims=True)
        cov = (centered.T @ centered) * (1.0 / max(batch - 1, 1))
        off = cov * self._off_diagonal_mask(dims, x.data.dtype)
        return (off * off).sum() * (1.0 / dims)

    def loss(self, ctx: BatchContext) -> Tensor:
        if self.rng is None:
            raise ConfigError(
                "VicRegObjective has no RNG stream yet; call prepare() "
                "(fit does) before computing the loss"
            )
        theta = ctx.theta
        # Second view: an independent reparameterized draw from the same
        # posterior, through the objective's private stream so the model's
        # own noise sequence (and hence the base ELBO) stays untouched.
        eps = Tensor(
            self.rng.standard_normal(ctx.mu.shape), dtype=ctx.mu.data.dtype
        )
        z2 = ctx.mu + (ctx.logvar * 0.5).exp() * eps
        theta2 = F.softmax(z2, axis=1)

        diff = theta - theta2
        invariance = (diff * diff).mean()

        target = (
            self.std_target
            if self.std_target is not None
            else 1.0 / theta.shape[1]
        )
        variance = self._variance_hinge(theta, target) + self._variance_hinge(
            theta2, target
        )
        covariance = self._covariance_penalty(theta) + self._covariance_penalty(
            theta2
        )
        return (
            invariance * self.sim_coeff
            + variance * self.std_coeff
            + covariance * self.cov_coeff
        )

    def term_on_batch(self, model, batch, ctx: BatchContext):
        return self.loss(ctx), {}

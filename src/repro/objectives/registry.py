"""Declarative objective specs: names + weights + params as plain data.

:class:`ObjectiveSpec` is the picklable/JSON-able form a regularizer takes
inside a :class:`~repro.training.trainer.RunSpec`, a CLI flag or a
parallel fan-out task; :func:`build_objective`/:func:`build_stack` turn
specs into live :class:`~repro.objectives.base.Objective` instances at fit
time (corpus-dependent state — NPMI kernels, idf tables, RNG streams — is
deferred to each objective's ``prepare`` hook, which is why specs can stay
plain data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import ConfigError
from repro.objectives.base import (
    ElboObjective,
    Objective,
    ObjectiveStack,
    ObjectiveTerm,
)
from repro.objectives.clntm import DocumentContrastiveObjective
from repro.objectives.coherence import DiversityAwareCoherenceObjective
from repro.objectives.contrastive import TopicContrastiveObjective
from repro.objectives.vicreg import VicRegObjective

_BUILDERS: dict[str, Callable[..., Objective]] = {
    "contrastive": TopicContrastiveObjective,
    "clntm": DocumentContrastiveObjective,
    "coherence": DiversityAwareCoherenceObjective,
    "vicreg": VicRegObjective,
}

#: Default term weight per objective when the spec leaves it unset.  The
#: contrastive default is the paper's 20NG λ; the rivals' defaults follow
#: their own papers' conventions (CLNTM and VICReg carry internal
#: coefficients, so their stack weight is 1).
DEFAULT_WEIGHTS: dict[str, float] = {
    "contrastive": 40.0,
    "clntm": 1.0,
    "coherence": 10.0,
    "vicreg": 1.0,
}


def available_objectives() -> tuple[str, ...]:
    """Registered regularizer names, sorted (CLI choices, validation)."""
    return tuple(sorted(_BUILDERS))


@dataclass(frozen=True)
class ObjectiveSpec:
    """One regularizer term as declarative data.

    ``weight=None`` resolves to the registry default for the name;
    ``params`` go to the objective constructor verbatim (e.g.
    ``{"salient_fraction": 0.3}`` for ``clntm``).
    """

    name: str
    weight: float | None = None
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in _BUILDERS:
            raise ConfigError(
                f"unknown objective {self.name!r}; available: "
                f"{list(available_objectives())}"
            )
        if self.weight is not None and self.weight < 0:
            raise ConfigError(
                f"objective {self.name!r} weight must be non-negative, "
                f"got {self.weight}"
            )
        if not isinstance(self.params, Mapping):
            raise ConfigError(
                f"objective {self.name!r} params must be a mapping, "
                f"got {type(self.params).__name__}"
            )
        object.__setattr__(self, "params", dict(self.params))

    def resolved_weight(self) -> float:
        return (
            float(self.weight)
            if self.weight is not None
            else DEFAULT_WEIGHTS[self.name]
        )

    # -- dict round-trip (RunSpec serialization) -----------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ObjectiveSpec":
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"objective spec must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - {"name", "weight", "params"}
        if unknown:
            raise ConfigError(f"unknown objective spec fields: {sorted(unknown)}")
        if "name" not in data:
            raise ConfigError("objective spec needs a 'name'")
        return cls(
            name=str(data["name"]),
            weight=data.get("weight"),
            params=data.get("params") or {},
        )


def build_objective(spec: ObjectiveSpec) -> Objective:
    """Instantiate one spec (unknown params become ConfigErrors)."""
    builder = _BUILDERS[spec.name]
    try:
        return builder(**dict(spec.params))
    except TypeError as exc:
        raise ConfigError(
            f"bad params for objective {spec.name!r}: {exc}"
        ) from exc


def build_stack(specs: Sequence[ObjectiveSpec]) -> ObjectiveStack:
    """An ELBO-based stack with one term per spec, in order."""
    terms = [
        ObjectiveTerm(
            name=spec.name,
            objective=build_objective(spec),
            weight=spec.resolved_weight(),
        )
        for spec in specs
    ]
    return ObjectiveStack(ElboObjective(), terms)


def attach_objectives(model, specs: Sequence[ObjectiveSpec]) -> ObjectiveStack:
    """Replace ``model``'s stack with one built from ``specs``.

    The trainer calls this before ``on_fit_start`` when
    ``RunSpec.objectives`` is set, so the stack's ``prepare`` hooks see
    the training corpus.
    """
    setter = getattr(model, "set_objectives", None)
    if setter is None:
        raise ConfigError(
            f"{type(model).__name__} does not support objective stacks "
            "(no set_objectives); RunSpec.objectives requires a "
            "NeuralTopicModel"
        )
    stack = build_stack(specs)
    setter(stack)
    return stack

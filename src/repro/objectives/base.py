"""The objective pipeline: a base ELBO term plus named regularizer terms.

Historically every regularizer was an ``extra_loss`` override on a model
subclass, which meant exactly one regularizer per model and a guard that
could only flip one global switch.  The :class:`ObjectiveStack` replaces
that with data: a base term (the reconstruction + KL ELBO) plus an ordered
list of named, weighted, individually-disableable regularizer terms.

The compute path is kept *operation-for-operation identical* to the old
inline ``loss_on_batch`` body (same tensor ops, same order, same RNG
consumption), so models refactored onto a stack train bitwise-identically
— the oracle tests in ``tests/objectives/`` pin this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.data.corpus import Corpus
    from repro.tensor.sparse import CSRBatch
    from repro.tensor.tensor import Tensor

#: The batch payload objectives receive — dense counts or a CSR batch.
Batch = "np.ndarray | CSRBatch"


@dataclass
class BatchContext:
    """Per-batch activations shared by every term (computed once).

    ``theta``/``mu``/``logvar`` come from one ``encode_theta`` call and
    ``beta`` from one decoder evaluation, so adding terms never repeats
    the encoder forward pass or consumes extra reparameterization noise.
    """

    theta: "Tensor"
    mu: "Tensor"
    logvar: "Tensor"
    beta: "Tensor"


class Objective:
    """One named loss term over a batch.

    Subclasses implement :meth:`term_on_batch` returning the (unweighted)
    differentiable term and a dict of scalar diagnostics; ``None`` means
    the term contributes nothing for this batch.  :meth:`prepare` runs
    once before training with the corpus (e.g. to build an NPMI kernel or
    tf-idf table) so specs stay plain picklable data until fit time.

    An objective holding its own RNG stream exposes it as ``self.rng`` —
    the stack surfaces it through :meth:`ObjectiveStack.rng_streams` so
    checkpoints capture it and resume stays bitwise.
    """

    #: Default registry/display name; the owning term may rename it.
    name: str = "objective"
    #: Optional private RNG stream (checkpointed when present).
    rng: np.random.Generator | None = None

    def prepare(self, model, corpus: "Corpus") -> None:
        """Pre-training hook (corpus statistics, kernels, RNG seeding)."""

    def term_on_batch(
        self, model, batch, ctx: BatchContext
    ) -> "tuple[Tensor | None, dict[str, float]]":
        """Return ``(unweighted term, diagnostics)`` for one batch."""
        raise NotImplementedError


class ElboObjective(Objective):
    """The base term: reconstruction NLL + KL, exactly as the models define it.

    Delegates to the model's ``reconstruction_loss``/``kl_loss`` hooks so
    backbone variations (OT reconstruction, MMD in place of KL) keep
    working unchanged through the stack.
    """

    name = "elbo"

    def term_on_batch(self, model, batch, ctx: BatchContext):
        rec = model.reconstruction_loss(ctx.theta, ctx.beta, batch)
        kl = model.kl_loss(ctx.mu, ctx.logvar, ctx.theta)
        loss = rec + kl * model.config.kl_weight
        return loss, {"rec": rec.item(), "kl": kl.item()}


class ExtraLossAdapter(Objective):
    """Bridges the legacy ``extra_loss`` hook onto the objective protocol.

    The default stack for any model is ELBO + this adapter, so subclasses
    that still override ``extra_loss`` (the pre-refactor extension point)
    train identically — including models whose hook returns ``None``.
    """

    name = "extra"

    def term_on_batch(self, model, batch, ctx: BatchContext):
        return model.extra_loss(ctx.theta, ctx.beta, batch), {}


@dataclass
class ObjectiveTerm:
    """One named, weighted, disableable regularizer slot in a stack."""

    name: str
    objective: Objective
    weight: float = 1.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("objective term name must be non-empty")
        if self.weight < 0:
            raise ConfigError(
                f"objective term {self.name!r} weight must be non-negative, "
                f"got {self.weight}"
            )


class ObjectiveStack:
    """A base term plus ordered named regularizer terms, summed per batch.

    The stack owns the loss composition the trainer sees: one encoder
    forward, the base ELBO, then every *enabled* term in order.  Disabled
    terms are never invoked — they consume no RNG and add no graph nodes —
    which is what makes the guard's per-term degradation bitwise-equal to
    the legacy single-flag ELBO-only fallback.
    """

    def __init__(
        self,
        base: Objective | None = None,
        terms: Sequence[ObjectiveTerm] = (),
    ):
        self.base = base if base is not None else ElboObjective()
        self.terms: list[ObjectiveTerm] = list(terms)
        seen: set[str] = set()
        for term in self.terms:
            if term.name in seen:
                raise ConfigError(
                    f"duplicate objective term name {term.name!r} in stack"
                )
            seen.add(term.name)

    # ------------------------------------------------------------------
    # introspection / per-term flags
    # ------------------------------------------------------------------
    def term_names(self) -> tuple[str, ...]:
        return tuple(term.name for term in self.terms)

    def term(self, name: str) -> ObjectiveTerm:
        for term in self.terms:
            if term.name == name:
                return term
        raise ConfigError(
            f"no objective term named {name!r} (have: {list(self.term_names())})"
        )

    def flags(self) -> dict[str, bool]:
        """``{term name: enabled}`` — the per-term degradation state."""
        return {term.name: bool(term.enabled) for term in self.terms}

    def set_enabled(self, name: str, enabled: bool) -> None:
        self.term(name).enabled = bool(enabled)

    def apply_flags(self, flags: "bool | dict[str, bool]") -> None:
        """Set per-term enables from a dict, or all terms from one bool.

        The bool form is the legacy ``extra_loss_enabled`` semantics —
        restoring an old single-flag checkpoint maps onto it bitwise.
        """
        if isinstance(flags, dict):
            for name, enabled in flags.items():
                self.set_enabled(str(name), bool(enabled))
        else:
            for term in self.terms:
                term.enabled = bool(flags)

    def any_enabled(self) -> bool:
        return any(term.enabled for term in self.terms)

    def all_enabled(self) -> bool:
        return all(term.enabled for term in self.terms)

    def disable_next(self) -> str | None:
        """Disable the last still-enabled term; returns its name.

        The guard's degradation ladder calls this — regularizers shed in
        reverse stack order (the base ELBO term is never disabled), and
        ``None`` signals there is nothing left to degrade.
        """
        for term in reversed(self.terms):
            if term.enabled:
                term.enabled = False
                return term.name
        return None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def prepare(self, model, corpus: "Corpus") -> None:
        """Run every term's pre-training hook (base first, then in order)."""
        self.base.prepare(model, corpus)
        for term in self.terms:
            term.objective.prepare(model, corpus)

    def rng_streams(self) -> dict[str, np.random.Generator]:
        """Private RNG streams of the terms, namespaced per term."""
        streams: dict[str, np.random.Generator] = {}
        for term in self.terms:
            rng = term.objective.rng
            if rng is not None:
                streams[f"objective_{term.name}"] = rng
        return streams

    # ------------------------------------------------------------------
    # the loss composition (the bitwise-pinned path)
    # ------------------------------------------------------------------
    def compute(self, model, batch) -> "tuple[Tensor, dict[str, float]]":
        """Total loss and scalar parts for one batch.

        Op order matches the pre-refactor inline ``loss_on_batch`` body
        exactly: encode, decode, rec + kl·w, then each enabled term added
        in stack order.  A term with weight 1.0 is added without the
        multiply node so the legacy ``loss + extra`` graph is reproduced
        node-for-node (×1.0 would be value-bitwise anyway; skipping it
        keeps the graphs structurally identical too).
        """
        theta, mu, logvar = model.encode_theta(batch, sample=True)
        beta = model.beta()
        ctx = BatchContext(theta=theta, mu=mu, logvar=logvar, beta=beta)
        loss, base_parts = self.base.term_on_batch(model, batch, ctx)
        parts = dict(base_parts)
        extra_total: float | None = None
        for term in self.terms:
            if not term.enabled:
                continue
            value, diagnostics = term.objective.term_on_batch(model, batch, ctx)
            if value is None:
                continue
            weighted = value if term.weight == 1.0 else value * term.weight
            loss = loss + weighted
            item = weighted.item()
            if term.name != "extra":
                parts[f"objective_{term.name}"] = item
            extra_total = item if extra_total is None else extra_total + item
            for key, diag_value in diagnostics.items():
                parts[f"objective_{term.name}_{key}"] = float(diag_value)
        if extra_total is not None:
            # The historical aggregate key: telemetry's "contrastive"
            # column and the bench reports read it, and single-term
            # stacks record exactly the legacy value.
            parts["extra"] = extra_total
        parts["total"] = loss.item()
        return loss, parts

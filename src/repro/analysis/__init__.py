"""Post-hoc topic analysis: similarity, redundancy, document assignment.

The paper's case study (§V.K) reasons qualitatively about topic mixing and
topic repetition ("For baselines like CLNTM with high topic consistency
and poor topic diversity, there are obvious repetitions in their top
topics"); this package turns those diagnoses into reusable functions.
"""

from repro.analysis.topics import (
    topic_similarity_matrix,
    find_redundant_topics,
    assign_documents,
    topic_summaries,
    TopicSummary,
)

__all__ = [
    "topic_similarity_matrix",
    "find_redundant_topics",
    "assign_documents",
    "topic_summaries",
    "TopicSummary",
]

"""Topic-level diagnostics over a fitted model's outputs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.vocabulary import Vocabulary
from repro.errors import ConfigError, ShapeError
from repro.metrics.coherence import top_word_ids
from repro.metrics.npmi import NpmiMatrix


def _validate_beta(topic_word: np.ndarray) -> np.ndarray:
    beta = np.asarray(topic_word, dtype=np.float64)
    if beta.ndim != 2:
        raise ShapeError(f"topic-word matrix must be 2-D, got {beta.shape}")
    return beta


def topic_similarity_matrix(
    topic_word: np.ndarray, metric: str = "jensen-shannon", top_n: int = 25
) -> np.ndarray:
    """Pairwise topic similarity in [0, 1]; 1 on the diagonal.

    ``jensen-shannon`` converts the JS divergence (base 2, so in [0, 1])
    into a similarity ``1 - JS``;  ``overlap`` uses the fraction of shared
    top-``top_n`` words (the quantity topic diversity measures; clipped to
    the vocabulary size).
    """
    beta = _validate_beta(topic_word)
    k = beta.shape[0]
    if metric == "jensen-shannon":
        similarity = np.empty((k, k))
        logs = np.log2(beta + 1e-12)
        entropies = -(beta * logs).sum(axis=1)
        for i in range(k):
            mixture = 0.5 * (beta[i][None, :] + beta)
            mixture_entropy = -(mixture * np.log2(mixture + 1e-12)).sum(axis=1)
            js = mixture_entropy - 0.5 * (entropies[i] + entropies)
            similarity[i] = 1.0 - np.clip(js, 0.0, 1.0)
        return similarity
    if metric == "overlap":
        top_n = min(top_n, beta.shape[1])
        tops = top_word_ids(beta, top_n)
        similarity = np.empty((k, k))
        sets = [set(row.tolist()) for row in tops]
        for i in range(k):
            for j in range(k):
                similarity[i, j] = len(sets[i] & sets[j]) / top_n
        return similarity
    raise ConfigError(f"unknown metric {metric!r}")


def find_redundant_topics(
    topic_word: np.ndarray,
    threshold: float = 0.5,
    metric: str = "overlap",
    top_n: int = 25,
) -> list[tuple[int, int, float]]:
    """Topic pairs whose similarity exceeds ``threshold``.

    Returns ``(i, j, similarity)`` tuples sorted by descending similarity —
    the quantitative form of the paper's "obvious repetitions" diagnosis.
    """
    similarity = topic_similarity_matrix(topic_word, metric=metric, top_n=top_n)
    k = similarity.shape[0]
    pairs = [
        (i, j, float(similarity[i, j]))
        for i in range(k)
        for j in range(i + 1, k)
        if similarity[i, j] > threshold
    ]
    pairs.sort(key=lambda t: -t[2])
    return pairs


def assign_documents(doc_topic: np.ndarray, threshold: float = 0.0) -> np.ndarray:
    """Dominant-topic assignment per document; -1 when below ``threshold``.

    A threshold of e.g. 0.3 leaves genuinely mixed documents unassigned,
    which is usually what a content-analysis user wants.
    """
    theta = np.asarray(doc_topic, dtype=np.float64)
    if theta.ndim != 2:
        raise ShapeError(f"doc-topic matrix must be 2-D, got {theta.shape}")
    winners = theta.argmax(axis=1)
    confident = theta.max(axis=1) >= threshold
    return np.where(confident, winners, -1)


@dataclass(frozen=True)
class TopicSummary:
    """Everything a report needs about one topic."""

    index: int
    top_words: tuple[str, ...]
    npmi: float
    prevalence: float          # share of documents assigned to this topic
    most_similar_topic: int
    similarity: float


def topic_summaries(
    topic_word: np.ndarray,
    doc_topic: np.ndarray,
    vocabulary: Vocabulary,
    npmi: NpmiMatrix,
    top_n: int = 10,
) -> list[TopicSummary]:
    """One :class:`TopicSummary` per topic, sorted by descending NPMI."""
    beta = _validate_beta(topic_word)
    if beta.shape[0] != np.asarray(doc_topic).shape[1]:
        raise ShapeError("topic_word and doc_topic disagree on topic count")
    tops = top_word_ids(beta, min(top_n, beta.shape[1]))
    assignments = assign_documents(doc_topic)
    counts = np.bincount(assignments[assignments >= 0], minlength=beta.shape[0])
    prevalence = counts / max(assignments.size, 1)
    similarity = topic_similarity_matrix(beta, metric="overlap")
    np.fill_diagonal(similarity, -1.0)

    summaries = []
    for k in range(beta.shape[0]):
        nearest = int(np.argmax(similarity[k]))
        summaries.append(
            TopicSummary(
                index=k,
                top_words=tuple(vocabulary.token_of(int(w)) for w in tops[k]),
                npmi=npmi.mean_pairwise(tops[k]),
                prevalence=float(prevalence[k]),
                most_similar_topic=nearest,
                similarity=float(similarity[k, nearest]),
            )
        )
    summaries.sort(key=lambda s: -s.npmi)
    return summaries

"""KMeans with k-means++ initialisation, implemented from scratch.

Used by the paper's document-representation evaluation: "we apply the
KMeans algorithm on test data and report the scores of the KMeans clusters
(denoted by km-Purity and km-NMI) ... The number of clusters in KMeans
varies in the range of 20, 40, 60, 80, 100."
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ConvergenceError, NotFittedError


class KMeans:
    """Lloyd's algorithm with k-means++ seeding and empty-cluster repair.

    Parameters
    ----------
    n_clusters:
        Number of centroids.
    max_iterations:
        Lloyd iteration budget per restart.
    n_restarts:
        Independent seedings; the lowest-inertia run wins.
    tolerance:
        Relative centroid-shift threshold for convergence.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iterations: int = 100,
        n_restarts: int = 3,
        tolerance: float = 1e-6,
        seed: int = 0,
    ):
        if n_clusters < 1:
            raise ConfigError("n_clusters must be >= 1")
        if max_iterations < 1:
            raise ConfigError("max_iterations must be >= 1")
        if n_restarts < 1:
            raise ConfigError("n_restarts must be >= 1")
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.n_restarts = n_restarts
        self.tolerance = tolerance
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self.inertia: float | None = None

    # ------------------------------------------------------------------
    def fit(self, points: np.ndarray) -> "KMeans":
        """Cluster ``(n, d)`` points; keeps the best of ``n_restarts`` runs."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ConfigError(f"points must be 2-D, got shape {points.shape}")
        if points.shape[0] < self.n_clusters:
            raise ConfigError(
                f"cannot form {self.n_clusters} clusters from "
                f"{points.shape[0]} points"
            )
        best_inertia = np.inf
        best_centroids: np.ndarray | None = None
        for restart in range(self.n_restarts):
            rng = np.random.default_rng(self.seed + restart)
            centroids = self._plus_plus_init(points, rng)
            centroids, inertia = self._lloyd(points, centroids, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                best_centroids = centroids
        if best_centroids is None:  # pragma: no cover - defensive
            raise ConvergenceError("kmeans failed to produce any clustering")
        self.centroids = best_centroids
        self.inertia = float(best_inertia)
        return self

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Assign each point to its nearest centroid."""
        if self.centroids is None:
            raise NotFittedError("KMeans.predict called before fit")
        points = np.asarray(points, dtype=np.float64)
        return self._assign(points, self.centroids)

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        return self.fit(points).predict(points)

    # ------------------------------------------------------------------
    def _plus_plus_init(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """k-means++ seeding: each new centroid ∝ squared distance."""
        n = points.shape[0]
        centroids = np.empty((self.n_clusters, points.shape[1]))
        first = int(rng.integers(n))
        centroids[0] = points[first]
        closest_sq = ((points - centroids[0]) ** 2).sum(axis=1)
        for k in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0:
                # All remaining points coincide with a centroid; pick any.
                idx = int(rng.integers(n))
            else:
                idx = int(rng.choice(n, p=closest_sq / total))
            centroids[k] = points[idx]
            dist_sq = ((points - centroids[k]) ** 2).sum(axis=1)
            closest_sq = np.minimum(closest_sq, dist_sq)
        return centroids

    @staticmethod
    def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment via the expanded-norm trick."""
        cross = points @ centroids.T
        c_norms = (centroids**2).sum(axis=1)
        distances = c_norms[None, :] - 2.0 * cross  # point norms are constant
        return np.argmin(distances, axis=1)

    def _lloyd(
        self,
        points: np.ndarray,
        centroids: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float]:
        assignments = self._assign(points, centroids)
        for _ in range(self.max_iterations):
            new_centroids = np.zeros_like(centroids)
            counts = np.bincount(assignments, minlength=self.n_clusters)
            np.add.at(new_centroids, assignments, points)
            empty = counts == 0
            counts_safe = np.maximum(counts, 1)
            new_centroids /= counts_safe[:, None]
            if empty.any():
                # Re-seed empty clusters at the points farthest from their
                # current centroid (standard repair strategy).
                dist_sq = ((points - new_centroids[assignments]) ** 2).sum(axis=1)
                far = np.argsort(-dist_sq)[: int(empty.sum())]
                new_centroids[empty] = points[far]
            shift = float(np.sqrt(((new_centroids - centroids) ** 2).sum()))
            centroids = new_centroids
            assignments = self._assign(points, centroids)
            if shift <= self.tolerance * (1.0 + float(np.abs(centroids).sum())):
                break
        inertia = float(((points - centroids[assignments]) ** 2).sum())
        return centroids, inertia


def kmeans_cluster(
    points: np.ndarray, n_clusters: int, seed: int = 0
) -> np.ndarray:
    """Convenience wrapper: fit KMeans and return assignments."""
    return KMeans(n_clusters, seed=seed).fit_predict(points)

"""Clustering substrate (KMeans) for the km-Purity / km-NMI evaluation."""

from repro.cluster.kmeans import KMeans, kmeans_cluster

__all__ = ["KMeans", "kmeans_cluster"]

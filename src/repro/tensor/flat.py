"""Flat (1-D) views over a parameter list's data and gradients.

Data-parallel training (:mod:`repro.parallel.ddp`) moves parameters and
gradients between processes through preallocated flat buffers — one
contiguous float array per direction — instead of pickling per-parameter
payloads.  These helpers define the single canonical layout both sides
use: parameters in ``model.parameters()`` order (stable: the module tree
walk is deterministic), each flattened C-order, concatenated.

Everything here is plain numpy over ``Parameter.data`` / ``Parameter.grad``
arrays; nothing differentiates, so the helpers live next to the tensor
layer but below autodiff.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError


def flat_size(parameters: Sequence) -> int:
    """Total number of scalars across ``parameters`` (the buffer length)."""
    return int(sum(p.data.size for p in parameters))


def _check_buffer(parameters: Sequence, flat: np.ndarray, what: str) -> None:
    needed = flat_size(parameters)
    if flat.ndim != 1 or flat.shape[0] != needed:
        raise ShapeError(
            f"{what} buffer has shape {flat.shape}, expected ({needed},) "
            f"for {len(parameters)} parameters"
        )


def write_params(parameters: Sequence, flat: np.ndarray) -> None:
    """Copy every parameter's ``data`` into ``flat`` (canonical layout)."""
    _check_buffer(parameters, flat, "parameter")
    offset = 0
    for p in parameters:
        n = p.data.size
        flat[offset : offset + n] = p.data.reshape(-1)
        offset += n


def bind_params_to(parameters: Sequence, flat: np.ndarray) -> None:
    """Rebind every parameter's ``data`` to a **read-only view** of ``flat``.

    This is the worker side of the shared-memory parameter broadcast: the
    parent writes the flat buffer before each batch and the worker's
    forward pass reads the views — no per-batch copy, no pickling.  The
    views are marked non-writeable as a tripwire: workers never step the
    optimizer, so nothing should ever write parameter data in place.
    """
    _check_buffer(parameters, flat, "parameter")
    offset = 0
    for p in parameters:
        n = p.data.size
        view = flat[offset : offset + n].reshape(p.data.shape)
        view.flags.writeable = False
        p.data = view
        offset += n


def write_grads(parameters: Sequence, flat: np.ndarray) -> None:
    """Copy every parameter's gradient into ``flat`` (missing grads → 0)."""
    _check_buffer(parameters, flat, "gradient")
    offset = 0
    for p in parameters:
        n = p.data.size
        if p.grad is None:
            flat[offset : offset + n] = 0.0
        else:
            flat[offset : offset + n] = p.grad.reshape(-1)
        offset += n


def load_grads(parameters: Sequence, flat: np.ndarray) -> None:
    """Rebind every parameter's ``grad`` to a view of ``flat``.

    The views alias ``flat`` — callers that reuse the buffer (the
    all-reduce accumulator does, once per batch) must only overwrite it
    after the optimizer step consumed the gradients, which the trainer's
    ``zero_grad → … → step`` pipeline guarantees.
    """
    _check_buffer(parameters, flat, "gradient")
    offset = 0
    for p in parameters:
        n = p.data.size
        p.grad = flat[offset : offset + n].reshape(p.data.shape)
        offset += n

"""Differentiable functional building blocks on top of :class:`Tensor`.

These are the composite operations shared by every model in the library:
numerically-stable softmax / log-softmax / logsumexp, the common activation
functions, and the closed-form loss terms used by VAE-style topic models
(reconstruction cross-entropy against a bag-of-words, and the KL divergence
between a diagonal Gaussian and the standard normal).

The hot-path entries (``softmax``, ``log_softmax``, ``logsumexp``,
``sigmoid``, ``softplus``, ``kl_normal_standard``) are aliases of the
single-node kernels in :mod:`repro.tensor.fused`.  Their original
multi-node builds are kept here under ``*_composed`` names: they are the
executable specification the fused kernels are tested against
(``tests/tensor/test_fused.py``), not dead code.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import fused
from repro.tensor.tensor import Tensor, as_tensor

_SELU_ALPHA = 1.6732632423543772
_SELU_SCALE = 1.0507009873554805

#: Composite functional ops eligible for op-level profiling (see
#: :func:`repro.telemetry.ophooks.profile_ops`).  Profiling a composite
#: also profiles the primitive Tensor ops it is built from, so op tables
#: show both the composite's total and its constituents.
PROFILED_FUNCTIONAL_OPS: tuple[str, ...] = (
    "logsumexp",
    "softmax",
    "log_softmax",
    "sigmoid",
    "tanh",
    "relu",
    "leaky_relu",
    "selu",
    "softplus",
    "gelu",
    "cross_entropy_with_probs",
    "kl_normal_standard",
    "mse",
)


def logsumexp_composed(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Primitive-composed ``log(sum(exp(x)))`` (reference for the fused op)."""
    x = as_tensor(x)
    shift = Tensor(x.data.max(axis=axis, keepdims=True))  # constant, no grad
    out = ((x - shift).exp().sum(axis=axis, keepdims=True)).log() + shift
    if not keepdims:
        out = out.squeeze(axis if axis >= 0 else x.ndim + axis)
    return out


def softmax_composed(x: Tensor, axis: int = -1) -> Tensor:
    """Primitive-composed max-shifted softmax (reference for the fused op)."""
    x = as_tensor(x)
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    e = (x - shift).exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax_composed(x: Tensor, axis: int = -1) -> Tensor:
    """Primitive-composed log-softmax (reference for the fused op)."""
    x = as_tensor(x)
    return x - logsumexp_composed(x, axis=axis, keepdims=True)


def sigmoid_composed(x: Tensor) -> Tensor:
    """Primitive-composed tanh-form sigmoid (reference for the fused op)."""
    x = as_tensor(x)
    return (tanh(x * 0.5) + 1.0) * 0.5


#: Hot-path functional ops are the fused single-node kernels.
logsumexp = fused.logsumexp
softmax = fused.softmax
log_softmax = fused.log_softmax
sigmoid = fused.sigmoid


def tanh(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - out_data**2))

    return Tensor._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (x.data > 0.0))

    return Tensor._make(out_data, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    x = as_tensor(x)
    out_data = np.where(x.data > 0.0, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            slope = np.where(x.data > 0.0, 1.0, negative_slope)
            x._accumulate(grad * slope)

    return Tensor._make(out_data, (x,), backward)


def selu(x: Tensor) -> Tensor:
    """Scaled exponential linear unit (the paper's encoder activation)."""
    x = as_tensor(x)
    positive = x.data > 0.0
    out_data = _SELU_SCALE * np.where(
        positive, x.data, _SELU_ALPHA * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    )

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            deriv = _SELU_SCALE * np.where(
                positive, 1.0, _SELU_ALPHA * np.exp(np.minimum(x.data, 0.0))
            )
            x._accumulate(grad * deriv)

    return Tensor._make(out_data, (x,), backward)


softplus = fused.softplus


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    x = as_tensor(x)
    c = float(np.sqrt(2.0 / np.pi))
    inner = (x + x * x * x * 0.044715) * c
    return x * 0.5 * (tanh(inner) + 1.0)


def cross_entropy_with_probs(
    log_word_probs: Tensor, bow: np.ndarray | Tensor
) -> Tensor:
    """Negative log-likelihood of bag-of-words counts under word log-probs.

    Parameters
    ----------
    log_word_probs:
        ``(batch, vocab)`` log-probabilities (rows of ``log(theta @ beta)``).
    bow:
        ``(batch, vocab)`` observed word counts (not differentiated).

    Returns
    -------
    Scalar tensor: mean over the batch of ``-sum_v bow[d, v] * log p[d, v]``.
    """
    counts = bow.data if isinstance(bow, Tensor) else np.asarray(bow)
    counts_t = Tensor(counts.astype(log_word_probs.data.dtype, copy=False))
    per_doc = -(log_word_probs * counts_t).sum(axis=1)
    return per_doc.mean()


def kl_normal_standard_composed(mu: Tensor, logvar: Tensor) -> Tensor:
    """Primitive-composed KL( N(mu, exp(logvar)) || N(0, I) ) mean.

    Uses the closed form ``0.5 * sum(exp(logvar) + mu^2 - 1 - logvar)``;
    reference for :func:`repro.tensor.fused.kl_normal_standard`.
    """
    per_doc = ((logvar.exp() + mu * mu - 1.0 - logvar) * 0.5).sum(axis=1)
    return per_doc.mean()


kl_normal_standard = fused.kl_normal_standard


def mse(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error against a constant (non-differentiated) target."""
    target_data = target.data if isinstance(target, Tensor) else np.asarray(target)
    diff = prediction - Tensor(target_data.astype(prediction.data.dtype, copy=False))
    return (diff * diff).mean()

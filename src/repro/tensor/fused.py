"""Fused autodiff kernels: one graph node where the composed ops used many.

Every function here is semantically identical to a chain of primitive
:class:`~repro.tensor.tensor.Tensor` operations (the reference compositions
live in :mod:`repro.tensor.functional` as ``*_composed``), but runs the
whole forward in numpy without intermediate graph nodes and backpropagates
through a single hand-derived closure.  A composed ``softmax`` builds five
nodes (max-shift constant, ``sub``, ``exp``, ``sum``, ``div``), five output
temporaries and five Python closures per call; the fused one builds one node
and reuses its forward buffers in the backward.  On the training hot path —
the encoder's ``linear`` stack, the ELBO's log-softmax/NLL, the O(K·V²)
contrastive step — this removes most of the Python-per-op overhead and
roughly halves transient allocations.

Dtype: all kernels compute in the dtype of their tensor inputs (see
:mod:`repro.tensor.dtypes`); constant operands (bag-of-words counts,
running statistics) are cast to match so float32 graphs stay float32.
Scalar hyper-parameters are kept as Python floats, which numpy's promotion
rules treat as weak — they never upcast a float32 array.

Sparse fast path: the bag-of-words-facing kernels (``linear``,
``nll_from_probs``, ``log_softmax_nll``) each have a ``*_csr`` twin that
accepts a :class:`~repro.tensor.sparse.CSRBatch` operand and touches only
its nonzeros — O(nnz·H) instead of O(B·V·H) for the encoder affine,
O(nnz) instead of O(B·V) for the NLL log/scatter.  The dense-named
entrypoints auto-dispatch on operand type, so call sites (``nn.Linear``,
the models' reconstruction losses) pick the sparse path for free whenever
the data layer hands them a CSR batch.  The CSR operand is always a
*constant* (counts are inputs, never parameters); only the dense tensor
operands are differentiated.

Profiling: :data:`PROFILED_FUSED_OPS` names the kernels that
:func:`repro.telemetry.ophooks.profile_ops` wraps while active, so fused
calls appear as single rows of the per-op report.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensor.sparse import CSRBatch, transpose_contiguous
from repro.tensor.tensor import Tensor, as_tensor

#: Fused kernels eligible for op-level profiling (see
#: :func:`repro.telemetry.ophooks.profile_ops`).  Each call is one graph
#: node, so its row in the ops table covers what would otherwise be spread
#: over 4-10 primitive rows.
PROFILED_FUSED_OPS: tuple[str, ...] = (
    "linear",
    "linear_csr",
    "softmax",
    "log_softmax",
    "logsumexp",
    "sigmoid",
    "softplus",
    "nll_from_probs",
    "nll_from_probs_csr",
    "nll_from_mixture_csr",
    "log_softmax_nll",
    "log_softmax_nll_csr",
    "kl_normal_standard",
    "batch_norm",
)


def _constant(value, dtype: np.dtype) -> np.ndarray:
    """Materialise a non-differentiated operand in the graph's dtype."""
    data = value.data if isinstance(value, Tensor) else np.asarray(value)
    return data.astype(dtype, copy=False)


# ----------------------------------------------------------------------
# affine
# ----------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused affine map ``x @ weight.T + bias`` as a single node.

    Replaces the ``transpose`` / ``matmul`` / ``add`` triple built by the
    composed path.  ``x`` may have any number of leading batch dimensions;
    ``weight`` is ``(out_features, in_features)``.

    A :class:`~repro.tensor.sparse.CSRBatch` input dispatches to
    :func:`linear_csr` (the sparse fast path; ``x`` becomes a constant).
    """
    if isinstance(x, CSRBatch):
        return linear_csr(x, weight, bias)
    x = as_tensor(x)
    weight = as_tensor(weight)
    if x.ndim < 2 or weight.ndim != 2:
        raise ShapeError(
            f"linear expects x of ndim >= 2 and a 2-D weight, got "
            f"{x.shape} @ {weight.shape}"
        )
    if x.shape[-1] != weight.shape[1]:
        raise ShapeError(
            f"linear shape mismatch: x {x.shape} vs weight {weight.shape}"
        )
    out_data = x.data @ weight.data.T
    if bias is not None:
        out_data += bias.data  # fresh array: safe to add in place

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad @ weight.data)
        if weight.requires_grad or (bias is not None and bias.requires_grad):
            g2 = grad.reshape(-1, weight.data.shape[0])
            if weight.requires_grad:
                x2 = x.data.reshape(-1, weight.data.shape[1])
                weight._accumulate(g2.T @ x2)
            if bias is not None and bias.requires_grad:
                bias._accumulate(g2.sum(axis=0))

    return Tensor._make(out_data, parents, backward)


def linear_csr(
    x: CSRBatch, weight: Tensor, bias: Tensor | None = None
) -> Tensor:
    """Sparse×dense fused affine map ``x @ weight.T + bias``, one node.

    ``x`` is a constant :class:`~repro.tensor.sparse.CSRBatch` of
    bag-of-words counts; only ``weight``/``bias`` are differentiated.  The
    forward runs scipy's C CSR·dense kernel — O(nnz·out_features) instead
    of the dense O(batch·in_features·out_features) — and the backward
    computes ``dW = (x.T @ g).T`` through the same sparse kernel, again
    touching only nonzeros.
    """
    if not isinstance(x, CSRBatch):
        raise ShapeError(
            f"linear_csr expects a CSRBatch input, got {type(x).__name__}"
        )
    weight = as_tensor(weight)
    if weight.ndim != 2:
        raise ShapeError(
            f"linear_csr expects a 2-D weight, got {weight.shape}"
        )
    if x.shape[1] != weight.shape[1]:
        raise ShapeError(
            f"linear_csr shape mismatch: x {x.shape} vs weight {weight.shape}"
        )
    counts = x.astype(weight.data.dtype)
    out_data = counts.matmul_dense(weight.data.T)
    if bias is not None:
        out_data += bias.data  # fresh array: safe to add in place

    parents = (weight,) if bias is None else (weight, bias)

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            # ``X.T @ g`` comes out (in, out); the blocked transpose copy
            # delivers the (out, in) layout the parameter expects without
            # the cache-hostile strided accumulate.
            weight._accumulate(
                transpose_contiguous(counts.t_matmul_dense(grad))
            )
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=0))

    return Tensor._make(out_data, parents, backward)


# ----------------------------------------------------------------------
# normalised exponentials
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Fused max-shifted softmax: one node instead of five."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    out_data = shifted
    out_data /= out_data.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            inner = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate((grad - inner) * out_data)

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Fused log-softmax (``x - logsumexp(x)``) as a single node."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    sums = exps.sum(axis=axis, keepdims=True)
    out_data = shifted - np.log(sums)
    probs = exps
    probs /= sums  # softmax, reused by the backward

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad - probs * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Fused numerically-stable ``log(sum(exp(x)))`` along ``axis``."""
    x = as_tensor(x)
    norm_axis = axis if axis >= 0 else x.ndim + axis
    shift = x.data.max(axis=axis, keepdims=True)
    exps = np.exp(x.data - shift)
    sums = exps.sum(axis=axis, keepdims=True)
    out_data = np.log(sums) + shift
    if not keepdims:
        out_data = np.squeeze(out_data, axis=norm_axis)
    probs = exps
    probs /= sums

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = grad if keepdims else np.expand_dims(grad, norm_axis)
            x._accumulate(g * probs)

    return Tensor._make(out_data, (x,), backward)


# ----------------------------------------------------------------------
# element-wise activations
# ----------------------------------------------------------------------
def sigmoid(x: Tensor) -> Tensor:
    """Fused logistic sigmoid (tanh-form for numerical robustness)."""
    x = as_tensor(x)
    out_data = np.tanh(x.data * 0.5)
    out_data += 1.0
    out_data *= 0.5

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


def softplus(x: Tensor) -> Tensor:
    """``log(1 + exp(x))`` computed stably for large ``|x|``."""
    x = as_tensor(x)
    out_data = np.logaddexp(0.0, x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            # d/dx softplus = sigmoid(x)
            x._accumulate(grad * (0.5 * (np.tanh(0.5 * x.data) + 1.0)))

    return Tensor._make(out_data, (x,), backward)


# ----------------------------------------------------------------------
# fused ELBO terms
# ----------------------------------------------------------------------
def nll_from_probs(
    word_probs: Tensor, bow, eps: float = 1e-12
) -> Tensor:
    """Reconstruction NLL straight from word probabilities, in one node.

    Computes ``mean_d( -sum_v bow[d,v] * log(p[d,v] + eps) )`` — the
    ``(p + eps).log()`` / ``mul`` / ``sum`` / ``neg`` / ``mean`` chain used
    by the mixture-form models (ETM-style ``theta @ beta`` decoders) — with
    a single analytic backward ``dp = -(g/B) * bow / (p + eps)``.
    ``bow`` is a constant (not differentiated).

    A :class:`~repro.tensor.sparse.CSRBatch` ``bow`` dispatches to
    :func:`nll_from_probs_csr`, which reads/logs/scatters only at the
    nonzero count positions.
    """
    if isinstance(bow, CSRBatch):
        return nll_from_probs_csr(word_probs, bow, eps=eps)
    word_probs = as_tensor(word_probs)
    if word_probs.ndim != 2:
        raise ShapeError(
            f"nll_from_probs expects (batch, vocab) probabilities, got "
            f"{word_probs.shape}"
        )
    counts = _constant(bow, word_probs.data.dtype)
    denom = word_probs.data + eps
    per_doc = -np.einsum("dv,dv->d", counts, np.log(denom))
    out_data = np.asarray(per_doc.mean())
    batch = word_probs.shape[0]

    def backward(grad: np.ndarray) -> None:
        if word_probs.requires_grad:
            scale = -float(grad) / batch
            word_probs._accumulate(scale * counts / denom)

    return Tensor._make(out_data, (word_probs,), backward)


def nll_from_probs_csr(
    word_probs: Tensor, bow: CSRBatch, eps: float = 1e-12
) -> Tensor:
    """Sparse-counts reconstruction NLL: log/scatter only at nonzeros.

    Mathematically identical to :func:`nll_from_probs` — every zero count
    contributes exactly ``0 * log(p + eps) = 0`` to the dense sum — but the
    forward gathers and logs only the ``nnz`` probabilities actually paired
    with a count, and the backward scatters ``-(g/B) * bow / (p + eps)``
    into a zero gradient at those positions.  O(nnz) work where the dense
    kernel pays O(batch·vocab).
    """
    if not isinstance(bow, CSRBatch):
        raise ShapeError(
            f"nll_from_probs_csr expects a CSRBatch bow, got "
            f"{type(bow).__name__}"
        )
    word_probs = as_tensor(word_probs)
    if word_probs.ndim != 2:
        raise ShapeError(
            f"nll_from_probs_csr expects (batch, vocab) probabilities, got "
            f"{word_probs.shape}"
        )
    if bow.shape != word_probs.shape:
        raise ShapeError(
            f"nll_from_probs_csr shape mismatch: probs {word_probs.shape} "
            f"vs bow {bow.shape}"
        )
    dtype = word_probs.data.dtype
    counts = bow.data.astype(dtype, copy=False)
    rows = bow.row_ids()
    cols = bow.indices
    denom_nz = word_probs.data[rows, cols] + eps
    batch = word_probs.shape[0]
    total = -float(counts @ np.log(denom_nz)) if bow.nnz else 0.0
    out_data = np.asarray(total / max(batch, 1), dtype=dtype)

    def backward(grad: np.ndarray) -> None:
        if word_probs.requires_grad:
            scale = -float(grad) / batch
            gp = np.zeros_like(word_probs.data)
            # Canonical CSR: (row, col) pairs are unique, plain assignment.
            gp[rows, cols] = scale * counts / denom_nz
            word_probs._accumulate(gp)

    return Tensor._make(out_data, (word_probs,), backward)


def nll_from_mixture_csr(
    theta: Tensor, beta: Tensor, bow: CSRBatch, eps: float = 1e-12
) -> Tensor:
    """Fused mixture-decode NLL: ``nll_from_probs(theta @ beta, bow)``
    without ever materializing the ``(batch, vocab)`` probability matrix.

    The mixture models (ETM-style decoders) only consume ``p = theta @
    beta`` inside the count-weighted NLL, and the counts are ≥95% zeros —
    so only the ``nnz`` probabilities paired with a nonzero count matter.
    The forward computes ``p[d, v] = theta[d] · beta[:, v]`` at exactly
    those positions (O(nnz·K) instead of O(batch·vocab·K) BLAS), and the
    backward pushes the sparse coefficient matrix ``C[d, v] = -(g/B) *
    bow[d, v] / (p[d, v] + eps)`` through the product rule with two
    sparse×dense products::

        dtheta = C @ beta.T          # (batch, topics)
        dbeta  = (C.T @ theta).T     # (topics, vocab)

    Numerically this matches the dense chain to float associativity: the
    dense kernel reduces each dot product through BLAS, this one through
    ``einsum`` — both sum the same K terms.  ``bow`` is a constant.
    """
    theta = as_tensor(theta)
    beta = as_tensor(beta)
    if not isinstance(bow, CSRBatch):
        raise ShapeError(
            f"nll_from_mixture_csr expects a CSRBatch bow, got "
            f"{type(bow).__name__}"
        )
    if theta.ndim != 2 or beta.ndim != 2 or theta.shape[1] != beta.shape[0]:
        raise ShapeError(
            f"nll_from_mixture_csr expects (batch, topics) @ (topics, vocab), "
            f"got {theta.shape} @ {beta.shape}"
        )
    if bow.shape != (theta.shape[0], beta.shape[1]):
        raise ShapeError(
            f"nll_from_mixture_csr shape mismatch: theta @ beta is "
            f"{(theta.shape[0], beta.shape[1])} but bow is {bow.shape}"
        )
    dtype = np.result_type(theta.data.dtype, beta.data.dtype)
    counts = bow.data.astype(dtype, copy=False)
    rows = bow.row_ids()
    cols = bow.indices
    batch = bow.shape[0]
    if bow.nnz:
        # p at nonzero positions only: gather the participating document
        # rows of theta and word columns of beta, reduce over topics.
        denom_nz = (
            np.einsum("nk,kn->n", theta.data[rows], beta.data[:, cols]) + eps
        )
        total = -float(counts @ np.log(denom_nz))
    else:
        denom_nz = np.zeros(0, dtype=dtype)
        total = 0.0
    out_data = np.asarray(total / max(batch, 1), dtype=dtype)

    def backward(grad: np.ndarray) -> None:
        scale = -float(grad) / batch
        if not bow.nnz:
            if theta.requires_grad:
                theta._accumulate(np.zeros_like(theta.data))
            if beta.requires_grad:
                beta._accumulate(np.zeros_like(beta.data))
            return
        coeff = CSRBatch(
            scale * counts / denom_nz, bow.indices, bow.indptr, bow.shape
        ).to_scipy()
        if theta.requires_grad:
            theta._accumulate(
                np.asarray(coeff @ transpose_contiguous(beta.data), dtype=dtype)
            )
        if beta.requires_grad:
            beta._accumulate(
                transpose_contiguous(np.asarray(coeff.T @ theta.data, dtype=dtype))
            )

    return Tensor._make(out_data, (theta, beta), backward)


def log_softmax_nll(logits: Tensor, bow) -> Tensor:
    """Fused ``cross_entropy_with_probs(log_softmax(logits), bow)``.

    The ProdLDA-style decoder head: row-wise log-softmax of the logits
    followed by the weighted NLL against bag-of-words counts, collapsed
    into one node.  The backward is the classic softmax cross-entropy
    form ``dlogits = (g/B) * (softmax * total_counts - counts)`` — no
    ``(batch, vocab)`` log-prob gradient temporary chain at all.

    A :class:`~repro.tensor.sparse.CSRBatch` ``bow`` dispatches to
    :func:`log_softmax_nll_csr`.
    """
    if isinstance(bow, CSRBatch):
        return log_softmax_nll_csr(logits, bow)
    logits = as_tensor(logits)
    if logits.ndim != 2:
        raise ShapeError(
            f"log_softmax_nll expects (batch, vocab) logits, got {logits.shape}"
        )
    counts = _constant(bow, logits.data.dtype)
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    sums = exps.sum(axis=1, keepdims=True)
    log_probs = shifted - np.log(sums)
    per_doc = -np.einsum("dv,dv->d", counts, log_probs)
    out_data = np.asarray(per_doc.mean())
    probs = exps
    probs /= sums
    totals = counts.sum(axis=1, keepdims=True)
    batch = logits.shape[0]

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            scale = float(grad) / batch
            logits._accumulate(scale * (probs * totals - counts))

    return Tensor._make(out_data, (logits,), backward)


def log_softmax_nll_csr(logits: Tensor, bow: CSRBatch) -> Tensor:
    """Sparse-counts softmax cross-entropy: count terms only at nonzeros.

    The softmax normaliser is inherently dense (every logit feeds every
    row's partition function), so the shift/exp/sum run dense as in
    :func:`log_softmax_nll`; but the count-weighted log-probability sum and
    the ``- counts`` correction in the backward touch only the ``nnz``
    stored positions, skipping the O(batch·vocab) einsum over zeros.
    """
    if not isinstance(bow, CSRBatch):
        raise ShapeError(
            f"log_softmax_nll_csr expects a CSRBatch bow, got "
            f"{type(bow).__name__}"
        )
    logits = as_tensor(logits)
    if logits.ndim != 2:
        raise ShapeError(
            f"log_softmax_nll_csr expects (batch, vocab) logits, got "
            f"{logits.shape}"
        )
    if bow.shape != logits.shape:
        raise ShapeError(
            f"log_softmax_nll_csr shape mismatch: logits {logits.shape} "
            f"vs bow {bow.shape}"
        )
    dtype = logits.data.dtype
    counts = bow.data.astype(dtype, copy=False)
    rows = bow.row_ids()
    cols = bow.indices
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    sums = exps.sum(axis=1)
    log_sums = np.log(sums)
    batch = logits.shape[0]
    if bow.nnz:
        log_probs_nz = shifted[rows, cols] - log_sums[rows]
        total = -float(counts @ log_probs_nz)
    else:
        total = 0.0
    out_data = np.asarray(total / max(batch, 1), dtype=dtype)
    probs = exps
    probs /= sums[:, None]
    row_totals = bow.row_sums().astype(dtype, copy=False)

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            scale = float(grad) / batch
            glogits = probs * (scale * row_totals)[:, None]
            if bow.nnz:
                # Canonical CSR: unique (row, col) pairs.
                glogits[rows, cols] -= scale * counts
            logits._accumulate(glogits)

    return Tensor._make(out_data, (logits,), backward)


def kl_normal_standard(mu: Tensor, logvar: Tensor) -> Tensor:
    """Fused mean KL( N(mu, exp(logvar)) || N(0, I) ) over the batch.

    Closed form ``0.5 * sum(exp(logvar) + mu^2 - 1 - logvar)`` with the
    analytic backward ``dmu = (g/B) * mu``, ``dlogvar = (g/B) * 0.5 *
    (exp(logvar) - 1)``.
    """
    mu = as_tensor(mu)
    logvar = as_tensor(logvar)
    if mu.ndim != 2 or logvar.shape != mu.shape:
        raise ShapeError(
            f"kl_normal_standard expects matching (batch, dim) inputs, got "
            f"{mu.shape} and {logvar.shape}"
        )
    ev = np.exp(logvar.data)
    per_doc = 0.5 * (ev + mu.data * mu.data - 1.0 - logvar.data).sum(axis=1)
    out_data = np.asarray(per_doc.mean())
    batch = mu.shape[0]

    def backward(grad: np.ndarray) -> None:
        scale = float(grad) / batch
        if mu.requires_grad:
            mu._accumulate(scale * mu.data)
        if logvar.requires_grad:
            logvar._accumulate((0.5 * scale) * (ev - 1.0))

    return Tensor._make(out_data, (mu, logvar), backward)


# ----------------------------------------------------------------------
# batch normalisation
# ----------------------------------------------------------------------
def batch_norm(
    x: Tensor,
    running_mean: np.ndarray | None = None,
    running_var: np.ndarray | None = None,
    weight: Tensor | None = None,
    bias: Tensor | None = None,
    training: bool = True,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Fused batch normalisation over ``(batch, features)`` inputs.

    Training mode normalises by the batch statistics (differentiating
    through them, i.e. the full batch-norm backward) and, when running
    statistic arrays are supplied, updates them **in place** with the
    standard EMA (unbiased variance), like ``torch.nn.functional
    .batch_norm``.  Eval mode normalises by the running statistics as
    constants.  Replaces the mean / centering / variance / sqrt / divide /
    scale / shift chain (9+ nodes) with one node.
    """
    x = as_tensor(x)
    if x.ndim != 2:
        raise ShapeError(f"batch_norm expects a (batch, features) input, got {x.shape}")
    dtype = x.data.dtype
    n = x.shape[0]
    if training:
        mean = x.data.mean(axis=0)
        centered = x.data - mean
        var = np.einsum("bf,bf->f", centered, centered) / n
        if running_mean is not None:
            running_mean *= 1.0 - momentum
            running_mean += momentum * mean
        if running_var is not None:
            running_var *= 1.0 - momentum
            running_var += (momentum * n / max(n - 1, 1)) * var
    else:
        if running_mean is None or running_var is None:
            raise ShapeError("batch_norm in eval mode requires running statistics")
        mean = running_mean.astype(dtype, copy=False)
        var = running_var.astype(dtype, copy=False)
        centered = x.data - mean
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = centered
    xhat *= inv_std  # in place: `centered` is a fresh array
    out_data = xhat * weight.data if weight is not None else xhat.copy()
    if bias is not None:
        out_data += bias.data

    parents = tuple(p for p in (x, weight, bias) if p is not None)

    def backward(grad: np.ndarray) -> None:
        gxhat = grad * weight.data if weight is not None else grad
        if x.requires_grad:
            if training:
                sum_g = gxhat.sum(axis=0)
                sum_gx = np.einsum("bf,bf->f", gxhat, xhat)
                x._accumulate(
                    (inv_std / n) * (n * gxhat - sum_g - xhat * sum_gx)
                )
            else:
                x._accumulate(gxhat * inv_std)
        if weight is not None and weight.requires_grad:
            weight._accumulate(np.einsum("bf,bf->f", grad, xhat))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=0))

    return Tensor._make(out_data, parents, backward)

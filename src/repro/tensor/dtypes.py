"""Floating-point dtype policy for the autodiff engine.

Historically every :class:`~repro.tensor.tensor.Tensor` was pinned to
float64.  That is still the default (the finite-difference gradient checks
need the precision), but training-scale runs can opt into float32, which
halves memory traffic through the O(K·V²) contrastive matmuls and lets the
BLAS kernels run in single precision.

The policy is a process-wide default, settable three ways:

- the ``REPRO_DTYPE`` environment variable (``float32``/``float64``),
  read once at import time;
- :func:`set_default_dtype` for a persistent switch;
- the :func:`default_dtype` context manager for a scoped switch (used by
  :func:`repro.tensor.gradcheck.gradcheck`, which always pins float64).

Only the *default construction* dtype changes.  Gradients always adopt the
dtype of the tensor they flow into, so a graph stays homogeneous in
whatever precision its leaves were created with.

This module also hosts the **sparse dispatch policy**
(:class:`SparsePolicy`), the second axis of numeric configuration: whether
bag-of-words batches travel through the pipeline as dense arrays or as
:class:`~repro.tensor.sparse.CSRBatch` views feeding the sparse fused
kernels.  Like the dtype policy it is thread-local with a process-wide
seed, settable via ``REPRO_SPARSE`` / ``REPRO_SPARSE_THRESHOLD``
environment variables, :func:`set_sparse_policy`, or the scoped
:func:`sparse_policy` context manager.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
from typing import Iterator

import numpy as np

from repro.errors import ConfigError

#: Accepted spellings for :func:`resolve_dtype`.
SUPPORTED_DTYPES: dict[str, np.dtype] = {
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}

_ENV_VAR = "REPRO_DTYPE"

# Thread-local so parallel test workers / guard threads cannot race a
# scoped override; the process default seeds each thread's view.
_STATE = threading.local()
_PROCESS_DEFAULT = np.dtype(np.float64)


def resolve_dtype(dtype: str | np.dtype | type | None) -> np.dtype:
    """Normalise ``dtype`` to a supported ``np.dtype``.

    Accepts ``"float32"``/``"float64"`` strings (case-insensitive),
    ``np.float32``/``np.float64`` and their ``np.dtype`` forms, or ``None``
    for the current default.  Anything else raises
    :class:`~repro.errors.ConfigError` — a typo in ``REPRO_DTYPE`` should
    fail loudly, not silently train in the wrong precision.
    """
    if dtype is None:
        return get_default_dtype()
    if isinstance(dtype, str):
        key = dtype.strip().lower()
        if key in SUPPORTED_DTYPES:
            return SUPPORTED_DTYPES[key]
        raise ConfigError(
            f"unsupported dtype {dtype!r}; expected one of "
            f"{sorted(SUPPORTED_DTYPES)}"
        )
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:  # e.g. dtype=object()
        raise ConfigError(f"unsupported dtype {dtype!r}") from exc
    if resolved.name in SUPPORTED_DTYPES:
        return SUPPORTED_DTYPES[resolved.name]
    raise ConfigError(
        f"unsupported dtype {resolved.name!r}; expected one of "
        f"{sorted(SUPPORTED_DTYPES)}"
    )


def get_default_dtype() -> np.dtype:
    """The dtype new tensors are created with (absent an explicit cast)."""
    return getattr(_STATE, "dtype", _PROCESS_DEFAULT)


def set_default_dtype(dtype: str | np.dtype | type) -> np.dtype:
    """Set the process-wide default construction dtype; returns it."""
    global _PROCESS_DEFAULT
    resolved = resolve_dtype(dtype)
    _PROCESS_DEFAULT = resolved
    _STATE.dtype = resolved
    return resolved


@contextlib.contextmanager
def default_dtype(dtype: str | np.dtype | type) -> Iterator[np.dtype]:
    """Scoped override of the default dtype (restores the previous one)."""
    previous = get_default_dtype()
    _STATE.dtype = resolve_dtype(dtype)
    try:
        yield _STATE.dtype
    finally:
        _STATE.dtype = previous


def _init_from_env() -> None:
    value = os.environ.get(_ENV_VAR)
    if value:
        set_default_dtype(value)


_init_from_env()


# ---------------------------------------------------------------------------
# Sparse dispatch policy
# ---------------------------------------------------------------------------

_SPARSE_ENV_VAR = "REPRO_SPARSE"
_SPARSE_THRESHOLD_ENV_VAR = "REPRO_SPARSE_THRESHOLD"

#: Default density cutoff for auto-dispatch.  Below it the CSR kernels win
#: (the encoder linear drops from O(B·V·H) to O(nnz·H)); above it the
#: gather/scatter overhead erases the saving and dense BLAS is faster.
#: Picked from the ``repro bench --suite sparse`` crossover measurements.
DEFAULT_SPARSE_THRESHOLD = 0.25

_TRUE_SPELLINGS = frozenset({"1", "true", "yes", "on"})
_FALSE_SPELLINGS = frozenset({"0", "false", "no", "off"})


@dataclasses.dataclass(frozen=True)
class SparsePolicy:
    """Whether (and when) batches take the CSR fast path.

    Attributes
    ----------
    enabled:
        Master switch.  ``False`` forces the dense reference path
        everywhere (the ``REPRO_SPARSE=0`` escape hatch).
    density_threshold:
        Auto-dispatch cutoff in ``[0, 1]``: a corpus or batch whose
        nonzero fraction is *strictly below* this value goes sparse;
        denser data stays on the dense path.
    """

    enabled: bool = True
    density_threshold: float = DEFAULT_SPARSE_THRESHOLD

    def __post_init__(self) -> None:
        if not 0.0 <= self.density_threshold <= 1.0:
            raise ConfigError(
                f"density_threshold must be in [0, 1], got "
                f"{self.density_threshold!r}"
            )

    def use_sparse(self, density: float) -> bool:
        """True when data of the given density should take the CSR path."""
        return self.enabled and density < self.density_threshold


_SPARSE_STATE = threading.local()
_PROCESS_SPARSE_POLICY = SparsePolicy()


def get_sparse_policy() -> SparsePolicy:
    """The active sparse dispatch policy for this thread."""
    return getattr(_SPARSE_STATE, "policy", _PROCESS_SPARSE_POLICY)


def set_sparse_policy(policy: SparsePolicy) -> SparsePolicy:
    """Set the process-wide sparse policy; returns it."""
    global _PROCESS_SPARSE_POLICY
    if not isinstance(policy, SparsePolicy):
        raise ConfigError(
            f"expected a SparsePolicy, got {type(policy).__name__}"
        )
    _PROCESS_SPARSE_POLICY = policy
    _SPARSE_STATE.policy = policy
    return policy


@contextlib.contextmanager
def sparse_policy(
    enabled: bool | None = None,
    density_threshold: float | None = None,
) -> Iterator[SparsePolicy]:
    """Scoped override of the sparse policy (restores the previous one).

    Unspecified fields inherit from the currently active policy, so
    ``with sparse_policy(enabled=False):`` flips only the master switch.
    """
    previous = get_sparse_policy()
    _SPARSE_STATE.policy = SparsePolicy(
        enabled=previous.enabled if enabled is None else bool(enabled),
        density_threshold=(
            previous.density_threshold
            if density_threshold is None
            else float(density_threshold)
        ),
    )
    try:
        yield _SPARSE_STATE.policy
    finally:
        _SPARSE_STATE.policy = previous


def _parse_bool_env(name: str, raw: str) -> bool:
    value = raw.strip().lower()
    if value in _TRUE_SPELLINGS:
        return True
    if value in _FALSE_SPELLINGS:
        return False
    raise ConfigError(
        f"{name}={raw!r} is not a recognised boolean "
        f"(use one of {sorted(_TRUE_SPELLINGS | _FALSE_SPELLINGS)})"
    )


def _init_sparse_from_env() -> None:
    # Always start from the built-in defaults, not the current policy:
    # re-initialising after an env var was *removed* must fall back to
    # the default, exactly as a fresh import would.
    defaults = SparsePolicy()
    enabled = defaults.enabled
    threshold = defaults.density_threshold
    raw_enabled = os.environ.get(_SPARSE_ENV_VAR)
    if raw_enabled is not None and raw_enabled.strip():
        enabled = _parse_bool_env(_SPARSE_ENV_VAR, raw_enabled)
    raw_threshold = os.environ.get(_SPARSE_THRESHOLD_ENV_VAR)
    if raw_threshold is not None and raw_threshold.strip():
        try:
            threshold = float(raw_threshold)
        except ValueError as exc:
            raise ConfigError(
                f"{_SPARSE_THRESHOLD_ENV_VAR}={raw_threshold!r} is not a float"
            ) from exc
    set_sparse_policy(
        SparsePolicy(enabled=enabled, density_threshold=threshold)
    )


_init_sparse_from_env()

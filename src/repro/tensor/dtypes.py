"""Floating-point dtype policy for the autodiff engine.

Historically every :class:`~repro.tensor.tensor.Tensor` was pinned to
float64.  That is still the default (the finite-difference gradient checks
need the precision), but training-scale runs can opt into float32, which
halves memory traffic through the O(K·V²) contrastive matmuls and lets the
BLAS kernels run in single precision.

The policy is a process-wide default, settable three ways:

- the ``REPRO_DTYPE`` environment variable (``float32``/``float64``),
  read once at import time;
- :func:`set_default_dtype` for a persistent switch;
- the :func:`default_dtype` context manager for a scoped switch (used by
  :func:`repro.tensor.gradcheck.gradcheck`, which always pins float64).

Only the *default construction* dtype changes.  Gradients always adopt the
dtype of the tensor they flow into, so a graph stays homogeneous in
whatever precision its leaves were created with.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Iterator

import numpy as np

from repro.errors import ConfigError

#: Accepted spellings for :func:`resolve_dtype`.
SUPPORTED_DTYPES: dict[str, np.dtype] = {
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}

_ENV_VAR = "REPRO_DTYPE"

# Thread-local so parallel test workers / guard threads cannot race a
# scoped override; the process default seeds each thread's view.
_STATE = threading.local()
_PROCESS_DEFAULT = np.dtype(np.float64)


def resolve_dtype(dtype: str | np.dtype | type | None) -> np.dtype:
    """Normalise ``dtype`` to a supported ``np.dtype``.

    Accepts ``"float32"``/``"float64"`` strings (case-insensitive),
    ``np.float32``/``np.float64`` and their ``np.dtype`` forms, or ``None``
    for the current default.  Anything else raises
    :class:`~repro.errors.ConfigError` — a typo in ``REPRO_DTYPE`` should
    fail loudly, not silently train in the wrong precision.
    """
    if dtype is None:
        return get_default_dtype()
    if isinstance(dtype, str):
        key = dtype.strip().lower()
        if key in SUPPORTED_DTYPES:
            return SUPPORTED_DTYPES[key]
        raise ConfigError(
            f"unsupported dtype {dtype!r}; expected one of "
            f"{sorted(SUPPORTED_DTYPES)}"
        )
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:  # e.g. dtype=object()
        raise ConfigError(f"unsupported dtype {dtype!r}") from exc
    if resolved.name in SUPPORTED_DTYPES:
        return SUPPORTED_DTYPES[resolved.name]
    raise ConfigError(
        f"unsupported dtype {resolved.name!r}; expected one of "
        f"{sorted(SUPPORTED_DTYPES)}"
    )


def get_default_dtype() -> np.dtype:
    """The dtype new tensors are created with (absent an explicit cast)."""
    return getattr(_STATE, "dtype", _PROCESS_DEFAULT)


def set_default_dtype(dtype: str | np.dtype | type) -> np.dtype:
    """Set the process-wide default construction dtype; returns it."""
    global _PROCESS_DEFAULT
    resolved = resolve_dtype(dtype)
    _PROCESS_DEFAULT = resolved
    _STATE.dtype = resolved
    return resolved


@contextlib.contextmanager
def default_dtype(dtype: str | np.dtype | type) -> Iterator[np.dtype]:
    """Scoped override of the default dtype (restores the previous one)."""
    previous = get_default_dtype()
    _STATE.dtype = resolve_dtype(dtype)
    try:
        yield _STATE.dtype
    finally:
        _STATE.dtype = previous


def _init_from_env() -> None:
    value = os.environ.get(_ENV_VAR)
    if value:
        set_default_dtype(value)


_init_from_env()

"""A small reverse-mode automatic-differentiation engine over numpy.

This package is the stand-in for PyTorch's autograd in this reproduction
(the execution environment provides no deep-learning framework).  It offers
a :class:`Tensor` type supporting broadcasting arithmetic, matrix products,
reductions, indexing and the transcendental functions needed by the neural
topic models in :mod:`repro.models`, together with functional helpers
(softmax, log-softmax, KL terms), fused single-node kernels for the
training hot path (:mod:`repro.tensor.fused`), a configurable default
dtype (:mod:`repro.tensor.dtypes`: float64 by default, float32 opt-in via
``REPRO_DTYPE`` / :func:`set_default_dtype`), a sparse bag-of-words fast
path (:class:`~repro.tensor.sparse.CSRBatch` constants plus a
:class:`~repro.tensor.dtypes.SparsePolicy` auto-dispatch controlled by
``REPRO_SPARSE`` / ``REPRO_SPARSE_THRESHOLD``), and a finite-difference
gradient checker used by the test-suite to certify every operator's
gradient.
"""

from repro.tensor.dtypes import (
    DEFAULT_SPARSE_THRESHOLD,
    SUPPORTED_DTYPES,
    SparsePolicy,
    default_dtype,
    get_default_dtype,
    get_sparse_policy,
    resolve_dtype,
    set_default_dtype,
    set_sparse_policy,
    sparse_policy,
)
from repro.tensor.sparse import CSRBatch, as_dense, is_sparse_batch
from repro.tensor.tensor import (
    PROFILED_MODULE_OPS,
    PROFILED_TENSOR_OPS,
    Tensor,
    as_tensor,
    is_grad_enabled,
    no_grad,
)
from repro.tensor import fused
from repro.tensor.fused import PROFILED_FUSED_OPS
from repro.tensor import functional
from repro.tensor.functional import (
    softmax,
    log_softmax,
    logsumexp,
    sigmoid,
    tanh,
    relu,
    selu,
    softplus,
    cross_entropy_with_probs,
    kl_normal_standard,
    mse,
)
from repro.tensor.gradcheck import gradcheck, numerical_gradient

__all__ = [
    "CSRBatch",
    "DEFAULT_SPARSE_THRESHOLD",
    "PROFILED_FUSED_OPS",
    "PROFILED_MODULE_OPS",
    "PROFILED_TENSOR_OPS",
    "SUPPORTED_DTYPES",
    "SparsePolicy",
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "as_tensor",
    "as_dense",
    "is_sparse_batch",
    "default_dtype",
    "get_default_dtype",
    "get_sparse_policy",
    "resolve_dtype",
    "set_default_dtype",
    "set_sparse_policy",
    "sparse_policy",
    "fused",
    "functional",
    "softmax",
    "log_softmax",
    "logsumexp",
    "sigmoid",
    "tanh",
    "relu",
    "selu",
    "softplus",
    "cross_entropy_with_probs",
    "kl_normal_standard",
    "mse",
    "gradcheck",
    "numerical_gradient",
]

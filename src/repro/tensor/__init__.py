"""A small reverse-mode automatic-differentiation engine over numpy.

This package is the stand-in for PyTorch's autograd in this reproduction
(the execution environment provides no deep-learning framework).  It offers
a :class:`Tensor` type supporting broadcasting arithmetic, matrix products,
reductions, indexing and the transcendental functions needed by the neural
topic models in :mod:`repro.models`, together with functional helpers
(softmax, log-softmax, KL terms) and a finite-difference gradient checker
used by the test-suite to certify every operator's gradient.
"""

from repro.tensor.tensor import (
    PROFILED_MODULE_OPS,
    PROFILED_TENSOR_OPS,
    Tensor,
    as_tensor,
    is_grad_enabled,
    no_grad,
)
from repro.tensor import functional
from repro.tensor.functional import (
    softmax,
    log_softmax,
    logsumexp,
    sigmoid,
    tanh,
    relu,
    selu,
    softplus,
    cross_entropy_with_probs,
    kl_normal_standard,
    mse,
)
from repro.tensor.gradcheck import gradcheck, numerical_gradient

__all__ = [
    "PROFILED_MODULE_OPS",
    "PROFILED_TENSOR_OPS",
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "as_tensor",
    "functional",
    "softmax",
    "log_softmax",
    "logsumexp",
    "sigmoid",
    "tanh",
    "relu",
    "selu",
    "softplus",
    "cross_entropy_with_probs",
    "kl_normal_standard",
    "mse",
    "gradcheck",
    "numerical_gradient",
]

"""CSR batch views: the sparse bag-of-words fast-path container.

Real bag-of-words corpora are overwhelmingly zeros (>95% on the paper's
datasets), yet a dense ``(batch, vocab)`` count matrix pays O(batch·vocab)
memory traffic per training step.  :class:`CSRBatch` is the compressed
sparse row representation the data layer hands to the tensor layer
instead: three flat arrays (``data``/``indices``/``indptr``) describing
only the nonzero counts.

Design points:

* **Constant, not differentiated.**  A ``CSRBatch`` is a *constant*
  operand (bag-of-words counts are inputs, never parameters), so it is
  deliberately not a :class:`~repro.tensor.tensor.Tensor` subclass.  The
  sparse×dense fused kernels in :mod:`repro.tensor.fused`
  (``linear_csr``, ``nll_from_probs_csr``, ``log_softmax_nll_csr``)
  accept it directly and differentiate only their dense tensor operands.
* **Zero-copy where the access pattern allows.**  :meth:`slice_rows`
  (contiguous ranges — the ``transform()`` path) returns views sharing
  the parent's ``data``/``indices`` buffers.  :meth:`take_rows`
  (shuffled mini-batches) gathers, but copies only the nonzeros —
  ~20-50× less than a dense fancy-index at real corpus densities.
* **Sparsity-aware casting.**  :meth:`astype` casts only the ``data``
  array (nnz elements) and shares ``indices``/``indptr``, so a
  per-dtype cast cache over a CSR corpus costs O(nnz), not O(D·V).
* **Graceful densification.**  ``__array__`` lets ``np.asarray(batch)``
  produce the dense matrix, so dense-only consumers (the OT models'
  reconstruction terms, CLNTM's tf-idf augmentation) keep working
  unchanged when a sparse batch reaches them.

scipy is used for the two matmuls (its C CSR kernels); everything else is
plain numpy over the three arrays.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _scipy_sparse

from repro.errors import ShapeError

#: Column-block width of :func:`transpose_contiguous`.  512 float32
#: columns keep each block inside L2 on common CPUs; measured ~4× faster
#: than numpy's strided whole-matrix transpose copy at the
#: ``(vocab, hidden)`` shapes the sparse kernels produce.
_TRANSPOSE_BLOCK = 512


def transpose_contiguous(a: np.ndarray) -> np.ndarray:
    """C-contiguous copy of ``a.T``, built with cache-friendly blocking.

    ``np.ascontiguousarray(a.T)`` walks one operand with a stride of the
    full row length, which thrashes the cache once the matrix outgrows it
    (a ``(20000, 256)`` float32 transpose costs ~39 ms that way, ~9 ms
    blocked).  Both sparse×dense kernel directions need exactly this
    operation: the forward to feed scipy a contiguous ``weight.T``, the
    backward to hand the autodiff engine a ``(out, in)``-layout weight
    gradient.
    """
    rows, cols = a.shape
    out = np.empty((cols, rows), a.dtype)
    if rows >= cols:
        for i in range(0, rows, _TRANSPOSE_BLOCK):
            out[:, i : i + _TRANSPOSE_BLOCK] = a[i : i + _TRANSPOSE_BLOCK].T
    else:
        for i in range(0, cols, _TRANSPOSE_BLOCK):
            out[i : i + _TRANSPOSE_BLOCK] = a[:, i : i + _TRANSPOSE_BLOCK].T
    return out


def _as_c_contiguous(a: np.ndarray) -> np.ndarray:
    """C-contiguous view or copy of a 2-D array (blocked for transposes)."""
    if a.flags.c_contiguous:
        return a
    if a.T.flags.c_contiguous:  # a transpose view: block the copy
        return transpose_contiguous(a.T)
    return np.ascontiguousarray(a)


class CSRBatch:
    """A ``(rows, cols)`` count matrix in compressed sparse row form.

    Parameters
    ----------
    data:
        Nonzero values, length ``nnz``, in row-major order.
    indices:
        Column index of each nonzero, length ``nnz``.  Within a row,
        indices must be sorted and unique (canonical CSR) — corpus
        bag-of-words construction guarantees this.
    indptr:
        Row boundaries, length ``rows + 1``: row ``i``'s nonzeros live in
        ``data[indptr[i]:indptr[i+1]]``.
    shape:
        ``(rows, cols)``.
    """

    __slots__ = ("data", "indices", "indptr", "shape", "_row_ids")

    def __init__(self, data, indices, indptr, shape: tuple[int, int]):
        self.data = np.asarray(data)
        self.indices = np.asarray(indices)
        self.indptr = np.asarray(indptr)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.shape != (self.shape[0] + 1,):
            raise ShapeError(
                f"indptr length {self.indptr.shape[0]} does not match "
                f"{self.shape[0]} rows"
            )
        if self.data.shape != self.indices.shape:
            raise ShapeError(
                f"data length {self.data.shape} != indices length "
                f"{self.indices.shape}"
            )
        self._row_ids: np.ndarray | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_scipy(cls, matrix, dtype=None) -> "CSRBatch":
        """Wrap a ``scipy.sparse`` matrix (converted to canonical CSR)."""
        csr = matrix.tocsr()
        csr.sum_duplicates()
        data = csr.data if dtype is None else csr.data.astype(dtype, copy=False)
        return cls(data, csr.indices, csr.indptr, csr.shape)

    @classmethod
    def from_dense(cls, array, dtype=None) -> "CSRBatch":
        """Build from a dense 2-D array (test/interop convenience)."""
        arr = np.asarray(array)
        if arr.ndim != 2:
            raise ShapeError(f"CSRBatch.from_dense expects 2-D, got {arr.shape}")
        return cls.from_scipy(_scipy_sparse.csr_matrix(arr), dtype=dtype)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def ndim(self) -> int:
        return 2

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    @property
    def density(self) -> float:
        """Fraction of stored entries: ``nnz / (rows * cols)``."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def __len__(self) -> int:
        return self.shape[0]

    def __repr__(self) -> str:
        return (
            f"CSRBatch(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.4f}, dtype={self.dtype})"
        )

    def row_ids(self) -> np.ndarray:
        """Row index of every nonzero, length ``nnz`` (cached)."""
        if self._row_ids is None:
            counts = np.diff(self.indptr)
            self._row_ids = np.repeat(
                np.arange(self.shape[0], dtype=np.intp), counts
            )
        return self._row_ids

    def row_nnz(self) -> np.ndarray:
        """Number of nonzeros per row, shape ``(rows,)``."""
        return np.diff(self.indptr)

    def row_sums(self) -> np.ndarray:
        """Per-row sum of the stored values, shape ``(rows,)``."""
        sums = np.zeros(self.shape[0], dtype=self.data.dtype)
        if self.nnz:
            np.add.at(sums, self.row_ids(), self.data)
        return sums

    # ------------------------------------------------------------------
    # dtype / densification
    # ------------------------------------------------------------------
    def astype(self, dtype, copy: bool = False) -> "CSRBatch":
        """Cast ``data`` only (O(nnz)); ``indices``/``indptr`` are shared."""
        resolved = np.dtype(dtype)
        if resolved == self.data.dtype and not copy:
            return self
        return CSRBatch(
            self.data.astype(resolved, copy=copy),
            self.indices,
            self.indptr,
            self.shape,
        )

    def copy(self) -> "CSRBatch":
        """Deep copy (ndarray-parity: batches behave array-like)."""
        return CSRBatch(
            self.data.copy(),
            self.indices.copy(),
            self.indptr.copy(),
            self.shape,
        )

    def toarray(self, dtype=None) -> np.ndarray:
        """Materialise the dense ``(rows, cols)`` matrix.

        Building directly in the target ``dtype`` scatters the nnz values
        into a zeroed array — no intermediate full-size copy in another
        precision.
        """
        out = np.zeros(self.shape, dtype=dtype or self.data.dtype)
        if self.nnz:
            out[self.row_ids(), self.indices] = self.data
        return out

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        # np.asarray(batch) fallback for dense-only consumers.
        return self.toarray(dtype=dtype)

    # ------------------------------------------------------------------
    # row selection
    # ------------------------------------------------------------------
    def slice_rows(self, start: int, stop: int) -> "CSRBatch":
        """Contiguous row range as a **zero-copy** view.

        ``data`` and ``indices`` are numpy views into the parent buffers;
        only the small re-based ``indptr`` (``stop - start + 1`` ints) is
        fresh.  This is the batch access pattern of ``transform()``.
        """
        start, stop = max(start, 0), min(stop, self.shape[0])
        lo, hi = self.indptr[start], self.indptr[stop]
        return CSRBatch(
            self.data[lo:hi],
            self.indices[lo:hi],
            self.indptr[start : stop + 1] - lo,
            (stop - start, self.shape[1]),
        )

    def take_rows(self, row_indices) -> "CSRBatch":
        """Gather arbitrary rows (the shuffled mini-batch pattern).

        Copies only the selected nonzeros — O(batch nnz), never
        O(batch·cols).
        """
        idx = np.asarray(row_indices, dtype=np.intp)
        counts = np.diff(self.indptr)[idx]
        indptr = np.zeros(idx.shape[0] + 1, dtype=self.indptr.dtype)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        # Flat positions of the gathered nonzeros in the parent arrays.
        positions = np.repeat(
            self.indptr[idx] - indptr[:-1], counts
        ) + np.arange(total, dtype=np.intp)
        return CSRBatch(
            self.data[positions],
            self.indices[positions],
            indptr,
            (idx.shape[0], self.shape[1]),
        )

    # ------------------------------------------------------------------
    # row-wise arithmetic (returns new batches sharing structure)
    # ------------------------------------------------------------------
    def scale_rows(self, factors: np.ndarray) -> "CSRBatch":
        """Multiply each row by a scalar; shares ``indices``/``indptr``."""
        factors = np.asarray(factors, dtype=self.data.dtype).reshape(-1)
        if factors.shape[0] != self.shape[0]:
            raise ShapeError(
                f"scale_rows expects {self.shape[0]} factors, got "
                f"{factors.shape[0]}"
            )
        return CSRBatch(
            self.data * factors[self.row_ids()],
            self.indices,
            self.indptr,
            self.shape,
        )

    def row_normalized(self, min_total: float = 1.0) -> "CSRBatch":
        """Rows divided by ``max(row_sum, min_total)``.

        The sparse twin of the encoder's dense ``bow / total`` input
        normalisation (zeros stay zero either way).  Uses true division —
        not a reciprocal multiply — so each stored value matches the dense
        ``bow / total`` result bit for bit.
        """
        totals = np.maximum(self.row_sums(), min_total)
        return CSRBatch(
            self.data / totals[self.row_ids()],
            self.indices,
            self.indptr,
            self.shape,
        )

    # ------------------------------------------------------------------
    # matmuls (scipy's C kernels; forward/backward of linear_csr)
    # ------------------------------------------------------------------
    def to_scipy(self) -> _scipy_sparse.csr_matrix:
        """A ``scipy.sparse.csr_matrix`` sharing this batch's buffers."""
        return _scipy_sparse.csr_matrix(
            (self.data, self.indices, self.indptr),
            shape=self.shape,
            copy=False,
        )

    def matmul_dense(self, dense: np.ndarray) -> np.ndarray:
        """``self @ dense`` — the sparse×dense forward product."""
        return self.to_scipy() @ _as_c_contiguous(dense)

    def t_matmul_dense(self, dense: np.ndarray) -> np.ndarray:
        """``self.T @ dense`` — the weight-gradient product."""
        return self.to_scipy().T @ _as_c_contiguous(dense)


def is_sparse_batch(value) -> bool:
    """True when ``value`` is a :class:`CSRBatch` (the sparse fast path)."""
    return isinstance(value, CSRBatch)


def as_dense(value, dtype=None) -> np.ndarray:
    """Densify a batch operand: CSRBatch → ndarray, ndarray passes through."""
    if isinstance(value, CSRBatch):
        return value.toarray(dtype=dtype)
    arr = np.asarray(value)
    return arr if dtype is None else arr.astype(dtype, copy=False)

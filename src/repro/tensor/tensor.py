"""The :class:`Tensor` type: a numpy array with reverse-mode autodiff.

The design follows the classic tape-based approach.  Every operation that
consumes tensors produces a new tensor holding references to its parents and
a closure that, given the gradient of the loss with respect to the output,
accumulates gradients into the parents.  Calling :meth:`Tensor.backward`
topologically sorts the graph and runs the closures in reverse order.

Data is floating point, governed by the dtype policy in
:mod:`repro.tensor.dtypes`: float arrays keep their precision, everything
else (lists, scalars, integer arrays) is created in the current default
dtype (float64 unless overridden — the finite-difference gradient checks
need that precision; float32 halves memory traffic for training-scale
runs).  Gradients always adopt the dtype of the tensor they flow into.

Profiling: :data:`PROFILED_TENSOR_OPS` / :data:`PROFILED_MODULE_OPS` name
the operations that :func:`repro.telemetry.ophooks.profile_ops` wraps with
timing/counting shims while active.  The default path is untouched — the
hooks swap the class/module attributes in and back out, so disabled runs
execute the original unwrapped code.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import GradientError, ShapeError
from repro.tensor.dtypes import get_default_dtype, resolve_dtype

_GRAD_STATE = threading.local()

_FLOAT_DTYPES = frozenset((np.dtype(np.float32), np.dtype(np.float64)))

#: Tensor methods eligible for op-level profiling (dunder names are
#: reported without their underscores, e.g. ``__matmul__`` -> ``matmul``).
PROFILED_TENSOR_OPS: tuple[str, ...] = (
    "__add__",
    "__neg__",
    "__sub__",
    "__mul__",
    "__truediv__",
    "__pow__",
    "__matmul__",
    "__getitem__",
    "exp",
    "log",
    "sqrt",
    "abs",
    "clip",
    "maximum",
    "sum",
    "mean",
    "max",
    "min",
    "reshape",
    "transpose",
    "expand_dims",
    "squeeze",
)

#: Module-level graph constructors eligible for op-level profiling.
PROFILED_MODULE_OPS: tuple[str, ...] = ("concatenate", "stack", "where")


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (like ``torch.no_grad``)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions.

    Numpy broadcasting may both prepend dimensions and stretch size-1 axes;
    the adjoint of broadcasting is summation over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (Tensor, ndarray, or scalar) to a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def _operand(value, like: "Tensor") -> "Tensor":
    """Coerce a binary-op operand, treating Python scalars as *weak*.

    A bare ``int``/``float``/``bool`` adopts the dtype of the tensor it
    combines with (``x * 0.5`` never upcasts a float32 graph), mirroring
    NEP-50 semantics.  Numpy scalars and arrays stay strong and go
    through the normal :func:`as_tensor` construction rules.
    """
    if isinstance(value, Tensor):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, np.generic):
        return Tensor(np.asarray(value, dtype=like.data.dtype))
    return as_tensor(value)


class Tensor:
    """A floating-point numpy array that records the operations applied to it.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  float32/float64 arrays keep their
        dtype; everything else is cast to the current default dtype (see
        :mod:`repro.tensor.dtypes`).
    requires_grad:
        If True, :meth:`backward` will populate :attr:`grad` for this tensor.
    dtype:
        Explicit dtype override (``"float32"``/``"float64"``/numpy forms).
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    __array_priority__ = 100.0  # make numpy defer to our reflected operators

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        name: str | None = None,
        dtype=None,
    ):
        arr = np.asarray(data)
        if dtype is not None:
            arr = arr.astype(resolve_dtype(dtype), copy=False)
        elif not (
            isinstance(data, (np.ndarray, np.generic)) and arr.dtype in _FLOAT_DTYPES
        ):
            # Lists, Python scalars and non-float arrays take the default
            # dtype; float numpy arrays AND numpy scalars (reduction
            # outputs like ``arr.sum()``) keep their precision.
            arr = arr.astype(get_default_dtype(), copy=False)
        self.data = arr
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy; do not mutate)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the autodiff graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build an output tensor, wiring the tape only when grad is needed."""
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's ``.grad`` slot."""
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults to
            1.0, which requires this tensor to be a scalar.
        """
        if not self.requires_grad:
            raise GradientError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without an explicit gradient requires a "
                    f"scalar output, got shape {self.data.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        # Clear stale gradients on interior nodes so a repeated backward()
        # re-derives this pass's contribution from scratch; leaf gradients
        # keep accumulating across passes (the optimizer-facing contract).
        for node in order:
            if node._backward is not None:
                node.grad = None

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _operand(other, self)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = _operand(other, self)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return _operand(other, self).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = _operand(other, self)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _operand(other, self)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return _operand(other, self).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        exponent = float(exponent)
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        if self.ndim < 1 or other.ndim < 1:
            raise ShapeError("matmul requires at least 1-D operands")
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # inner product -> scalar
                if self.requires_grad:
                    self._accumulate(grad * b)
                if other.requires_grad:
                    other._accumulate(grad * a)
                return
            # Promote vectors to matrices so one rule covers every case.
            ga = grad
            a2 = a[None, :] if a.ndim == 1 else a
            b2 = b[:, None] if b.ndim == 1 else b
            g2 = ga
            if a.ndim == 1:
                g2 = np.expand_dims(g2, -2)
            if b.ndim == 1:
                g2 = np.expand_dims(g2, -1)
            if self.requires_grad:
                da = g2 @ np.swapaxes(b2, -1, -2)
                if a.ndim == 1:
                    da = da.reshape(-1, a.shape[0]).sum(axis=0)
                self._accumulate(_unbroadcast(da, a.shape))
            if other.requires_grad:
                db = np.swapaxes(a2, -1, -2) @ g2
                if b.ndim == 1:
                    db = db.reshape(b.shape[0], -1).sum(axis=1)
                other._accumulate(_unbroadcast(db, b.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rmatmul__(self, other) -> "Tensor":
        return as_tensor(other).__matmul__(self)

    # ------------------------------------------------------------------
    # comparisons (non-differentiable; return plain numpy bool arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # transcendental element-wise ops
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float | None = None, high: float | None = None) -> "Tensor":
        """Clamp values; gradient is passed through only inside the window."""
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                mask = np.ones_like(self.data)
                if low is not None:
                    mask = mask * (self.data >= low)
                if high is not None:
                    mask = mask * (self.data <= high)
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def maximum(self, other) -> "Tensor":
        """Element-wise maximum; ties send the full gradient to ``self``."""
        other = as_tensor(other)
        out_data = np.maximum(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            choose_self = self.data >= other.data
            if self.requires_grad:
                self._accumulate(grad * choose_self)
            if other.requires_grad:
                other._accumulate(grad * ~choose_self)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly across ties so the op stays well-defined.
            mask = mask / mask.sum(axis=axis, keepdims=True)
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes_tuple: tuple[int, ...] | None = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_tuple = tuple(axes[0])
        else:
            axes_tuple = tuple(axes)
        out_data = self.data.transpose(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axes_tuple is None:
                self._accumulate(grad.transpose())
            else:
                inverse = np.argsort(axes_tuple)
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data.astype(np.intp)
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.expand_dims(grad, axis))

        return Tensor._make(out_data, (self,), backward)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate`` over a sequence of tensors."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack`` over a sequence of same-shape tensors."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for tensor, g in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(g)

    return Tensor._make(out_data, tensors, backward)


def where(condition: np.ndarray, a, b) -> Tensor:
    """Differentiable element selection: ``condition ? a : b``.

    ``condition`` is a plain boolean array (not differentiated).
    """
    a = as_tensor(a)
    b = as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * condition)
        if b.requires_grad:
            b._accumulate(grad * ~condition)

    return Tensor._make(out_data, (a, b), backward)

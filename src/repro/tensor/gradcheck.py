"""Finite-difference gradient verification for the autodiff engine.

Every operator in :mod:`repro.tensor` is certified by comparing its
analytical gradient against a central-difference estimate.  The helpers here
are also exported publicly so downstream users can gradcheck their own
composite losses (the test-suite does exactly that for the ContraTopic
regularizer).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import GradientError
from repro.tensor.dtypes import default_dtype
from repro.tensor.tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``func`` w.r.t. ``inputs[index]``.

    ``func`` must map plain numpy arrays (wrapped internally) to a scalar
    :class:`Tensor`.  All inputs are treated as constants except the one at
    ``index``, which is perturbed element by element.
    """
    base = [np.array(x, dtype=np.float64) for x in inputs]

    def evaluate() -> float:
        # Wrap in (non-grad) Tensors so operator-only lambdas work too.
        # Finite differences need float64 precision regardless of the
        # process-wide dtype policy, so pin it for the evaluation.
        with default_dtype("float64"):
            return float(func(*[Tensor(b) for b in base]).data)

    grad = np.zeros_like(base[index])
    it = np.nditer(base[index], flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = base[index][idx]
        base[index][idx] = original + epsilon
        plus = evaluate()
        base[index][idx] = original - epsilon
        minus = evaluate()
        base[index][idx] = original
        grad[idx] = (plus - minus) / (2.0 * epsilon)
        it.iternext()
    return grad


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    epsilon: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
    raise_on_failure: bool = True,
) -> bool:
    """Verify analytical gradients of ``func`` against finite differences.

    Parameters
    ----------
    func:
        Callable taking ``len(inputs)`` array-likes and returning a scalar
        :class:`Tensor`.  It is invoked with :class:`Tensor` arguments that
        require grad when computing the analytical gradients.
    inputs:
        Input arrays; a gradient is checked w.r.t. every one of them.

    Returns
    -------
    True when all gradients match within tolerance.  When
    ``raise_on_failure`` is set (the default) a mismatch raises
    :class:`~repro.errors.GradientError` with the offending input index.
    """
    arrays = [np.array(x, dtype=np.float64) for x in inputs]
    with default_dtype("float64"):  # gradcheck is always pinned to float64
        tensors = [Tensor(a, requires_grad=True) for a in arrays]
        output = func(*tensors)
        if output.size != 1:
            raise GradientError("gradcheck requires a scalar-valued function")
        output.backward()

    for i, tensor in enumerate(tensors):
        analytical = tensor.grad if tensor.grad is not None else np.zeros_like(arrays[i])
        numerical = numerical_gradient(func, arrays, i, epsilon=epsilon)
        if not np.allclose(analytical, numerical, atol=atol, rtol=rtol):
            if raise_on_failure:
                worst = float(np.max(np.abs(analytical - numerical)))
                raise GradientError(
                    f"gradient mismatch on input {i}: max abs err {worst:.3e}"
                )
            return False
    return True

"""Weight initialisation schemes.

All initializers take an explicit ``numpy.random.Generator`` so that model
construction is fully deterministic under a seed — a requirement for the
paper's three-seed evaluation protocol.

Arrays are produced in the current default dtype (see
:mod:`repro.tensor.dtypes`), so models built under a ``float32`` policy get
float32 parameters end to end.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.dtypes import get_default_dtype


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def xavier_normal(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier normal: N(0, gain^2 * 2/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, nonlinearity: str = "relu"
) -> np.ndarray:
    """He/Kaiming uniform, appropriate for ReLU-family activations."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0) if nonlinearity == "relu" else 1.0
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def normal(
    shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02
) -> np.ndarray:
    """Plain N(0, std^2) initialisation (used for embedding tables)."""
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=get_default_dtype())


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight of the given shape."""
    if len(shape) < 1:
        raise ValueError("initialisation requires at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out

"""Neural-network layers and optimizers built on :mod:`repro.tensor`.

This package plays the role of ``torch.nn`` + ``torch.optim`` for the
reproduction: a :class:`Module` tree with named parameters, the layers the
paper's models need (Linear, BatchNorm1d, Dropout, the activation zoo), and
the optimizers (Adam — the paper's choice — plus SGD and AdaGrad).
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    Linear,
    Dropout,
    BatchNorm1d,
    Sequential,
    Identity,
    Activation,
    MLP,
)
from repro.nn import init
from repro.nn.optim import Optimizer, SGD, Adam, AdaGrad, clip_grad_norm

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Dropout",
    "BatchNorm1d",
    "Sequential",
    "Identity",
    "Activation",
    "MLP",
    "init",
    "Optimizer",
    "SGD",
    "Adam",
    "AdaGrad",
    "clip_grad_norm",
]

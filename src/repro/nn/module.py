"""The :class:`Module` base class: a tree of named parameters.

Modules register two kinds of attributes automatically on assignment:
:class:`Parameter` leaves (trainable tensors) and child modules.  This gives
PyTorch-style ergonomics — ``model.parameters()`` walks the whole tree —
without any metaclass machinery.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is always trainable and owned by a module."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network components.

    Subclasses implement :meth:`forward`; instances are callable.  Assigning
    a :class:`Parameter` or another :class:`Module` to an attribute registers
    it so that :meth:`parameters` and :meth:`named_parameters` see it.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            if value.name is None:
                value.name = name
        elif isinstance(value, Module):
            self._modules[name] = value
        elif name in getattr(self, "_buffers", {}):
            self._buffers[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track a non-trainable array (e.g. BatchNorm running stats) so it
        is included in :meth:`state_dict` and restored on load."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, array)`` for every registered buffer."""
        for name, value in self._buffers.items():
            yield (f"{prefix}{name}", value)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def _set_buffer_by_path(self, dotted: str, value: np.ndarray) -> None:
        *parents, leaf = dotted.split(".")
        target: Module = self
        for part in parents:
            target = target._modules[part]
        target.register_buffer(leaf, value)

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` over the whole module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters in the tree (deduplicated)."""
        seen: set[int] = set()
        result: list[Parameter] = []
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                result.append(param)
        return result

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects Dropout / BatchNorm)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    _BUFFER_PREFIX = "buffer::"

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot parameters and buffers as plain arrays (copies).

        Buffer entries are prefixed with ``buffer::`` to keep the two
        namespaces distinct in serialized checkpoints.
        """
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, value in self.named_buffers():
            state[f"{self._BUFFER_PREFIX}{name}"] = np.array(value, copy=True)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load values produced by :meth:`state_dict`; shapes must match.

        Missing buffer entries are tolerated (older checkpoints); missing
        or unexpected *parameters* are errors.
        """
        param_state = {
            k: v for k, v in state.items() if not k.startswith(self._BUFFER_PREFIX)
        }
        own = dict(self.named_parameters())
        missing = set(own) - set(param_state)
        unexpected = set(param_state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            # Adopt the parameter's own dtype so a float32 model restored
            # from a float64 checkpoint (or vice versa) stays homogeneous.
            value = np.asarray(param_state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()
        own_buffers = dict(self.named_buffers())
        for key, value in state.items():
            if not key.startswith(self._BUFFER_PREFIX):
                continue
            name = key[len(self._BUFFER_PREFIX):]
            if name not in own_buffers:
                raise KeyError(f"unexpected buffer {name!r} in state dict")
            self._set_buffer_by_path(name, np.array(value, copy=True))

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

"""First-order optimizers over :class:`~repro.nn.module.Parameter` lists.

Adam follows Kingma & Ba (2015) with bias correction, matching the paper's
training setup (Adam, lr = 5e-4).  SGD (with optional momentum and weight
decay) and AdaGrad (used by the mini-GloVe trainer) round out the set.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


def _pack_slot(
    state: dict[str, np.ndarray], name: str, arrays: Sequence[np.ndarray]
) -> None:
    """Store per-parameter slot arrays under ``name.<index>`` keys."""
    for i, arr in enumerate(arrays):
        state[f"{name}.{i}"] = np.array(arr, copy=True)


def _unpack_slot(
    state: dict[str, np.ndarray], name: str, parameters: Sequence[Parameter]
) -> list[np.ndarray]:
    """Read back a slot packed by :func:`_pack_slot`; validate shapes."""
    arrays: list[np.ndarray] = []
    for i, p in enumerate(parameters):
        key = f"{name}.{i}"
        if key not in state:
            raise ConfigError(f"optimizer state is missing {key!r}")
        # Slots adopt the parameter's dtype so float32 training resumed
        # from a float64 checkpoint (or vice versa) keeps its precision.
        arr = np.asarray(state[key], dtype=p.data.dtype)
        if arr.shape != p.data.shape:
            raise ConfigError(
                f"optimizer state shape mismatch for {key!r}: "
                f"{arr.shape} vs parameter {p.data.shape}"
            )
        arrays.append(arr.copy())
    return arrays


class Optimizer:
    """Base class: stores parameters, provides ``zero_grad``, counts steps.

    ``step_count`` is the number of completed :meth:`step` calls — free
    telemetry for throughput reports (updates/sec, updates/epoch).

    :meth:`state_dict` / :meth:`load_state_dict` snapshot and restore the
    full update state (learning rate, step counter, per-parameter slots
    such as Adam's moments) as plain arrays, so checkpoints can resume
    training bitwise-consistently (:mod:`repro.io`,
    :mod:`repro.training.resilience`).
    """

    def __init__(self, parameters: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ConfigError("optimizer received no parameters")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _save_slots(self, state: dict[str, np.ndarray]) -> None:
        """Subclass hook: add per-parameter slot arrays to ``state``."""

    def _load_slots(self, state: dict[str, np.ndarray]) -> None:
        """Subclass hook: restore what :meth:`_save_slots` stored."""

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot the optimizer's state as plain numpy arrays (copies)."""
        state: dict[str, np.ndarray] = {
            "lr": np.asarray(self.lr, dtype=np.float64),
            "step_count": np.asarray(self.step_count, dtype=np.int64),
        }
        self._save_slots(state)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore a snapshot from :meth:`state_dict`; shapes must match."""
        for key in ("lr", "step_count"):
            if key not in state:
                raise ConfigError(f"optimizer state is missing {key!r}")
        self.lr = float(state["lr"])
        self.step_count = int(state["step_count"])
        self._load_slots(state)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        for p, vel in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            p.data = p.data - self.lr * grad

    def _save_slots(self, state: dict[str, np.ndarray]) -> None:
        _pack_slot(state, "velocity", self._velocity)

    def _load_slots(self, state: dict[str, np.ndarray]) -> None:
        self._velocity = _unpack_slot(state, "velocity", self.parameters)


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigError(f"betas must lie in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self.step_count += 1
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._t
        bias2 = 1.0 - beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _save_slots(self, state: dict[str, np.ndarray]) -> None:
        state["t"] = np.asarray(self._t, dtype=np.int64)
        _pack_slot(state, "m", self._m)
        _pack_slot(state, "v", self._v)

    def _load_slots(self, state: dict[str, np.ndarray]) -> None:
        if "t" not in state:
            raise ConfigError("optimizer state is missing 't'")
        self._t = int(state["t"])
        self._m = _unpack_slot(state, "m", self.parameters)
        self._v = _unpack_slot(state, "v", self.parameters)


class AdaGrad(Optimizer):
    """AdaGrad (Duchi et al., 2011) — used by the mini-GloVe trainer."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.05,
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        for p, accum in zip(self.parameters, self._accum):
            if p.grad is None:
                continue
            accum += p.grad**2
            p.data = p.data - self.lr * p.grad / (np.sqrt(accum) + self.eps)

    def _save_slots(self, state: dict[str, np.ndarray]) -> None:
        _pack_slot(state, "accum", self._accum)

    def _load_slots(self, state: dict[str, np.ndarray]) -> None:
        self._accum = _unpack_slot(state, "accum", self.parameters)

"""Layers required by the paper's models.

The paper's encoder is "a three-layer perceptron of 800 hidden units and
SeLU as the activation function, followed by a dropout layer (rate = 0.5)
and a batch norm layer" — everything needed for that (and for the baseline
architectures) lives here.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor import fused
from repro.tensor.tensor import Tensor

_ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": F.relu,
    "selu": F.selu,
    "tanh": F.tanh,
    "sigmoid": F.sigmoid,
    "softplus": F.softplus,
    "gelu": F.gelu,
    "leaky_relu": F.leaky_relu,
    "identity": lambda x: x,
}


def get_activation(name: str) -> Callable[[Tensor], Tensor]:
    """Look up an activation function by name."""
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise ConfigError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from None


class Linear(Module):
    """Affine map ``y = x W^T + b`` with Xavier-uniform initialisation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expected last dim {self.in_features}, got {x.shape}"
            )
        return fused.linear(x, self.weight, self.bias)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ConfigError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)


class BatchNorm1d(Module):
    """Batch normalisation over the feature axis of ``(batch, features)``.

    Running statistics are tracked with exponential moving averages and used
    in eval mode, matching the standard semantics.
    """

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.1,
        eps: float = 1e-5,
        affine: bool = True,
    ):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(init.ones((num_features,)))
            self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm1d expected (batch, {self.num_features}), got {x.shape}"
            )
        # The fused kernel updates the running statistics in place
        # (training mode) and reads them as constants in eval mode.
        return fused.batch_norm(
            x,
            running_mean=self.running_mean,
            running_var=self.running_var,
            weight=self.weight if self.affine else None,
            bias=self.bias if self.affine else None,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class Identity(Module):
    """No-op module, useful as a placeholder."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Activation(Module):
    """Wrap a named activation function as a module."""

    def __init__(self, name: str):
        super().__init__()
        self.name = name
        self._fn = get_activation(name)

    def forward(self, x: Tensor) -> Tensor:
        return self._fn(x)


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: list[str] = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)


class MLP(Module):
    """Multi-layer perceptron with a uniform activation between layers.

    ``sizes`` gives the full chain of widths, e.g. ``[V, 800, 800, 800]``
    builds the paper's three-layer 800-unit encoder trunk.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        activation: str = "selu",
        dropout: float = 0.0,
        final_activation: bool = True,
    ):
        super().__init__()
        if len(sizes) < 2:
            raise ConfigError("MLP needs at least input and output sizes")
        layers: list[Module] = []
        n_affine = len(sizes) - 1
        for i in range(n_affine):
            layers.append(Linear(sizes[i], sizes[i + 1], rng))
            is_last = i == n_affine - 1
            if not is_last or final_activation:
                layers.append(Activation(activation))
                if dropout > 0.0:
                    layers.append(Dropout(dropout, rng))
        self.body = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)

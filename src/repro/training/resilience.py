"""Fault-tolerant training runtime: numerical guards and checkpointing.

The ContraTopic regularizer is numerically fragile by construction —
Gumbel top-k subset sampling feeding an NPMI kernel can push the
contrastive term to NaN/Inf or blow up the ELBO.  The paper's multi-seed
tables only mean something if a run that diverges at epoch 80 recovers
instead of silently poisoning the reported mean.  This module provides
the two halves of that story:

* :class:`GuardPolicy` / :class:`TrainingGuard` — per-batch loss and
  gradient finiteness checks with an escalation ladder: **skip batch**
  → **halve the learning rate (with backoff)** → **restore the last good
  snapshot** → **degrade to ELBO-only training** (drop the contrastive
  term) → finally :class:`~repro.errors.TrainingDivergedError` when a
  fault budget is configured and spent.  Every action is counted and
  surfaces in the epoch logs as ``guard_*`` keys, which
  :class:`~repro.telemetry.callback.TelemetryCallback` folds into
  ``guard/*`` registry counters for ``BENCH_*.json`` reports.
* :class:`CheckpointCallback` — periodic / best-so-far / last-good
  format-v2 checkpoints (model + optimizer + RNG streams + epoch), written
  atomically, that ``fit(resume_from=...)`` continues bitwise-consistently.

The injectable failure modes live in :mod:`repro.training.faults`; the
guard itself never imports them except to recognise an injected crash
during a checkpoint save.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError, TrainingDivergedError
from repro.io import save_checkpoint
from repro.training.callbacks import Callback
from repro.training.faults import InjectedFault

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.models.base import NeuralTopicModel
    from repro.nn.optim import Optimizer


@dataclass(frozen=True)
class GuardPolicy:
    """Configuration of the numerical-guard escalation ladder.

    Every non-finite loss or gradient norm skips the offending batch.
    Each ``skips_per_escalation`` *consecutive* faulty batches climb one
    rung: first ``max_lr_backoffs`` learning-rate multiplications by
    ``lr_backoff`` (never below ``min_lr``), then up to ``max_restores``
    restorations of the last good snapshot, then — when the model still
    has enabled regularizer terms and ``degrade_extra_loss`` is set —
    permanent degradation: objective-stack terms are disabled one per
    escalation (reverse stack order, the disabled term's name lands in
    the event log) until only the base ELBO remains.  A clean batch
    resets the consecutive counter but not the rungs already climbed.

    ``max_faults`` bounds the total number of tolerated faults (None =
    unbounded): exceeding it raises
    :class:`~repro.errors.TrainingDivergedError` so a hopeless run fails
    loudly instead of spinning forever.
    """

    skips_per_escalation: int = 2
    lr_backoff: float = 0.5
    max_lr_backoffs: int = 2
    min_lr: float = 1e-8
    max_restores: int = 1
    degrade_extra_loss: bool = True
    max_faults: int | None = None

    def __post_init__(self) -> None:
        if self.skips_per_escalation < 1:
            raise ConfigError("skips_per_escalation must be >= 1")
        if not 0.0 < self.lr_backoff < 1.0:
            raise ConfigError("lr_backoff must lie in (0, 1)")
        if self.max_lr_backoffs < 0 or self.max_restores < 0:
            raise ConfigError("max_lr_backoffs/max_restores must be >= 0")
        if self.min_lr <= 0:
            raise ConfigError("min_lr must be positive")
        if self.max_faults is not None and self.max_faults < 1:
            raise ConfigError("max_faults must be >= 1 (or None)")


#: Counter names a guard maintains; each becomes a ``guard_<name>`` epoch
#: log key and a ``guard/<name>`` telemetry counter.
GUARD_COUNTERS = (
    "faults",
    "skipped_batches",
    "lr_backoffs",
    "restores",
    "degradations",
)


class TrainingGuard:
    """Runtime state machine executing a :class:`GuardPolicy`.

    One instance lives for one ``fit`` call; the epoch loop asks
    :meth:`check_loss` / :meth:`check_gradients` per batch and calls
    :meth:`handle_fault` when either fails, then :meth:`on_batch_ok` /
    :meth:`on_epoch_end` on the happy path.
    """

    def __init__(
        self,
        policy: GuardPolicy,
        model: "NeuralTopicModel",
        optimizer: "Optimizer",
    ):
        self.policy = policy
        self.model = model
        self.optimizer = optimizer
        self.counts: dict[str, int] = {name: 0 for name in GUARD_COUNTERS}
        self.actions: list[str] = []
        #: Objective-term names disabled by the degradation rung, in order.
        self.degraded_terms: list[str] = []
        self._consecutive = 0
        self._epoch_had_fault = False
        self._prev_counts = dict(self.counts)
        self._last_good: tuple[dict, dict] | None = None
        self.snapshot_last_good()

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    @staticmethod
    def check_loss(value: float) -> bool:
        """True when the batch loss is finite."""
        return bool(np.isfinite(value))

    @staticmethod
    def check_gradients(grad_norm: float) -> bool:
        """True when the pre-clip global gradient norm is finite."""
        return bool(np.isfinite(grad_norm))

    @staticmethod
    def check_array(values) -> bool:
        """True when *every* element of an output array is finite.

        The serving-side guard predicate: :mod:`repro.serving` runs it
        over each micro-batch's θ rows (and the registry over candidate
        checkpoint parameters), so a model that starts emitting NaN/Inf
        trips the circuit breaker through the same machinery that guards
        training.
        """
        return bool(np.isfinite(np.asarray(values)).all())

    # ------------------------------------------------------------------
    # recovery ladder
    # ------------------------------------------------------------------
    def handle_fault(self, kind: str) -> str:
        """React to one non-finite batch; returns the action taken."""
        self.counts["faults"] += 1
        self._consecutive += 1
        self._epoch_had_fault = True
        self.model.zero_grad()
        self.counts["skipped_batches"] += 1
        action = "skip"
        if self._consecutive % self.policy.skips_per_escalation == 0:
            action = self._escalate()
        entry = f"{kind}:{action}"
        if action == "degrade" and self.degraded_terms:
            # The event log names the term the degradation rung disabled,
            # e.g. "loss:degrade:contrastive".
            entry = f"{entry}:{self.degraded_terms[-1]}"
        self.actions.append(entry)
        budget = self.policy.max_faults
        if budget is not None and self.counts["faults"] >= budget:
            raise TrainingDivergedError(
                f"training diverged: {self.counts['faults']} non-finite "
                f"batches (budget {budget}) despite "
                f"{self.counts['lr_backoffs']} LR backoffs, "
                f"{self.counts['restores']} restores and "
                f"{self.counts['degradations']} degradations"
            )
        return action

    def _escalate(self) -> str:
        policy = self.policy
        if self.counts["lr_backoffs"] < policy.max_lr_backoffs:
            self.optimizer.lr = max(
                self.optimizer.lr * policy.lr_backoff, policy.min_lr
            )
            self.counts["lr_backoffs"] += 1
            return "lr_backoff"
        if self.counts["restores"] < policy.max_restores and self._last_good:
            model_state, optim_state = self._last_good
            # Keep the backed-off learning rate: the snapshot predates the
            # mitigation and restoring it would undo the backoff.
            lr = self.optimizer.lr
            self.model.load_state_dict(model_state)
            self.optimizer.load_state_dict(optim_state)
            self.optimizer.lr = lr
            self.counts["restores"] += 1
            return "restore"
        if policy.degrade_extra_loss:
            disabled = self._disable_one_term()
            if disabled is not None:
                self.counts["degradations"] += 1
                self.degraded_terms.append(disabled)
                return "degrade"
        return "skip"

    def _disable_one_term(self) -> str | None:
        """Shed one objective term (reverse stack order); returns its name.

        Models on the objective pipeline degrade term by term until only
        the base ELBO remains; a model exposing just the legacy boolean
        switch degrades in one step, named ``extra``.  ``None`` means
        there is nothing left to disable.
        """
        stack = getattr(self.model, "objectives", None)
        if stack is not None and hasattr(stack, "disable_next"):
            return stack.disable_next()
        if getattr(self.model, "extra_loss_enabled", False):
            self.model.extra_loss_enabled = False
            return "extra"
        return None

    # ------------------------------------------------------------------
    # happy path
    # ------------------------------------------------------------------
    def on_batch_ok(self) -> None:
        self._consecutive = 0

    def snapshot_last_good(self) -> None:
        """Capture an in-memory (model, optimizer) restore point."""
        self._last_good = (
            self.model.state_dict(),
            self.optimizer.state_dict(),
        )

    def on_epoch_end(self) -> None:
        """Refresh the restore point after an epoch with no faults."""
        if not self._epoch_had_fault:
            self.snapshot_last_good()
        self._epoch_had_fault = False

    def epoch_logs(self) -> dict[str, float]:
        """Per-epoch deltas of every counter, as ``guard_<name>`` keys."""
        logs = {
            f"guard_{name}": float(value - self._prev_counts[name])
            for name, value in self.counts.items()
        }
        self._prev_counts = dict(self.counts)
        return logs


# ----------------------------------------------------------------------
# checkpoint callback
# ----------------------------------------------------------------------
def save_training_checkpoint(
    model: "NeuralTopicModel", path: str | Path, extra: dict | None = None
) -> None:
    """Write a format-v2 checkpoint carrying the full resumable state.

    Requires an active (or just-finished) ``fit`` call — that is where the
    optimizer and RNG stream states live.
    """
    context = model._trainer
    if context is None:
        raise ConfigError(
            "no training context: save_training_checkpoint only works "
            "during or after fit()"
        )
    save_checkpoint(
        model,
        path,
        extra=extra,
        optimizer=context.optimizer,
        trainer_state=model.training_state(),
    )


class CheckpointCallback(Callback):
    """Periodic + best-so-far + last-good checkpointing during ``fit``.

    Writes up to three files into ``directory`` (all atomically, all
    format v2 so any of them can seed ``fit(resume_from=...)``):

    ``last.npz``
        Every ``every`` epochs, unconditionally.
    ``last_good.npz``
        After every epoch whose logs are entirely finite — the file the
        guard's operators reach for after a divergence.
    ``best.npz``
        Whenever the monitored quantity (default ``"total"`` loss)
        improves, and the epoch was finite.

    An :class:`~repro.training.faults.InjectedFault` raised mid-commit is
    counted (``interrupted`` attribute, ``guard_interrupted_saves`` epoch
    log) and survived — the previous file at that path stays intact, which
    is exactly the recovery property the fault harness exists to test.
    Real I/O errors propagate.
    """

    def __init__(
        self,
        directory: str | Path,
        every: int = 1,
        monitor: str = "total",
    ):
        if every < 1:
            raise ConfigError("every must be >= 1")
        self.directory = Path(directory)
        self.every = every
        self.monitor = monitor
        self.saves = 0
        self.interrupted = 0
        self.best_value = float("inf")
        self._prev_interrupted = 0

    @property
    def last_path(self) -> Path:
        return self.directory / "last.npz"

    @property
    def best_path(self) -> Path:
        return self.directory / "best.npz"

    @property
    def last_good_path(self) -> Path:
        return self.directory / "last_good.npz"

    def _save(self, model: "NeuralTopicModel", path: Path, epoch: int) -> None:
        try:
            save_training_checkpoint(model, path, extra={"epoch": epoch})
            self.saves += 1
        except InjectedFault:
            self.interrupted += 1

    def on_fit_start(self, model) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        self.best_value = float("inf")

    def on_epoch_end(self, model, epoch, logs) -> bool:
        finite = all(
            np.isfinite(value)
            for value in logs.values()
            if isinstance(value, (int, float))
        )
        if (epoch + 1) % self.every == 0:
            self._save(model, self.last_path, epoch)
        if finite:
            self._save(model, self.last_good_path, epoch)
            value = logs.get(self.monitor)
            if value is not None and value < self.best_value:
                self.best_value = float(value)
                self._save(model, self.best_path, epoch)
        delta = self.interrupted - self._prev_interrupted
        if delta:
            logs["guard_interrupted_saves"] = float(delta)
            self._prev_interrupted = self.interrupted
        return False

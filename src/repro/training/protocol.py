"""The paper's evaluation protocol, as reusable functions.

§V.B: topic coherence = average NPMI over top-10 words, reported over the
top p% of topics (p = 10%..100%); topic diversity = unique fraction of
top-25 words over the same topic selections; document representation =
km-Purity / km-NMI of KMeans over document-topic vectors with 20..100
clusters.  §V.F: every model is run for three random seeds and means are
reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.cluster.kmeans import KMeans
from repro.data.corpus import Corpus
from repro.metrics.clustering_metrics import normalized_mutual_information, purity
from repro.metrics.coherence import DEFAULT_PERCENTAGES, coherence_by_percentage
from repro.metrics.diversity import diversity_by_percentage
from repro.metrics.npmi import NpmiMatrix
from repro.models.base import NeuralTopicModel, TopicModel
from repro.tensor import no_grad
from repro.training.trainer import RunSpec, Trainer

CLUSTER_COUNTS = (20, 40, 60, 80, 100)


@dataclass
class EvaluationResult:
    """All §V.B metrics for one fitted model on one dataset.

    The ``*_std`` dictionaries are populated by
    :func:`multi_seed_evaluation` when more than one seed was run,
    enabling the paper's Table-II ``mean±std`` reporting.
    """

    model_name: str
    coherence: dict[float, float]
    diversity: dict[float, float]
    km_purity: dict[int, float] = field(default_factory=dict)
    km_nmi: dict[int, float] = field(default_factory=dict)
    coherence_std: dict[float, float] = field(default_factory=dict)
    diversity_std: dict[float, float] = field(default_factory=dict)
    km_purity_std: dict[int, float] = field(default_factory=dict)
    #: Populated by :func:`multi_seed_evaluation`: per-seed "ok" or
    #: "diverged" status.  A diverged seed is excluded from the reported
    #: means instead of silently poisoning them; its status keeps the
    #: exclusion visible.
    seed_status: dict[int, str] = field(default_factory=dict)
    #: Set by :func:`evaluate_model` when the model's outputs (topic-word
    #: matrix, document-topic vectors) contained non-finite values.  Rank
    #: statistics like the coherence top-k word selection can still come
    #: out finite on NaN inputs, so metric finiteness alone cannot catch a
    #: diverged model.
    diverged: bool = False

    def is_finite(self) -> bool:
        """True when the run converged and every metric value is finite."""
        if self.diverged:
            return False
        values = [
            *self.coherence.values(),
            *self.diversity.values(),
            *self.km_purity.values(),
            *self.km_nmi.values(),
        ]
        return bool(np.all(np.isfinite(values))) if values else True

    def summary(self) -> dict[str, float]:
        """Flat scalar summary used by reports and tests."""
        out = {
            "coherence@10%": self.coherence.get(0.1, float("nan")),
            "coherence@100%": self.coherence.get(1.0, float("nan")),
            "diversity@10%": self.diversity.get(0.1, float("nan")),
            "diversity@100%": self.diversity.get(1.0, float("nan")),
        }
        if self.km_purity:
            first = min(self.km_purity)
            last = max(self.km_purity)
            out["km_purity@min"] = self.km_purity[first]
            out["km_purity@max"] = self.km_purity[last]
        if self.seed_status:
            statuses = self.seed_status.values()
            out["seeds_ok"] = float(sum(s == "ok" for s in statuses))
            out["seeds_diverged"] = float(sum(s != "ok" for s in statuses))
        return out


def evaluate_model(
    model: TopicModel,
    test_corpus: Corpus,
    test_npmi: NpmiMatrix,
    percentages: Sequence[float] = DEFAULT_PERCENTAGES,
    cluster_counts: Sequence[int] = CLUSTER_COUNTS,
    model_name: str | None = None,
    clustering_seed: int = 0,
) -> EvaluationResult:
    """Score a fitted model with the full §V.B protocol.

    Clustering metrics are only computed when the test corpus has labels
    (20NG and Yahoo in the paper; NYTimes is skipped, as there).  Cluster
    counts exceeding the number of test documents are skipped.

    The whole protocol runs under ``no_grad()``: evaluation only reads the
    model, and recording a throwaway autodiff graph here would waste time
    and memory (``topic_word_matrix``/``transform`` guard themselves, but
    the blanket guard also covers overridden model methods).
    """
    with no_grad():
        topic_word = model.topic_word_matrix()
        diverged = not bool(np.all(np.isfinite(topic_word)))
        coherence = coherence_by_percentage(
            topic_word, test_npmi, percentages=percentages
        )
        diversity = diversity_by_percentage(
            topic_word, test_npmi, percentages=percentages
        )

        km_purity: dict[int, float] = {}
        km_nmi: dict[int, float] = {}
        if test_corpus.labels is not None:
            doc_topic = model.transform(test_corpus)
            if not bool(np.all(np.isfinite(doc_topic))):
                # KMeans over NaN vectors is meaningless; skip clustering and
                # let the diverged flag tell the story.
                diverged = True
            else:
                for n_clusters in cluster_counts:
                    if n_clusters > len(test_corpus):
                        continue
                    assignments = KMeans(
                        n_clusters, seed=clustering_seed
                    ).fit_predict(doc_topic)
                    km_purity[n_clusters] = purity(assignments, test_corpus.labels)
                    km_nmi[n_clusters] = normalized_mutual_information(
                        assignments, test_corpus.labels
                    )
    return EvaluationResult(
        model_name=model_name or type(model).__name__,
        coherence=coherence,
        diversity=diversity,
        km_purity=km_purity,
        km_nmi=km_nmi,
        diverged=diverged,
    )


def train_and_evaluate(
    model_factory: Callable[[int], TopicModel],
    train_corpus: Corpus,
    test_corpus: Corpus,
    test_npmi: NpmiMatrix,
    seed: int = 0,
    model_name: str | None = None,
    cluster_counts: Sequence[int] = CLUSTER_COUNTS,
    run_spec: RunSpec | None = None,
) -> EvaluationResult:
    """Build (with ``seed``), fit on train, and evaluate on test.

    ``run_spec`` is the declarative training configuration
    (:class:`~repro.training.trainer.RunSpec`) applied to neural models —
    e.g. ``RunSpec.guarded()`` trains every seed under the resilience
    guard.  ``None`` is a plain unguarded run.  Non-neural models (which
    have no epoch loop for the engine to drive) fit directly.
    """
    model = model_factory(seed)
    if isinstance(model, NeuralTopicModel):
        Trainer(run_spec).fit(model, train_corpus)
    else:
        model.fit(train_corpus)
    return evaluate_model(
        model,
        test_corpus,
        test_npmi,
        cluster_counts=cluster_counts,
        model_name=model_name,
        clustering_seed=seed,
    )


def multi_seed_evaluation(
    model_factory: Callable[[int], TopicModel],
    train_corpus: Corpus,
    test_corpus: Corpus,
    test_npmi: NpmiMatrix,
    seeds: Sequence[int] = (0, 1, 2),
    model_name: str | None = None,
    cluster_counts: Sequence[int] = CLUSTER_COUNTS,
    workers: int | None = 1,
    registry=None,
    profile: bool = False,
    run_spec: RunSpec | None = None,
) -> EvaluationResult:
    """§V.F protocol: average the evaluation over several random seeds.

    A seed whose run produced non-finite metrics (a diverged model) is
    flagged as ``"diverged"`` in the result's ``seed_status`` and excluded
    from the reported means — the paper's mean±std tables are only
    meaningful over runs that actually converged.  When *every* seed
    diverged, the (NaN) mean over all of them is returned so the failure
    stays visible rather than being masked.

    The per-seed runs are independent, so they fan out over
    :class:`repro.parallel.ParallelMap` when ``workers`` allows it
    (``workers=1``, the default, is the exact in-process serial path;
    ``workers=None`` resolves via ``REPRO_WORKERS`` / CPU count).  Every
    seed is an explicit task argument, so the metrics are identical for
    every worker count.  A seed whose run *raised* (a crash, an injected
    fault from :mod:`repro.training.faults`, an escalated divergence) is
    recorded as ``"failed: <ExcType>"`` in ``seed_status`` and excluded
    exactly like a diverged seed, instead of aborting the other seeds'
    runs; only when no seed produced a result at all does this raise
    :class:`~repro.errors.ParallelExecutionError`.  ``registry`` /
    ``profile`` forward to :class:`~repro.parallel.ParallelMap` so worker
    telemetry is merged back for ``BENCH_*.json`` reports.  ``run_spec``
    (a plain-data :class:`~repro.training.trainer.RunSpec`, picklable for
    the fan-out) applies the same declarative training configuration to
    every seed's run — see :func:`train_and_evaluate`.
    """
    from repro.parallel import ParallelMap

    def run_one_seed(seed: int) -> EvaluationResult:
        return train_and_evaluate(
            model_factory,
            train_corpus,
            test_corpus,
            test_npmi,
            seed=seed,
            model_name=model_name,
            cluster_counts=cluster_counts,
            run_spec=run_spec,
        )

    outcomes = ParallelMap(workers=workers, registry=registry, profile=profile).map(
        run_one_seed, list(seeds)
    )
    completed: list[tuple[int, EvaluationResult]] = []
    seed_status: dict[int, str] = {}
    for seed, outcome in zip(seeds, outcomes):
        if not outcome.ok:
            seed_status[seed] = f"failed: {outcome.error_type}"
            continue
        result = outcome.value
        seed_status[seed] = "ok" if result.is_finite() else "diverged"
        completed.append((seed, result))
    if not completed:
        from repro.errors import ParallelExecutionError

        details = "; ".join(
            f"seed {seed}: {outcome.error}"
            for seed, outcome in zip(seeds, outcomes)
        )
        raise ParallelExecutionError(
            f"every seed of the multi-seed evaluation failed ({details})"
        )
    finite = [r for seed, r in completed if seed_status[seed] == "ok"]
    merged = _mean_results(finite or [r for _, r in completed])
    merged.seed_status = seed_status
    merged.diverged = not finite
    return merged


def _mean_results(results: Sequence[EvaluationResult]) -> EvaluationResult:
    """Average metric dictionaries key-wise across seeds (with stds)."""
    if not results:
        raise ValueError("no results to aggregate")

    def mean_dict(dicts: Sequence[dict]) -> dict:
        keys = dicts[0].keys()
        return {k: float(np.mean([d[k] for d in dicts])) for k in keys}

    def std_dict(dicts: Sequence[dict]) -> dict:
        if len(dicts) < 2 or not dicts[0]:
            return {}
        keys = dicts[0].keys()
        return {k: float(np.std([d[k] for d in dicts], ddof=1)) for k in keys}

    has_clustering = bool(results[0].km_purity)
    return EvaluationResult(
        model_name=results[0].model_name,
        coherence=mean_dict([r.coherence for r in results]),
        diversity=mean_dict([r.diversity for r in results]),
        km_purity=mean_dict([r.km_purity for r in results]) if has_clustering else {},
        km_nmi=mean_dict([r.km_nmi for r in results]) if has_clustering else {},
        coherence_std=std_dict([r.coherence for r in results]),
        diversity_std=std_dict([r.diversity for r in results]),
        km_purity_std=std_dict([r.km_purity for r in results]) if has_clustering else {},
    )

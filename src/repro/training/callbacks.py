"""Training callbacks: validation tracking, early stopping, logging.

The paper trains for a fixed 100 epochs; real deployments usually want
validation-driven stopping.  Callbacks observe the epoch loop of
:meth:`repro.models.base.NeuralTopicModel.fit` and may request an early
stop or snapshot the best parameters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.data.corpus import Corpus
    from repro.models.base import NeuralTopicModel


class Callback:
    """Base class.  ``on_epoch_end`` returning True requests a stop."""

    def on_fit_start(self, model: "NeuralTopicModel") -> None:
        """Called once before the first epoch."""

    def on_epoch_end(self, model: "NeuralTopicModel", epoch: int, logs: dict) -> bool:
        """Called after each epoch with that epoch's averaged loss parts."""
        return False

    def on_fit_end(self, model: "NeuralTopicModel") -> None:
        """Called once after the loop finishes (stopped early or not)."""


class HistoryLogger(Callback):
    """Collects (epoch, logs) pairs; handy in notebooks and tests."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def on_epoch_end(self, model, epoch, logs) -> bool:
        self.records.append({"epoch": epoch, **logs})
        return False


class ValidationEvaluator(Callback):
    """Computes validation loss each epoch and stores it in the logs.

    The validation loss is the model's own training objective evaluated
    (without gradient, in eval mode) on a held-out corpus.
    """

    def __init__(self, validation_corpus: "Corpus", batch_size: int = 256):
        self.corpus = validation_corpus
        self.batch_size = batch_size
        self.losses: list[float] = []

    def on_epoch_end(self, model, epoch, logs) -> bool:
        from repro.tensor.tensor import no_grad

        was_training = model.training
        model.eval()
        bow = self.corpus.bow_matrix()
        total = 0.0
        batches = 0
        with no_grad():
            for start in range(0, bow.shape[0], self.batch_size):
                _, parts = model.loss_on_batch(bow[start : start + self.batch_size])
                total += parts["total"]
                batches += 1
        model.train(was_training)
        value = total / max(batches, 1)
        self.losses.append(value)
        logs["valid_loss"] = value
        return False


class EarlyStopping(Callback):
    """Stop when a monitored quantity stops improving.

    Parameters
    ----------
    monitor:
        Key in the epoch logs (e.g. ``"total"`` or — with a
        :class:`ValidationEvaluator` registered *before* this callback —
        ``"valid_loss"``).
    patience:
        Epochs without improvement tolerated before stopping.
    min_delta:
        Minimum decrease that counts as an improvement.
    restore_best:
        Reload the best epoch's parameters when stopping.
    """

    def __init__(
        self,
        monitor: str = "total",
        patience: int = 5,
        min_delta: float = 0.0,
        restore_best: bool = True,
    ):
        if patience < 1:
            raise ConfigError("patience must be >= 1")
        if min_delta < 0:
            raise ConfigError("min_delta must be non-negative")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = min_delta
        self.restore_best = restore_best
        self.best_value = np.inf
        self.best_epoch = -1
        self.stopped_epoch: int | None = None
        self._best_state: dict | None = None
        self._stale = 0

    def on_fit_start(self, model) -> None:
        self.best_value = np.inf
        self.best_epoch = -1
        self.stopped_epoch = None
        self._best_state = None
        self._stale = 0

    def on_epoch_end(self, model, epoch, logs) -> bool:
        if self.monitor not in logs:
            raise ConfigError(
                f"EarlyStopping monitors {self.monitor!r} but epoch logs "
                f"only contain {sorted(logs)}"
            )
        value = logs[self.monitor]
        if value < self.best_value - self.min_delta:
            self.best_value = value
            self.best_epoch = epoch
            self._stale = 0
            if self.restore_best:
                self._best_state = model.state_dict()
            return False
        self._stale += 1
        if self._stale >= self.patience:
            self.stopped_epoch = epoch
            return True
        return False

    def on_fit_end(self, model) -> None:
        if self.restore_best and self._best_state is not None:
            model.load_state_dict(self._best_state)


class LambdaCallback(Callback):
    """Wrap an arbitrary function as an epoch-end callback."""

    def __init__(self, on_epoch_end: Callable[["NeuralTopicModel", int, dict], bool | None]):
        self._fn = on_epoch_end

    def on_epoch_end(self, model, epoch, logs) -> bool:
        return bool(self._fn(model, epoch, logs))

"""The standalone training engine: Algorithm 1 as a reusable service.

Historically the paper's Algorithm 1 (epoch/mini-batch Adam training with
the contrastive regularizer) lived as a god-method inside
:meth:`repro.models.base.NeuralTopicModel.fit`, interleaving data
iteration, optimization, guard escalation, fault injection,
checkpoint/resume and telemetry.  This module carves that loop out into
three pieces:

:class:`Trainer`
    Owns the epoch/batch loop, the optimizer, the batch-shuffling RNG,
    the guard runtime, the fault injector, callbacks and
    checkpoint/resume.  It drives *any* model exposing the narrow
    :class:`Trainable` contract (``loss_on_batch`` / ``parameters`` /
    ``rng_streams`` plus a handful of :class:`~repro.nn.module.Module`
    niceties) — the same model-agnostic shape coherence-regularized
    trainers take in Ding et al. (2018) and Li et al. (2023).  The
    batch step is a pipeline of named, individually-testable methods::

        zero_grad → dispatch_shard → compute_loss → inject_loss_fault
                  → guard_loss → backward → reduce_gradients
                  → inject_gradient_fault → clip_gradients
                  → guard_gradients → apply_step

    ``dispatch_shard``/``reduce_gradients`` delegate to the run's
    :class:`~repro.parallel.ddp.GradientExchange`: the identity (serial)
    strategy leaves the pipeline bitwise-identical to the pre-DDP
    trainer, while ``RunSpec(ddp_workers=N)`` shards every batch across
    N forked ranks and all-reduces a size-weighted gradient average into
    the parent before the fault/clip/guard/step stages run.

:class:`TrainState`
    The per-run mutable state (optimizer, batch RNG, guard runtime,
    fault injector, epoch counter) that is *not* model parameters.  It
    replaces the old ad-hoc ``TrainerContext``; callbacks still reach it
    through ``model._trainer`` (e.g.
    :class:`~repro.training.resilience.CheckpointCallback` needs the
    optimizer and RNG streams to write a resumable format-v2
    checkpoint), and it stays attached after ``fit`` returns so a
    post-training save can capture the full state.

:class:`RunSpec`
    A declarative run configuration — model hyper-parameters, guard
    policy, checkpoint/fault settings and a resume path — with a
    dict/JSON round-trip, so an entire training setup can travel through
    config files, CLI flags and process boundaries as plain data.  Every
    call-site layer (CLI, experiment runner, grid search, training
    protocol, online extension) constructs training through it.

``NeuralTopicModel.fit`` remains as a thin facade delegating here, so the
public API, format-v2 checkpoints and bitwise-identical resume semantics
are all preserved: training through ``Trainer(RunSpec()).fit(model,
corpus)`` produces exactly the same per-epoch ``history`` as the old
in-model loop for a fixed seed.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.data.loaders import Batch, BatchIterator
from repro.errors import ConfigError
from repro.nn.optim import Adam, Optimizer, clip_grad_norm
from repro.parallel.ddp import DDPGradientExchange, GradientExchange, SerialExchange
from repro.tensor.dtypes import get_default_dtype
from repro.training.faults import FaultInjector, FaultPlan, interrupted_writes
from repro.training.resilience import (
    CheckpointCallback,
    GuardPolicy,
    TrainingGuard,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.data.corpus import Corpus
    from repro.models.base import NTMConfig
    from repro.tensor.tensor import Tensor
    from repro.training.callbacks import Callback


# ----------------------------------------------------------------------
# the model contract
# ----------------------------------------------------------------------
@runtime_checkable
class Trainable(Protocol):
    """What a model must expose for :class:`Trainer` to drive it.

    The contract is deliberately narrow — a loss, its parameters, and the
    RNG streams that make resume bitwise-consistent — so the engine stays
    model-agnostic: any objective packaged as ``loss_on_batch`` trains
    through the same loop, guards, faults and checkpoints.
    """

    def loss_on_batch(self, bow: Batch) -> "tuple[Tensor, dict[str, float]]":
        """Total differentiable loss for one batch, plus scalar parts.

        ``bow`` is whatever the :class:`~repro.data.loaders.BatchIterator`
        yields: a dense ``(batch, vocab)`` array, or a
        :class:`~repro.tensor.sparse.CSRBatch` on the sparse fast path
        (``np.asarray(bow)`` densifies it for models without a sparse
        kernel).
        """
        ...

    def parameters(self):
        """The trainable parameters (for the optimizer and grad clip)."""
        ...

    def rng_streams(self) -> dict[str, np.random.Generator]:
        """Every RNG stream training consumes (for checkpoint/resume)."""
        ...


#: Attributes beyond the :class:`Trainable` protocol that the loop uses;
#: every :class:`~repro.nn.module.Module`-based model has them already.
_CONTRACT_ATTRS = (
    "loss_on_batch",
    "parameters",
    "rng_streams",
    "config",
    "history",
    "train",
    "eval",
    "on_fit_start",
)


def _check_contract(model) -> None:
    missing = [name for name in _CONTRACT_ATTRS if not hasattr(model, name)]
    if missing:
        raise ConfigError(
            f"{type(model).__name__} does not satisfy the Trainable "
            f"contract; missing: {', '.join(missing)}"
        )


# ----------------------------------------------------------------------
# per-run mutable state
# ----------------------------------------------------------------------
@dataclass
class TrainState:
    """The per-run training state that is not model parameters.

    Replaces the old ``TrainerContext``.  Callbacks reach it through
    ``model._trainer`` (e.g. the checkpoint callback needs the optimizer
    and RNG streams to write a resumable format-v2 checkpoint); it stays
    attached after ``fit`` returns so a post-training save can still
    capture the full state.
    """

    optimizer: Optimizer
    batch_rng: np.random.Generator
    guard: TrainingGuard | None = None
    faults: FaultInjector | None = None
    epoch: int = -1
    #: The gradient-production strategy for the run.  The default
    #: identity strategy *is* the serial trainer; ``fit`` swaps in a
    #: :class:`~repro.parallel.ddp.DDPGradientExchange` when the spec
    #: asks for data-parallel workers.
    exchange: GradientExchange = field(default_factory=SerialExchange)


def capture_training_state(model) -> dict:
    """JSON-serializable snapshot of the non-parameter training state.

    Travels as ``trainer_state`` in format-v2 checkpoints
    (:func:`repro.io.save_checkpoint`); :meth:`Trainer.fit` with a resume
    path restores it via :func:`restore_training_state`.
    """
    state: TrainState | None = getattr(model, "_trainer", None)
    if state is None:
        raise ConfigError("training_state requires an active fit()")
    snapshot = {
        "epoch": int(state.epoch),
        "rng": {
            name: rng.bit_generator.state
            for name, rng in model.rng_streams().items()
        },
        "batch_rng": state.batch_rng.bit_generator.state,
        "history": [dict(entry) for entry in model.history],
        "extra_loss_enabled": bool(getattr(model, "extra_loss_enabled", True)),
    }
    flags = getattr(model, "objective_flags", None)
    if callable(flags):
        # Per-term degradation state; the legacy bool above stays for
        # checkpoints read by older code paths.
        snapshot["objective_terms"] = {
            str(name): bool(enabled) for name, enabled in flags().items()
        }
    return snapshot


def restore_training_state(
    model,
    path: str | Path,
    optimizer: Optimizer,
    batch_rng: np.random.Generator,
) -> int:
    """Load a v2 checkpoint into (model, optimizer, RNG streams).

    Returns the epoch index training should continue from.
    """
    from repro.io import CheckpointError, restore_checkpoint

    meta = restore_checkpoint(model, path, optimizer=optimizer)
    state = meta.get("trainer_state")
    if not state:
        raise CheckpointError(
            f"{path} carries no trainer state; resumable checkpoints "
            "are written by CheckpointCallback or "
            "save_training_checkpoint()"
        )
    streams = model.rng_streams()
    for name, rng_state in state["rng"].items():
        if name not in streams:
            raise CheckpointError(
                f"{path} has RNG stream {name!r} unknown to "
                f"{type(model).__name__} (streams: {sorted(streams)})"
            )
        streams[name].bit_generator.state = rng_state
    batch_rng.bit_generator.state = state["batch_rng"]
    model.history = [dict(entry) for entry in state["history"]]
    terms = state.get("objective_terms")
    if terms is not None and hasattr(model, "apply_objective_flags"):
        model.apply_objective_flags(
            {str(name): bool(enabled) for name, enabled in terms.items()}
        )
    else:
        # Legacy (pre-objective-stack) checkpoints carry one bool; the
        # setter maps it onto every term, bitwise-matching the old runs.
        model.extra_loss_enabled = bool(state.get("extra_loss_enabled", True))
    return int(state["epoch"]) + 1


# ----------------------------------------------------------------------
# declarative run configuration
# ----------------------------------------------------------------------
@dataclass
class CheckpointSpec:
    """Declarative settings for periodic/best/last-good checkpointing.

    Materialized into a
    :class:`~repro.training.resilience.CheckpointCallback` per ``fit``.
    """

    directory: str
    every: int = 1
    monitor: str = "total"

    def __post_init__(self) -> None:
        if not self.directory:
            raise ConfigError("checkpoint directory must be non-empty")
        if self.every < 1:
            raise ConfigError("every must be >= 1")


#: Dataclass fields that serialize as JSON lists but must come back as
#: tuples (dataclass defaults and ``__post_init__`` validation expect
#: tuples, and frozen specs should not carry mutable members).
_TUPLE_FIELDS = frozenset(
    {
        "hidden_sizes",
        "nan_loss_steps",
        "exploding_grad_steps",
        "interrupt_saves",
        "interrupt_categories",
        "serve_latency_steps",
        "serve_nan_steps",
        "serve_death_steps",
        "corrupt_checkpoint_loads",
    }
)


def _encode(spec) -> dict | None:
    if spec is None:
        return None
    return {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in dataclasses.asdict(spec).items()
    }


def _decode(cls, data: dict | None, label: str):
    if data is None:
        return None
    if not isinstance(data, dict):
        raise ConfigError(f"RunSpec field {label!r} must be a mapping or null")
    kwargs = {
        key: tuple(value)
        if key in _TUPLE_FIELDS and isinstance(value, list)
        else value
        for key, value in data.items()
    }
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigError(f"bad RunSpec field {label!r}: {exc}") from exc


@dataclass
class RunSpec:
    """A declarative description of one training run.

    Bundles the model hyper-parameters with every resilience/runtime
    setting the engine understands, as plain (JSON round-trippable) data:

    ``model``
        Optional :class:`~repro.models.base.NTMConfig` recording the
        hyper-parameters the model was (or should be) built with —
        provenance for reports and the handle config files use.
    ``guard``
        Optional :class:`~repro.training.resilience.GuardPolicy`; when
        set, the run trains under the skip → LR-backoff → restore →
        degrade escalation ladder.
    ``checkpoint``
        Optional :class:`CheckpointSpec`; when set, the run writes
        periodic/best/last-good resumable format-v2 checkpoints.
    ``faults``
        Optional :class:`~repro.training.faults.FaultPlan` for the
        deterministic fault-injection harness.  When the plan interrupts
        checkpoint saves, the trainer activates
        :func:`~repro.training.faults.interrupted_writes` for the run.
    ``resume_from``
        Optional path of a format-v2 checkpoint to continue from,
        bitwise-consistently.
    ``ddp_workers``
        Optional data-parallel worker count (parent included).  ``None``
        or ``1`` trains serially through the identity
        :class:`~repro.parallel.ddp.GradientExchange`; ``N >= 2`` shards
        every batch across N ranks with size-weighted gradient averaging
        (see :mod:`repro.parallel.ddp` and docs/PARALLELISM.md).
    ``objectives``
        Optional tuple of
        :class:`~repro.objectives.registry.ObjectiveSpec` (or their
        dicts).  When set, the trainer replaces the model's own objective
        stack with ELBO + these terms before ``on_fit_start`` — the
        regularizer-zoo sweep path (``()`` trains pure ELBO).  ``None``
        keeps whatever the model declares.

    Use :meth:`to_dict`/:meth:`from_dict` (or the JSON twins) to move a
    spec through config files and process boundaries.
    """

    model: "NTMConfig | None" = None
    guard: GuardPolicy | None = None
    checkpoint: CheckpointSpec | None = None
    faults: FaultPlan | None = None
    resume_from: str | None = None
    ddp_workers: int | None = None
    objectives: "tuple | None" = None

    def __post_init__(self) -> None:
        if self.objectives is not None:
            # Lazy import: repro.objectives pulls the similarity/NPMI
            # machinery, which plain training runs never need.
            from repro.objectives.registry import ObjectiveSpec

            specs = []
            for entry in self.objectives:
                if isinstance(entry, ObjectiveSpec):
                    specs.append(entry)
                elif isinstance(entry, dict):
                    specs.append(ObjectiveSpec.from_dict(entry))
                else:
                    raise ConfigError(
                        "RunSpec.objectives entries must be ObjectiveSpec "
                        f"or mappings, got {type(entry).__name__}"
                    )
            self.objectives = tuple(specs)
        if self.ddp_workers is not None:
            if not isinstance(self.ddp_workers, int) or isinstance(
                self.ddp_workers, bool
            ):
                raise ConfigError(
                    f"ddp_workers must be an integer, got {self.ddp_workers!r}"
                )
            if self.ddp_workers < 1:
                raise ConfigError(
                    f"ddp_workers must be >= 1, got {self.ddp_workers}"
                )

    # -- convenience constructors --------------------------------------
    @classmethod
    def guarded(cls, **kwargs) -> "RunSpec":
        """A spec with the default guard policy enabled."""
        kwargs.setdefault("guard", GuardPolicy())
        return cls(**kwargs)

    # -- dict / JSON round-trip ----------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form (nested dataclasses become dicts, tuples lists)."""
        return {
            "model": _encode(self.model),
            "guard": _encode(self.guard),
            "checkpoint": _encode(self.checkpoint),
            "faults": _encode(self.faults),
            "resume_from": (
                str(self.resume_from) if self.resume_from is not None else None
            ),
            "ddp_workers": self.ddp_workers,
            "objectives": (
                [spec.to_dict() for spec in self.objectives]
                if self.objectives is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Inverse of :meth:`to_dict`; validates fields via the dataclasses."""
        if not isinstance(data, dict):
            raise ConfigError(f"RunSpec.from_dict expects a mapping, got {type(data)}")
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ConfigError(f"unknown RunSpec fields: {sorted(unknown)}")
        from repro.models.base import NTMConfig

        resume = data.get("resume_from")
        workers = data.get("ddp_workers")
        objectives = data.get("objectives")
        if objectives is not None and not isinstance(objectives, (list, tuple)):
            raise ConfigError(
                "RunSpec field 'objectives' must be a list of objective "
                f"specs or null, got {type(objectives).__name__}"
            )
        return cls(
            model=_decode(NTMConfig, data.get("model"), "model"),
            guard=_decode(GuardPolicy, data.get("guard"), "guard"),
            checkpoint=_decode(CheckpointSpec, data.get("checkpoint"), "checkpoint"),
            faults=_decode(FaultPlan, data.get("faults"), "faults"),
            resume_from=str(resume) if resume is not None else None,
            ddp_workers=workers,
            objectives=tuple(objectives) if objectives is not None else None,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid RunSpec JSON: {exc}") from exc
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class Trainer:
    """Algorithm-1 style epoch/mini-batch training with Adam, as a service.

    Parameters
    ----------
    spec:
        Declarative run configuration; ``None`` means a plain unguarded
        run (exactly the old ``model.fit(corpus)`` behaviour).
    callbacks:
        Callbacks attached to every ``fit`` this trainer runs, *after*
        the spec-derived ones (the checkpoint callback built from
        ``spec.checkpoint`` always observes an epoch first, so telemetry
        sees its log annotations).
    faults:
        A live :class:`~repro.training.faults.FaultInjector` overriding
        ``spec.faults`` — the escape hatch for tests that need to assert
        on the injector's counters.  When the injector is built from the
        spec's plan instead, the trainer also manages the
        ``interrupted_writes`` context for plans that interrupt saves.

    One trainer may run many fits; all per-run state lives in the
    :class:`TrainState` attached to each model.
    """

    def __init__(
        self,
        spec: RunSpec | None = None,
        *,
        callbacks: Sequence["Callback"] = (),
        faults: FaultInjector | None = None,
    ):
        self.spec = spec if spec is not None else RunSpec()
        self.callbacks: list["Callback"] = list(callbacks)
        self.faults = faults

    # ------------------------------------------------------------------
    # construction helpers (one per spec field, each overridable)
    # ------------------------------------------------------------------
    def build_optimizer(self, model) -> Optimizer:
        """Adam over the model's parameters at the configured rate."""
        return Adam(model.parameters(), lr=model.config.learning_rate)

    def build_batch_rng(self, model) -> np.random.Generator:
        """The batch-shuffling stream (seeded off the model seed)."""
        return np.random.default_rng(model.config.seed + 1)

    def build_guard(self, model, optimizer: Optimizer) -> TrainingGuard | None:
        """Materialize the spec's guard policy into a runtime, if any."""
        if self.spec.guard is None:
            return None
        return TrainingGuard(self.spec.guard, model=model, optimizer=optimizer)

    def build_callbacks(self) -> list["Callback"]:
        """Spec-derived callbacks (currently: the checkpoint callback)."""
        if self.spec.checkpoint is None:
            return []
        ckpt = self.spec.checkpoint
        return [
            CheckpointCallback(
                ckpt.directory, every=ckpt.every, monitor=ckpt.monitor
            )
        ]

    def build_exchange(self, model) -> GradientExchange:
        """The gradient-production strategy for this run.

        ``ddp_workers`` unset (or 1) selects the identity strategy — the
        pipeline then *is* the pre-DDP serial trainer, bit for bit.  On
        platforms without the ``fork`` start method the serial strategy
        is also used, the same quiet degradation
        :class:`~repro.parallel.pool.ParallelMap` applies.
        """
        from repro.parallel.pool import fork_available

        workers = self.spec.ddp_workers
        if workers is None or workers <= 1:
            return SerialExchange()
        if not fork_available():  # pragma: no cover - platform dependent
            return SerialExchange()
        return DDPGradientExchange(workers=workers, seed=model.config.seed)

    def build_faults(
        self, override: FaultInjector | None
    ) -> tuple[FaultInjector | None, bool]:
        """Resolve the run's fault injector.

        Returns ``(injector, trainer_owns_interrupts)``: the trainer only
        activates the :func:`interrupted_writes` context for injectors it
        built itself from ``spec.faults`` — a caller-supplied injector
        keeps ownership of that context (the pre-existing contract of
        ``fit(faults=...)``).
        """
        if override is not None:
            return override, False
        if self.faults is not None:
            return self.faults, False
        if self.spec.faults is not None:
            plan = self.spec.faults
            return FaultInjector(plan), bool(plan.interrupt_saves)
        return None, False

    # ------------------------------------------------------------------
    # the batch-step pipeline: zero_grad → dispatch → loss → faults →
    # guard → backward → reduce → faults → clip → guard → step.  Each
    # stage is a named method so tests (and subclasses) can exercise or
    # replace one stage at a time.  dispatch/reduce delegate to the
    # run's GradientExchange; the serial strategy makes them identities,
    # so without ``ddp_workers`` this is exactly the old pipeline.
    # ------------------------------------------------------------------
    def zero_grad(self, state: TrainState) -> None:
        """Clear accumulated gradients before the batch's forward pass."""
        state.optimizer.zero_grad()

    def dispatch_shard(self, model, state: TrainState, bow: Batch, idx) -> Batch:
        """The parent's shard of the batch (serially: the whole batch).

        Under DDP this also broadcasts the current parameters and ships
        the other ranks their shard indices.
        """
        flags = getattr(model, "objective_flags", None)
        if callable(flags):
            # Per-term enable map: workers mirror the guard's term-level
            # degradation state exactly, not just an all-or-nothing bool.
            extra: bool | dict = flags()
        else:
            extra = bool(getattr(model, "extra_loss_enabled", True))
        return state.exchange.dispatch(bow, idx, extra)

    def compute_loss(self, model, bow: Batch):
        """Forward pass: the model's total loss and its scalar parts."""
        return model.loss_on_batch(bow)

    def inject_loss_fault(self, state: TrainState, loss) -> None:
        """Fault harness: corrupt the loss when the plan says so."""
        if state.faults is not None:
            state.faults.corrupt_loss(loss)

    def guard_loss(self, state: TrainState, loss) -> bool:
        """False (batch aborted) when the guard rejects a non-finite loss."""
        guard = state.guard
        if guard is not None and not guard.check_loss(loss.item()):
            guard.handle_fault("loss")
            return False
        return True

    def backward(self, loss) -> None:
        """Reverse pass: populate parameter gradients."""
        loss.backward()

    def reduce_gradients(
        self, model, state: TrainState, parts: dict, shard_docs: int, total_docs: int
    ) -> dict:
        """All-reduce shard gradients into the parent (serially: no-op).

        Runs *before* the gradient faults/clip/guard stages so those —
        and the optimizer step — act on the batch-level averaged
        gradients, exactly as PR-2's resilience envelope expects.
        """
        return state.exchange.reduce(
            model, parts, shard_docs=shard_docs, total_docs=total_docs
        )

    def inject_gradient_fault(self, state: TrainState, model) -> None:
        """Fault harness: blow up gradients when the plan says so."""
        if state.faults is not None:
            state.faults.corrupt_gradients(model.parameters())

    def clip_gradients(self, model) -> float:
        """Global-norm clipping; returns the pre-clip norm."""
        return clip_grad_norm(model.parameters(), model.config.grad_clip)

    def guard_gradients(self, state: TrainState, grad_norm: float) -> bool:
        """False (batch aborted) when the guard rejects the gradient norm."""
        guard = state.guard
        if guard is not None and not guard.check_gradients(grad_norm):
            guard.handle_fault("gradient")
            return False
        return True

    def apply_step(self, state: TrainState) -> None:
        """Optimizer update, then tell the guard the batch was clean."""
        state.optimizer.step()
        if state.guard is not None:
            state.guard.on_batch_ok()

    def train_batch(
        self, model, state: TrainState, bow: Batch, idx=None
    ) -> tuple[dict[str, float], float] | None:
        """Run one batch through the pipeline.

        Returns ``(loss parts, pre-clip grad norm)``, or ``None`` when the
        guard skipped the batch (its statistics then stay out of the
        epoch averages, exactly as a skipped batch should).  ``idx`` is
        the batch's document indices — required for DDP sharding, unused
        (and optional) on the serial path.
        """
        self.zero_grad(state)
        shard = self.dispatch_shard(model, state, bow, idx)
        loss, parts = self.compute_loss(model, shard)
        self.inject_loss_fault(state, loss)
        if not self.guard_loss(state, loss):
            # Workers were already dispatched: drain their replies so the
            # pipes stay in lockstep for the next batch.
            state.exchange.abort()
            return None
        self.backward(loss)
        parts = self.reduce_gradients(
            model, state, parts, shard_docs=len(shard), total_docs=len(bow)
        )
        self.inject_gradient_fault(state, model)
        grad_norm = self.clip_gradients(model)
        if not self.guard_gradients(state, grad_norm):
            return None
        self.apply_step(state)
        return parts, grad_norm

    # ------------------------------------------------------------------
    # epoch loop
    # ------------------------------------------------------------------
    def train_epoch(
        self, model, state: TrainState, batches: BatchIterator
    ) -> dict[str, float]:
        """One pass over the (re-shuffled) corpus; returns the epoch logs."""
        epoch_start = time.perf_counter()
        epoch_parts: dict[str, float] = {}
        n_batches = 0
        docs_seen = 0
        grad_norm_total = 0.0
        for bow, idx in batches.batches_with_indices():
            outcome = self.train_batch(model, state, bow, idx)
            if outcome is None:
                continue
            parts, grad_norm = outcome
            grad_norm_total += grad_norm
            for key, value in parts.items():
                epoch_parts[key] = epoch_parts.get(key, 0.0) + value
            n_batches += 1
            docs_seen += len(bow)
        logs = {k: v / max(n_batches, 1) for k, v in epoch_parts.items()}
        # Telemetry: wall time on the monotonic clock, throughput and the
        # mean pre-clip gradient norm travel with the loss parts so
        # callbacks (e.g. TelemetryCallback) see them per epoch.
        epoch_seconds = time.perf_counter() - epoch_start
        logs["epoch_seconds"] = epoch_seconds
        logs["docs_per_sec"] = (
            docs_seen / epoch_seconds if epoch_seconds > 0 else 0.0
        )
        logs["grad_norm"] = grad_norm_total / max(n_batches, 1)
        if state.guard is not None:
            logs.update(state.guard.epoch_logs())
            state.guard.on_epoch_end()
        return logs

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def fit(
        self,
        model,
        corpus: "Corpus",
        *,
        callbacks: Sequence["Callback"] = (),
        faults: FaultInjector | None = None,
        resume_from: str | Path | None = None,
    ):
        """Train ``model`` on ``corpus`` under this trainer's spec.

        ``callbacks``/``faults``/``resume_from`` are per-call extensions
        of (respectively: appended to, overriding, overriding) the
        corresponding spec settings.  Returns the model, fitted, with its
        :class:`TrainState` left attached as ``model._trainer``.
        """
        _check_contract(model)
        if corpus.vocab_size != model.vocab_size:
            raise ConfigError(
                f"corpus vocab {corpus.vocab_size} != model vocab "
                f"{model.vocab_size}"
            )
        run_callbacks = [*self.build_callbacks(), *self.callbacks, *callbacks]
        injector, owns_interrupts = self.build_faults(faults)

        model.train()
        if self.spec.objectives is not None:
            from repro.objectives.registry import attach_objectives

            # Before on_fit_start so the spec-built terms' prepare hooks
            # (NPMI kernels, idf tables, RNG seeding) see the corpus.
            attach_objectives(model, self.spec.objectives)
        model.on_fit_start(corpus)
        optimizer = self.build_optimizer(model)
        batch_rng = self.build_batch_rng(model)
        start_epoch = 0
        resume = resume_from if resume_from is not None else self.spec.resume_from
        if resume is not None:
            start_epoch = restore_training_state(model, resume, optimizer, batch_rng)
        state = TrainState(
            optimizer=optimizer,
            batch_rng=batch_rng,
            guard=self.build_guard(model, optimizer),
            faults=injector,
            epoch=start_epoch - 1,
            exchange=self.build_exchange(model),
        )
        model._trainer = state

        interrupts = (
            interrupted_writes(injector)
            if owns_interrupts
            else contextlib.nullcontext()
        )
        with interrupts:
            for callback in run_callbacks:
                callback.on_fit_start(model)
            try:
                # The exchange binds BEFORE the BatchIterator: a DDP bind
                # re-homes the corpus' BOW cache into shared memory and
                # forks the workers, and the iterator must cache the
                # shared arrays, not a private copy.
                state.exchange.bind(model, corpus, dtype=get_default_dtype())
                # The BOW matrix is materialized once, in the policy
                # dtype, so the per-batch Tensor wrap in ``encode_theta``
                # is a no-copy view instead of a full float64→float32
                # cast every step.
                batches = BatchIterator(
                    corpus,
                    batch_size=model.config.batch_size,
                    rng=batch_rng,
                    dtype=get_default_dtype(),
                )
                for epoch in range(start_epoch, model.config.epochs):
                    state.exchange.start_epoch(epoch)
                    logs = self.train_epoch(model, state, batches)
                    # The history entry IS the logs dict callbacks
                    # receive, so a callback annotating the logs (e.g.
                    # CheckpointCallback's guard_interrupted_saves delta)
                    # annotates the history too.
                    logs["epoch"] = float(epoch)
                    model.history.append(logs)
                    state.epoch = epoch
                    stop = False
                    for callback in run_callbacks:
                        stop = callback.on_epoch_end(model, epoch, logs) or stop
                    if stop:
                        break
            finally:
                state.exchange.close()
            for callback in run_callbacks:
                callback.on_fit_end(model)
        model.eval()
        model._fitted = True
        return model

"""Deterministic fault injection for the training runtime.

The recovery paths of :mod:`repro.training.resilience` (skip batch, LR
backoff, checkpoint restore, graceful degradation) only earn their keep if
they are exercised in CI rather than theoretical.  This module makes the
three failure modes the ContraTopic objective actually produces —
NaN/Inf losses from the Gumbel-softmax/NPMI kernel, exploding gradients,
and writes interrupted mid-checkpoint — injectable on demand:

* :class:`FaultPlan` declares *what* to inject (explicit batch steps
  and/or a seed-driven rate), so a plan replays identically across runs.
* :class:`FaultInjector` is handed to
  :meth:`repro.models.base.NeuralTopicModel.fit` via ``faults=`` and
  corrupts losses/gradients at the planned steps.
* :func:`interrupted_writes` routes atomic checkpoint commits through the
  injector, simulating a crash after the bytes were written but before
  the rename published them — the final file must stay intact.

Everything is seed-driven (``numpy.random.default_rng``); no global state.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, TYPE_CHECKING

import numpy as np

from repro import io as _io
from repro.errors import ConfigError, ReproError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.nn.module import Parameter
    from repro.tensor.tensor import Tensor


class InjectedFault(ReproError, RuntimeError):
    """Raised by the harness to simulate a crash (e.g. mid-checkpoint)."""


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, replayable description of the faults to inject.

    ``*_steps`` name explicit 0-based batch steps (global across epochs);
    ``*_rate`` adds seed-driven Bernoulli injection on top.  A plan with
    the same fields and seed injects at exactly the same steps every run.
    """

    nan_loss_steps: tuple[int, ...] = ()
    nan_loss_rate: float = 0.0
    exploding_grad_steps: tuple[int, ...] = ()
    exploding_grad_rate: float = 0.0
    #: Multiplier applied to gradients at injection steps.  The default is
    #: large enough that the squared global norm overflows to +inf, which
    #: is what a genuine blow-up looks like to the finiteness guard.
    grad_scale: float = 1e200
    #: 0-based indices of checkpoint commits to interrupt (requires the
    #: :func:`interrupted_writes` context to be active).
    interrupt_saves: tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("nan_loss_rate", "exploding_grad_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must lie in [0, 1], got {rate}")
        if self.grad_scale <= 1.0:
            raise ConfigError("grad_scale must exceed 1")


class FaultInjector:
    """Executes a :class:`FaultPlan` against a live training loop.

    The fit loop calls :meth:`corrupt_loss` once per batch (advancing the
    injector's step counter) and :meth:`corrupt_gradients` after backward;
    checkpoint commits reach :meth:`on_commit` through the
    :func:`interrupted_writes` context.  ``counts`` tallies every injected
    fault, so tests can assert the harness actually fired.
    """

    def __init__(self, plan: FaultPlan | None = None, **plan_kwargs):
        if plan is not None and plan_kwargs:
            raise ConfigError("pass either a FaultPlan or keyword fields, not both")
        self.plan = plan or FaultPlan(**plan_kwargs)
        self._rng = np.random.default_rng(self.plan.seed)
        self._step = -1
        self._commits = 0
        self.counts = {"nan_loss": 0, "exploding_grad": 0, "interrupted_saves": 0}

    # ------------------------------------------------------------------
    def _planned(self, steps: Sequence[int], rate: float) -> bool:
        by_step = self._step in steps
        by_rate = rate > 0.0 and float(self._rng.random()) < rate
        return by_step or by_rate

    def corrupt_loss(self, loss: "Tensor") -> bool:
        """Advance one batch step; overwrite the loss with NaN if planned."""
        self._step += 1
        if not self._planned(self.plan.nan_loss_steps, self.plan.nan_loss_rate):
            return False
        loss.data = np.full_like(np.asarray(loss.data, dtype=np.float64), np.nan)
        self.counts["nan_loss"] += 1
        return True

    def corrupt_gradients(self, parameters: Iterable["Parameter"]) -> bool:
        """Scale every gradient by ``grad_scale`` if planned for this step."""
        if not self._planned(
            self.plan.exploding_grad_steps, self.plan.exploding_grad_rate
        ):
            return False
        for p in parameters:
            if p.grad is not None:
                p.grad = p.grad * self.plan.grad_scale
        self.counts["exploding_grad"] += 1
        return True

    def on_commit(self, category: str) -> None:
        """Commit hook: crash the planned checkpoint publications."""
        if category != "checkpoint":
            return
        index = self._commits
        self._commits += 1
        if index in self.plan.interrupt_saves:
            self.counts["interrupted_saves"] += 1
            raise InjectedFault(
                f"injected crash during checkpoint commit #{index}"
            )


@contextlib.contextmanager
def interrupted_writes(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Route atomic checkpoint commits through ``injector.on_commit``.

    While active, the commits named by ``plan.interrupt_saves`` raise
    :class:`InjectedFault` *after* the tmp file was written but *before*
    the rename — exactly the window a real crash would hit.  The final
    path is guaranteed untouched (that is the property under test).
    """
    _io._COMMIT_HOOKS.append(injector.on_commit)
    try:
        yield injector
    finally:
        _io._COMMIT_HOOKS.remove(injector.on_commit)

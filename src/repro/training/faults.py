"""Deterministic fault injection for the training runtime.

The recovery paths of :mod:`repro.training.resilience` (skip batch, LR
backoff, checkpoint restore, graceful degradation) only earn their keep if
they are exercised in CI rather than theoretical.  This module makes the
three failure modes the ContraTopic objective actually produces —
NaN/Inf losses from the Gumbel-softmax/NPMI kernel, exploding gradients,
and writes interrupted mid-checkpoint — injectable on demand:

* :class:`FaultPlan` declares *what* to inject (explicit batch steps
  and/or a seed-driven rate), so a plan replays identically across runs.
* :class:`FaultInjector` is handed to
  :meth:`repro.models.base.NeuralTopicModel.fit` via ``faults=`` and
  corrupts losses/gradients at the planned steps.
* :func:`interrupted_writes` routes atomic write commits through the
  injector, simulating a crash after the bytes were written but before
  the rename published them — the final file must stay intact.  The
  ``interrupt_categories`` plan field picks which write categories are
  targeted (checkpoints by default; reports/baselines opt in).

The online inference service (:mod:`repro.serving`) injects its own
failure modes through the same harness: per-batch latency spikes,
NaN/Inf model outputs, worker death mid-batch
(:meth:`FaultInjector.on_serve_batch`), and corrupt checkpoint files at
hot-reload time (:meth:`FaultInjector.corrupt_checkpoint`).  Serving
draws use an RNG stream independent of the training stream, so enabling
serving chaos never shifts which *training* steps a plan injects at.

Everything is seed-driven (``numpy.random.default_rng``); no global state.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence, TYPE_CHECKING

import numpy as np

from repro import io as _io
from repro.errors import ConfigError, ReproError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.nn.module import Parameter
    from repro.tensor.tensor import Tensor


class InjectedFault(ReproError, RuntimeError):
    """Raised by the harness to simulate a crash (e.g. mid-checkpoint)."""


#: Spawn key separating the serving RNG stream from the training stream.
_SERVE_STREAM_KEY = 0x5E1F


@dataclass(frozen=True)
class ServeFault:
    """The injector's decision for one serving micro-batch attempt.

    ``latency_seconds`` > 0 asks the service to sleep before executing;
    ``nan_output`` corrupts the model's outputs after the forward pass;
    ``worker_death`` asks the executor shim to raise
    :class:`InjectedFault` mid-batch.  All three can fire on the same
    attempt.
    """

    latency_seconds: float = 0.0
    nan_output: bool = False
    worker_death: bool = False

    @property
    def any(self) -> bool:
        """True when at least one fault fires this attempt."""
        return self.latency_seconds > 0 or self.nan_output or self.worker_death


#: A decision with no faults, shared by the no-injector fast path.
NO_SERVE_FAULT = ServeFault()


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, replayable description of the faults to inject.

    ``*_steps`` name explicit 0-based batch steps (global across epochs);
    ``*_rate`` adds seed-driven Bernoulli injection on top.  A plan with
    the same fields and seed injects at exactly the same steps every run.
    """

    nan_loss_steps: tuple[int, ...] = ()
    nan_loss_rate: float = 0.0
    exploding_grad_steps: tuple[int, ...] = ()
    exploding_grad_rate: float = 0.0
    #: Multiplier applied to gradients at injection steps.  The default is
    #: large enough that the squared global norm overflows to +inf, which
    #: is what a genuine blow-up looks like to the finiteness guard.
    grad_scale: float = 1e200
    #: 0-based indices of atomic-write commits to interrupt (requires the
    #: :func:`interrupted_writes` context to be active).  Only commits
    #: whose category is listed in ``interrupt_categories`` are counted.
    interrupt_saves: tuple[int, ...] = ()
    #: Which :func:`repro.io.atomic_write` categories the interrupt plan
    #: targets.  ``("checkpoint",)`` preserves the historical behaviour;
    #: add ``"report"`` to also crash BENCH-report/baseline publications.
    interrupt_categories: tuple[str, ...] = ("checkpoint",)
    #: Serving chaos — latency spikes: sleep ``serve_latency_seconds``
    #: before the named micro-batch attempts (and/or at a seeded rate).
    serve_latency_steps: tuple[int, ...] = ()
    serve_latency_rate: float = 0.0
    serve_latency_seconds: float = 0.05
    #: Serving chaos — overwrite the model's outputs with NaN for the
    #: named micro-batch attempts (the circuit breaker's trigger).
    serve_nan_steps: tuple[int, ...] = ()
    serve_nan_rate: float = 0.0
    #: Serving chaos — kill the worker mid-batch (raises
    #: :class:`InjectedFault` inside the batch executor; the service's
    #: retry-with-backoff path must absorb it).
    serve_death_steps: tuple[int, ...] = ()
    serve_death_rate: float = 0.0
    #: 0-based indices of checkpoint *loads* to corrupt: the file is
    #: truncated on disk just before the registry reads it, so the
    #: checksum validation must reject it and roll back to last-good.
    corrupt_checkpoint_loads: tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "nan_loss_rate",
            "exploding_grad_rate",
            "serve_latency_rate",
            "serve_nan_rate",
            "serve_death_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must lie in [0, 1], got {rate}")
        if self.grad_scale <= 1.0:
            raise ConfigError("grad_scale must exceed 1")
        if self.serve_latency_seconds < 0:
            raise ConfigError("serve_latency_seconds must be >= 0")
        if not self.interrupt_categories or not all(
            isinstance(c, str) and c for c in self.interrupt_categories
        ):
            raise ConfigError(
                "interrupt_categories must be a non-empty tuple of "
                "category names"
            )


class FaultInjector:
    """Executes a :class:`FaultPlan` against a live training loop.

    The fit loop calls :meth:`corrupt_loss` once per batch (advancing the
    injector's step counter) and :meth:`corrupt_gradients` after backward;
    checkpoint commits reach :meth:`on_commit` through the
    :func:`interrupted_writes` context.  ``counts`` tallies every injected
    fault, so tests can assert the harness actually fired.
    """

    def __init__(self, plan: FaultPlan | None = None, **plan_kwargs):
        if plan is not None and plan_kwargs:
            raise ConfigError("pass either a FaultPlan or keyword fields, not both")
        self.plan = plan or FaultPlan(**plan_kwargs)
        self._rng = np.random.default_rng(self.plan.seed)
        # Independent stream for serving draws: turning serving chaos on
        # or off must not shift which training steps the plan injects at.
        self._serve_rng = np.random.default_rng(
            np.random.SeedSequence((self.plan.seed, _SERVE_STREAM_KEY))
        )
        self._step = -1
        self._serve_step = -1
        self._commits = 0
        self._loads = 0
        self.counts = {
            "nan_loss": 0,
            "exploding_grad": 0,
            "interrupted_saves": 0,
            "serve_latency": 0,
            "serve_nan": 0,
            "serve_death": 0,
            "corrupted_loads": 0,
        }

    # ------------------------------------------------------------------
    def _planned(self, steps: Sequence[int], rate: float) -> bool:
        by_step = self._step in steps
        by_rate = rate > 0.0 and float(self._rng.random()) < rate
        return by_step or by_rate

    def corrupt_loss(self, loss: "Tensor") -> bool:
        """Advance one batch step; overwrite the loss with NaN if planned."""
        self._step += 1
        if not self._planned(self.plan.nan_loss_steps, self.plan.nan_loss_rate):
            return False
        loss.data = np.full_like(np.asarray(loss.data, dtype=np.float64), np.nan)
        self.counts["nan_loss"] += 1
        return True

    def corrupt_gradients(self, parameters: Iterable["Parameter"]) -> bool:
        """Scale every gradient by ``grad_scale`` if planned for this step."""
        if not self._planned(
            self.plan.exploding_grad_steps, self.plan.exploding_grad_rate
        ):
            return False
        for p in parameters:
            if p.grad is not None:
                p.grad = p.grad * self.plan.grad_scale
        self.counts["exploding_grad"] += 1
        return True

    def on_commit(self, category: str) -> None:
        """Commit hook: crash the planned atomic-write publications.

        Only commits whose ``category`` is listed in the plan's
        ``interrupt_categories`` advance the commit counter and can be
        interrupted — the default targets checkpoints only.
        """
        if category not in self.plan.interrupt_categories:
            return
        index = self._commits
        self._commits += 1
        if index in self.plan.interrupt_saves:
            self.counts["interrupted_saves"] += 1
            raise InjectedFault(
                f"injected crash during {category} commit #{index}"
            )

    # ------------------------------------------------------------------
    # serving chaos
    # ------------------------------------------------------------------
    def _serve_planned(self, steps: Sequence[int], rate: float) -> bool:
        by_step = self._serve_step in steps
        by_rate = rate > 0.0 and float(self._serve_rng.random()) < rate
        return by_step or by_rate

    def on_serve_batch(self) -> ServeFault:
        """Advance one serving attempt; return the faults to inject.

        The step counter advances per *attempt* (not per micro-batch), so
        a plan can fail attempt 0 and let the retry at attempt 1 succeed —
        which is exactly how the retry-with-backoff path is exercised
        deterministically.
        """
        self._serve_step += 1
        latency = 0.0
        if self._serve_planned(
            self.plan.serve_latency_steps, self.plan.serve_latency_rate
        ):
            latency = self.plan.serve_latency_seconds
            self.counts["serve_latency"] += 1
        nan = self._serve_planned(self.plan.serve_nan_steps, self.plan.serve_nan_rate)
        if nan:
            self.counts["serve_nan"] += 1
        death = self._serve_planned(
            self.plan.serve_death_steps, self.plan.serve_death_rate
        )
        if death:
            self.counts["serve_death"] += 1
        return ServeFault(
            latency_seconds=latency, nan_output=nan, worker_death=death
        )

    def corrupt_checkpoint(self, path) -> bool:
        """Truncate the planned checkpoint files just before a hot load.

        Called by :meth:`repro.serving.ModelRegistry.load` with the file
        about to be read.  When the current load index is planned, the
        file is truncated to half its size **on disk** (this is a chaos
        harness — hand it a copy, not your only checkpoint) so the
        content-checksum validation must reject it.  Returns True when
        the file was corrupted.
        """
        index = self._loads
        self._loads += 1
        if index not in self.plan.corrupt_checkpoint_loads:
            return False
        path = Path(path)
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
        self.counts["corrupted_loads"] += 1
        return True


@contextlib.contextmanager
def interrupted_writes(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Route atomic write commits through ``injector.on_commit``.

    While active, the commits named by ``plan.interrupt_saves`` (counted
    over the categories in ``plan.interrupt_categories`` — checkpoints by
    default, reports/baselines when listed) raise :class:`InjectedFault`
    *after* the tmp file was written but *before* the rename — exactly
    the window a real crash would hit.  The final path is guaranteed
    untouched (that is the property under test).
    """
    _io._COMMIT_HOOKS.append(injector.on_commit)
    try:
        yield injector
    finally:
        _io._COMMIT_HOOKS.remove(injector.on_commit)

"""Deterministic seeding helpers.

Every stochastic component in the library takes an explicit
``numpy.random.Generator`` or integer seed; these helpers centralize the
conventions so multi-seed experiment sweeps are reproducible bit-for-bit.
"""

from __future__ import annotations

import random

import numpy as np


def set_global_seed(seed: int) -> None:
    """Seed Python's and numpy's legacy global RNGs.

    The library itself never uses global RNG state, but user code and
    examples may; this is a convenience for them.
    """
    random.seed(seed)
    np.random.seed(seed % (2**32))


def spawn_rng(seed: int, stream: int = 0) -> np.random.Generator:
    """An independent generator for (seed, stream).

    Uses :class:`numpy.random.SeedSequence` spawning so distinct streams
    are statistically independent even for adjacent seeds.
    """
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(stream,)))


def spawn_task_seed(seed: int, task_index: int, stream: int = 0) -> int:
    """A stable integer seed for task ``task_index`` of a fan-out.

    Extends the :func:`spawn_rng` convention by one spawn-key level —
    ``(stream, task_index)`` — so every task of a parallel map draws from
    its own statistically-independent stream.  The derivation depends only
    on ``(seed, stream, task_index)``, never on which worker process runs
    the task or in what order tasks complete, which is what makes
    :mod:`repro.parallel` results identical across worker counts.
    """
    sequence = np.random.SeedSequence(entropy=seed, spawn_key=(stream, task_index))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def spawn_task_rng(seed: int, task_index: int, stream: int = 0) -> np.random.Generator:
    """The generator form of :func:`spawn_task_seed` (same spawn key)."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(stream, task_index))
    )

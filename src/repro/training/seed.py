"""Deterministic seeding helpers.

Every stochastic component in the library takes an explicit
``numpy.random.Generator`` or integer seed; these helpers centralize the
conventions so multi-seed experiment sweeps are reproducible bit-for-bit.
"""

from __future__ import annotations

import random

import numpy as np


def set_global_seed(seed: int) -> None:
    """Seed Python's and numpy's legacy global RNGs.

    The library itself never uses global RNG state, but user code and
    examples may; this is a convenience for them.
    """
    random.seed(seed)
    np.random.seed(seed % (2**32))


def spawn_rng(seed: int, stream: int = 0) -> np.random.Generator:
    """An independent generator for (seed, stream).

    Uses :class:`numpy.random.SeedSequence` spawning so distinct streams
    are statistically independent even for adjacent seeds.
    """
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(stream,)))

"""Training & evaluation protocol layer.

Wraps model fitting with the paper's evaluation protocol: NPMI computed on
the *test* set ("we evaluate the topic coherence on the unseen test data to
make fair comparisons"), coherence/diversity by topic percentage, KMeans
clustering of document-topic vectors, and the three-random-seed averaging
of §V.F.
"""

from repro.training.seed import (
    set_global_seed,
    spawn_rng,
    spawn_task_rng,
    spawn_task_seed,
)
from repro.training.protocol import (
    EvaluationResult,
    evaluate_model,
    train_and_evaluate,
    multi_seed_evaluation,
    CLUSTER_COUNTS,
)
from repro.training.callbacks import (
    Callback,
    EarlyStopping,
    HistoryLogger,
    LambdaCallback,
    ValidationEvaluator,
)
from repro.training.faults import (
    FaultInjector,
    FaultPlan,
    InjectedFault,
    interrupted_writes,
)
from repro.training.resilience import (
    CheckpointCallback,
    GuardPolicy,
    TrainingGuard,
    save_training_checkpoint,
)
from repro.training.trainer import (
    CheckpointSpec,
    RunSpec,
    Trainer,
    TrainState,
    capture_training_state,
    restore_training_state,
)


def __getattr__(name: str):
    # Lazy re-export: repro.telemetry.callback subclasses Callback from
    # this package, so a top-level import here would be circular.
    if name == "TelemetryCallback":
        from repro.telemetry.callback import TelemetryCallback

        return TelemetryCallback
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "set_global_seed",
    "spawn_rng",
    "spawn_task_rng",
    "spawn_task_seed",
    "EvaluationResult",
    "evaluate_model",
    "train_and_evaluate",
    "multi_seed_evaluation",
    "CLUSTER_COUNTS",
    "Callback",
    "CheckpointCallback",
    "CheckpointSpec",
    "EarlyStopping",
    "FaultInjector",
    "FaultPlan",
    "GuardPolicy",
    "HistoryLogger",
    "InjectedFault",
    "LambdaCallback",
    "RunSpec",
    "TelemetryCallback",
    "Trainer",
    "TrainingGuard",
    "TrainState",
    "ValidationEvaluator",
    "capture_training_state",
    "interrupted_writes",
    "restore_training_state",
    "save_training_checkpoint",
]

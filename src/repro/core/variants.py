"""Ablation variants of ContraTopic (paper Table II).

* ``full``          — the complete model.
* ``P``  (-P)       — positive pairs only (coherence, no diversity push).
* ``N``  (-N)       — negative pairs only (diversity, no coherence pull).
* ``I``  (-I)       — K(·) = word-embedding inner product instead of NPMI.
* ``S``  (-S)       — no Gumbel sampling; the expectation v·β feeds L_con.
"""

from __future__ import annotations

import numpy as np

from repro.core.contrastive import ContrastiveMode
from repro.core.contratopic import ContraTopic, ContraTopicConfig
from repro.core.similarity import SimilarityKernel, embedding_kernel, npmi_kernel
from repro.errors import ConfigError
from repro.metrics.npmi import NpmiMatrix
from repro.models.base import NeuralTopicModel

VARIANT_NAMES = ("full", "P", "N", "I", "S")


def build_variant(
    name: str,
    backbone: NeuralTopicModel,
    npmi: NpmiMatrix,
    word_embeddings: np.ndarray | None = None,
    lambda_weight: float = 40.0,
    num_sampled_words: int = 10,
    gumbel_temperature: float = 0.5,
    kernel_temperature: float = 0.25,
    negative_weight: float = 3.0,
) -> ContraTopic:
    """Construct a named Table-II variant around ``backbone``.

    ``word_embeddings`` is only required for the ``I`` variant.
    """
    if name not in VARIANT_NAMES:
        raise ConfigError(f"unknown variant {name!r}; choose from {VARIANT_NAMES}")

    kernel: SimilarityKernel
    if name == "I":
        if word_embeddings is None:
            raise ConfigError("variant 'I' requires word embeddings")
        kernel = embedding_kernel(word_embeddings, temperature=kernel_temperature)
    else:
        kernel = npmi_kernel(npmi, temperature=kernel_temperature)

    mode = ContrastiveMode.FULL
    if name == "P":
        mode = ContrastiveMode.POSITIVE_ONLY
    elif name == "N":
        mode = ContrastiveMode.NEGATIVE_ONLY

    config = ContraTopicConfig(
        lambda_weight=lambda_weight,
        num_sampled_words=num_sampled_words,
        gumbel_temperature=gumbel_temperature,
        mode=mode,
        use_sampling=(name != "S"),
        negative_weight=negative_weight,
    )
    return ContraTopic(backbone, kernel, config)

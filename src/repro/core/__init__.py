"""ContraTopic: the paper's primary contribution.

* :mod:`repro.core.subset_sampling` — the relaxed Gumbel top-k sampler
  (Eqs. 3-5; Xie & Ermon 2019) that draws v words per topic without
  replacement, differentiably.
* :mod:`repro.core.similarity` — the similarity kernels K(·): pre-computed
  corpus NPMI (the paper's choice) or word-embedding inner product (the
  ContraTopic-I ablation).
* :mod:`repro.core.contrastive` — the topic-wise supervised-contrastive
  loss (Eq. 2) over relaxed word samples.
* :mod:`repro.core.contratopic` — the full model: any NTM backbone +
  λ·L_con (Eq. 6), trained per Algorithm 1.
* :mod:`repro.core.variants` — the Table-II ablation variants
  (-P, -N, -I, -S).
"""

from repro.core.subset_sampling import (
    relaxed_topk_sample,
    hard_topk_sample,
    sample_gumbel,
)
from repro.core.similarity import npmi_kernel, embedding_kernel, SimilarityKernel
from repro.core.contrastive import topic_contrastive_loss, ContrastiveMode
from repro.core.contratopic import ContraTopic, ContraTopicConfig
from repro.core.variants import build_variant, VARIANT_NAMES

__all__ = [
    "relaxed_topk_sample",
    "hard_topk_sample",
    "sample_gumbel",
    "npmi_kernel",
    "embedding_kernel",
    "SimilarityKernel",
    "topic_contrastive_loss",
    "ContrastiveMode",
    "ContraTopic",
    "ContraTopicConfig",
    "build_variant",
    "VARIANT_NAMES",
]

"""Similarity kernels K(·) for the topic-wise contrastive regularizer.

The paper's K(·) "can be implemented with dot product of word embeddings or
the pre-computed Normalized Point-wise Mutual Information (NPMI) in the
corpus", and the paper argues for (and uses) NPMI; the embedding inner
product is the ContraTopic-I ablation.

A kernel here is a constant V×V matrix of pairwise word similarities; the
contrastive loss consumes ``exp(kernel)`` (Eq. 2 exponentiates K), which is
precomputed once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.metrics.npmi import NpmiMatrix


@dataclass
class SimilarityKernel:
    """A precomputed pairwise word-similarity kernel and its exponential.

    ``temperature`` divides the similarities inside the exponential of
    Eq. 2 (standard contrastive-learning practice, cf. SupCon's τ): with
    similarities in [-1, 1], a small temperature sharpens the contrast
    between related and unrelated word pairs so positive/negative structure
    is not drowned by the O(K·v) noise floor of the denominator.
    """

    name: str
    matrix: np.ndarray      # (V, V) similarities, symmetric
    exp_matrix: np.ndarray  # exp(matrix / temperature), precomputed for Eq. 2
    temperature: float = 1.0
    #: Monotonically increasing revision of :attr:`matrix`.  A streaming
    #: consumer bumps it through :meth:`refresh` after mutating the
    #: matrix in place; the per-dtype tensor caches below are refreshed
    #: by delta (values copied into the existing buffers) instead of
    #: being thrown away and reallocated.
    version: int = 0

    @property
    def vocab_size(self) -> int:
        return self.matrix.shape[0]

    def refresh(self, matrix: np.ndarray | None = None) -> int:
        """Recompute :attr:`exp_matrix` in place after the matrix moved.

        The streaming update path: mutate :attr:`matrix` in place (or
        pass ``matrix`` to have its values copied in), then ``refresh``
        re-exponentiates into the *existing* ``exp_matrix`` buffer,
        bumps :attr:`version`, and rewrites every cached constant tensor
        in place — no V×V reallocations, and any long-lived reference to
        the cached tensors observes the new values.  Returns the new
        version.
        """
        if matrix is not None and matrix is not self.matrix:
            if matrix.shape != self.matrix.shape:
                raise ShapeError(
                    f"refresh matrix shape {matrix.shape} != kernel shape "
                    f"{self.matrix.shape}"
                )
            np.copyto(self.matrix, matrix)
        np.divide(self.matrix, self.temperature, out=self.exp_matrix)
        np.exp(self.exp_matrix, out=self.exp_matrix)
        self.version += 1
        cache = self.__dict__.get("_tensor_cache") or {}
        for exp_t, diag_t in cache.values():
            if exp_t.data is not self.exp_matrix:
                np.copyto(exp_t.data, self.exp_matrix)
            np.copyto(diag_t.data, np.diagonal(exp_t.data))
        return self.version

    # ------------------------------------------------------------------
    # constant-tensor cache
    # ------------------------------------------------------------------
    # The contrastive loss consumes exp(K) and its diagonal as constant
    # Tensors every training step.  Re-wrapping the (V, V) matrix per batch
    # is wasted work — under a float32 policy it would even re-copy the
    # whole matrix each call — so the wrappers are cached per dtype.

    def exp_matrix_tensor(self, dtype: np.dtype) -> "Tensor":
        """Cached constant ``Tensor(exp_matrix)`` in ``dtype``."""
        return self._cached(dtype)[0]

    def exp_diag_tensor(self, dtype: np.dtype) -> "Tensor":
        """Cached constant ``Tensor(diag(exp_matrix))`` in ``dtype``."""
        return self._cached(dtype)[1]

    def _cached(self, dtype: np.dtype) -> "tuple[Tensor, Tensor]":
        from repro.tensor.tensor import Tensor  # local: avoid import cycle

        dtype = np.dtype(dtype)
        cache = self.__dict__.setdefault("_tensor_cache", {})
        entry = cache.get(dtype)
        if entry is None:
            exp = self.exp_matrix.astype(dtype, copy=False)
            entry = (Tensor(exp), Tensor(np.ascontiguousarray(np.diag(exp))))
            cache[dtype] = entry
        return entry


def npmi_kernel(npmi: NpmiMatrix, temperature: float = 0.25) -> SimilarityKernel:
    """The paper's choice: K(w_i, w_j) = NPMI(w_i, w_j) ∈ [-1, 1].

    "the incorporation of mutual information estimation resonates with our
    contrastive term's objectives" (§IV.A).
    """
    if temperature <= 0:
        raise ShapeError("kernel temperature must be positive")
    matrix = npmi.matrix.copy()
    return SimilarityKernel(
        name="npmi",
        matrix=matrix,
        exp_matrix=np.exp(matrix / temperature),
        temperature=temperature,
    )


def embedding_kernel(
    word_embeddings: np.ndarray, temperature: float = 0.25
) -> SimilarityKernel:
    """ContraTopic-I: K = cosine inner product of (frozen) word embeddings.

    Embeddings are row-normalized so the kernel shares NPMI's [-1, 1]
    range, keeping λ comparable across kernels.
    """
    if temperature <= 0:
        raise ShapeError("kernel temperature must be positive")
    emb = np.asarray(word_embeddings, dtype=np.float64)
    if emb.ndim != 2:
        raise ShapeError(f"embeddings must be 2-D, got {emb.shape}")
    norms = np.linalg.norm(emb, axis=1, keepdims=True) + 1e-12
    unit = emb / norms
    matrix = np.clip(unit @ unit.T, -1.0, 1.0)
    return SimilarityKernel(
        name="inner",
        matrix=matrix,
        exp_matrix=np.exp(matrix / temperature),
        temperature=temperature,
    )

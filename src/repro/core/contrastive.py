"""The topic-wise contrastive loss (Eq. 2) over relaxed word samples.

With hard samples, Eq. 2 reads, for every anchor word i drawn from topic k,

    L_con = Σ_i -log(  Σ_{p ∈ P(i)} exp(K(i, p))  /  Σ_{a ≠ i} exp(K(i, a)) )

where P(i) are the other words sampled from i's topic.  With the relaxed
v-hot vectors y_k ∈ [0,1]^V produced by the subset sampler, every word w is
a *soft* anchor of topic k with weight y_k[w], and the sums over sampled
words become weighted sums over the vocabulary:

    S[k, w]   = Σ_{w'} y_k[w'] · exp(K(w, w'))           (one matmul y·E)
    pos[k, w] = S[k, w] − y_k[w]·exp(K(w, w))            (exclude the anchor)
    den[k, w] = Σ_l S[l, w] − y_k[w]·exp(K(w, w))        (all other samples)
    L_con     = Σ_k Σ_w y_k[w] · ( log den[k, w] − log pos[k, w] ) / (K·v)

This reduces to the hard-sample Eq. 2 exactly when each y_k is a 0/1
indicator, and is differentiable in y (hence in β) otherwise.  The single
``(K,V)·(V,V)`` product makes the cost O(K·V²) per step — the Θ(V²) memory
for exp(K) is the cost the paper's §V.E analyses.
"""

from __future__ import annotations

import enum

from repro.core.similarity import SimilarityKernel
from repro.errors import ShapeError
from repro.tensor.tensor import Tensor, as_tensor

_EPS = 1e-12


class ContrastiveMode(str, enum.Enum):
    """Which parts of the contrastive objective are active.

    FULL is ContraTopic; POSITIVE_ONLY / NEGATIVE_ONLY are the Table-II
    ablation variants ContraTopic-P and ContraTopic-N.
    """

    FULL = "full"
    POSITIVE_ONLY = "positive"
    NEGATIVE_ONLY = "negative"


def topic_contrastive_loss(
    samples: Tensor,
    kernel: SimilarityKernel,
    mode: ContrastiveMode = ContrastiveMode.FULL,
    negative_weight: float = 1.0,
) -> Tensor:
    """Topic-wise contrastive loss over relaxed (or hard) word samples.

    Parameters
    ----------
    samples:
        ``(K, V)`` relaxed v-hot sample weights per topic (rows sum to v).
        Hard 0/1 indicator rows are a special case.
    kernel:
        Precomputed similarity kernel (NPMI or embedding inner product).
    mode:
        FULL uses Eq. 2; POSITIVE_ONLY maximizes within-topic similarity
        only; NEGATIVE_ONLY minimizes cross-topic similarity only.
    negative_weight:
        Multiplier on the cross-topic (negative-pair) mass in the
        denominator.  1.0 is the plain Eq. 2; the paper's §IV.B notes that
        "incorporating a hyper-parameter to balance the weights of negative
        word pairs can also be considered if necessary" — values > 1 push
        harder for topic diversity.

    Returns
    -------
    Scalar tensor, normalized by the total sample weight so that λ has a
    comparable scale across K and v choices.
    """
    samples = as_tensor(samples)
    if samples.ndim != 2:
        raise ShapeError(f"samples must be (K, V), got {samples.shape}")
    k, v = samples.shape
    if kernel.vocab_size != v:
        raise ShapeError(
            f"kernel vocab {kernel.vocab_size} != samples vocab {v}"
        )

    # Constant tensors are cached on the kernel (per dtype): re-wrapping
    # the (V, V) matrix every batch costs an astype copy under float32.
    dtype = samples.data.dtype
    exp_kernel = kernel.exp_matrix_tensor(dtype)    # (V, V), constant
    diag = kernel.exp_diag_tensor(dtype)            # (V,), constant

    # S[k, w] = Σ_w' y[k, w'] exp(K(w, w'))  — kernel is symmetric.
    similarity_sums = samples @ exp_kernel           # (K, V)
    self_term = samples * diag                       # anchor's own pair
    positives = similarity_sums - self_term + _EPS   # (K, V)
    total = similarity_sums.sum(axis=0, keepdims=True)  # Σ_l S[l, w], (1, V)
    negatives = total - similarity_sums + _EPS       # cross-topic part
    denominators = positives + negatives * negative_weight + _EPS

    if mode is ContrastiveMode.FULL:
        per_anchor = denominators.log() - positives.log()
    elif mode is ContrastiveMode.POSITIVE_ONLY:
        per_anchor = -positives.log()
    elif mode is ContrastiveMode.NEGATIVE_ONLY:
        per_anchor = negatives.log()
    else:  # pragma: no cover - exhaustive enum
        raise ShapeError(f"unknown mode {mode!r}")
    total_weight = samples.sum() + _EPS
    return (samples * per_anchor).sum() / total_weight

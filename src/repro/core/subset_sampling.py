"""Differentiable top-k subset sampling without replacement.

Implements the relaxed subset sampler of Xie & Ermon (2019) used in the
paper's §IV.B: given topic-word distributions β and Gumbel noise g, a
Gumbel-max *key* is computed per word,

    r̂_k = log β_k + g_k                                    (per Eq. 3's logits)

and a relaxed top-v procedure is applied to the keys:

    p(r_k^j = 1) = softmax(r_k^j / τ)                       (Eq. 5)
    r_k^{j+1}   = r_k^j + log(1 - p(r_k^j = 1))             (Eq. 4)

The relaxed v-hot sample is y_k = Σ_{j=1..v} p(r_k^j = 1)   — a vector in
[0, 1]^V summing to v that converges to the exact hard top-v indicator as
τ → 0, while remaining differentiable w.r.t. β for any τ > 0.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tensor import fused
from repro.tensor.tensor import Tensor, as_tensor
from repro.tensor.tensor import where as tensor_where

_EPS = 1e-12


def sample_gumbel(
    shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Standard Gumbel(0, 1) noise: ``-log(-log U)`` with U ~ Uniform(0,1)."""
    uniform = rng.random(shape)
    return -np.log(-np.log(np.clip(uniform, _EPS, 1.0 - _EPS)))


def relaxed_topk_sample(
    log_probs: Tensor,
    num_samples: int,
    temperature: float,
    gumbel_noise: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Relaxed v-hot subset sample per row of ``log_probs``.

    Parameters
    ----------
    log_probs:
        ``(K, V)`` differentiable log-probabilities (log β).
    num_samples:
        v — number of words drawn per topic, without replacement.
    temperature:
        τ_g of Eq. 5; smaller means closer to a hard top-v.
    gumbel_noise:
        Pre-drawn ``(K, V)`` Gumbel noise; if absent, drawn from ``rng``.

    Returns
    -------
    ``(K, V)`` tensor y with entries in [0, 1] and rows summing to
    ``num_samples``.
    """
    log_probs = as_tensor(log_probs)
    k, v = log_probs.shape
    if not 1 <= num_samples <= v:
        raise ConfigError(f"num_samples must be in [1, {v}], got {num_samples}")
    if temperature <= 0:
        raise ConfigError("temperature must be positive")
    if gumbel_noise is None:
        if rng is None:
            raise ConfigError("provide gumbel_noise or rng")
        gumbel_noise = sample_gumbel((k, v), rng)

    keys = log_probs + Tensor(np.asarray(gumbel_noise), dtype=log_probs.data.dtype)
    inv_temp = 1.0 / temperature
    y: Tensor | None = None
    r = keys
    for _ in range(num_samples):
        # Eq. 5: softmax of the tempered keys (fused max-shifted kernel).
        p = fused.softmax(r * inv_temp, axis=1)
        y = p if y is None else y + p
        # Eq. 4's suppression log(1 - p).  For p -> 1 the log diverges and
        # a merely-large finite value may still lose to words whose own
        # log-probability is extremely negative; once a word is effectively
        # fully selected, knock it out with a decisive constant penalty
        # (no gradient flows through the saturated branch anyway).
        saturated = p.data > 1.0 - 1e-4
        suppression = tensor_where(
            saturated,
            Tensor(np.full(p.shape, -1e6, dtype=p.data.dtype)),
            (1.0 - p.clip(high=1.0 - 1e-4) + _EPS).log(),
        )
        r = r + suppression
    assert y is not None
    return y


def hard_topk_sample(
    log_probs: np.ndarray,
    num_samples: int,
    gumbel_noise: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Exact (non-relaxed) Gumbel-top-k sample: word ids, ``(K, v)``.

    This is the limit of :func:`relaxed_topk_sample` as τ → 0 under the
    same noise, used for evaluation and for checking the relaxation.
    """
    log_probs = np.asarray(log_probs, dtype=np.float64)
    if gumbel_noise is None:
        if rng is None:
            raise ConfigError("provide gumbel_noise or rng")
        gumbel_noise = sample_gumbel(log_probs.shape, rng)
    keys = log_probs + gumbel_noise
    return np.argsort(-keys, axis=1)[:, :num_samples]

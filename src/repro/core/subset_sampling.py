"""Differentiable top-k subset sampling without replacement.

Implements the relaxed subset sampler of Xie & Ermon (2019) used in the
paper's §IV.B: given topic-word distributions β and Gumbel noise g, a
Gumbel-max *key* is computed per word,

    r̂_k = log β_k + g_k                                    (per Eq. 3's logits)

and a relaxed top-v procedure is applied to the keys:

    p(r_k^j = 1) = softmax(r_k^j / τ)                       (Eq. 5)
    r_k^{j+1}   = r_k^j + log(1 - p(r_k^j = 1))             (Eq. 4)

The relaxed v-hot sample is y_k = Σ_{j=1..v} p(r_k^j = 1)   — a vector in
[0, 1]^V summing to v that converges to the exact hard top-v indicator as
τ → 0, while remaining differentiable w.r.t. β for any τ > 0.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tensor import fused
from repro.tensor.tensor import Tensor, as_tensor
from repro.tensor.tensor import where as tensor_where

_EPS = 1e-12


def sample_gumbel(
    shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Standard Gumbel(0, 1) noise: ``-log(-log U)`` with U ~ Uniform(0,1)."""
    uniform = rng.random(shape)
    return -np.log(-np.log(np.clip(uniform, _EPS, 1.0 - _EPS)))


#: Once a word's selection probability exceeds this, it is knocked out
#: with a decisive constant penalty instead of ``log(1 - p)`` (which
#: diverges); no gradient flows through the saturated branch.
_SATURATION = 1.0 - 1e-4
_KNOCKOUT = -1e6


def _validate(log_probs: Tensor, num_samples: int, temperature: float) -> None:
    k, v = log_probs.shape
    if not 1 <= num_samples <= v:
        raise ConfigError(f"num_samples must be in [1, {v}], got {num_samples}")
    if temperature <= 0:
        raise ConfigError("temperature must be positive")


def _resolve_noise(
    log_probs: Tensor,
    gumbel_noise: np.ndarray | None,
    rng: np.random.Generator | None,
) -> np.ndarray:
    if gumbel_noise is None:
        if rng is None:
            raise ConfigError("provide gumbel_noise or rng")
        gumbel_noise = sample_gumbel(log_probs.shape, rng)
    return np.asarray(gumbel_noise)


def relaxed_topk_sample(
    log_probs: Tensor,
    num_samples: int,
    temperature: float,
    gumbel_noise: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Relaxed v-hot subset sample per row of ``log_probs``.

    Parameters
    ----------
    log_probs:
        ``(K, V)`` differentiable log-probabilities (log β).
    num_samples:
        v — number of words drawn per topic, without replacement.
    temperature:
        τ_g of Eq. 5; smaller means closer to a hard top-v.
    gumbel_noise:
        Pre-drawn ``(K, V)`` Gumbel noise; if absent, drawn from ``rng``.

    Returns
    -------
    ``(K, V)`` tensor y with entries in [0, 1] and rows summing to
    ``num_samples``.

    This is the fused kernel: the whole v-step recurrence runs in raw
    numpy as one graph node, with a single hand-derived backward that
    replays it in reverse (the per-step probabilities are kept from the
    forward).  The composed reference —
    :func:`relaxed_topk_sample_composed`, which builds ~6 graph nodes per
    step — stays as executable documentation; the two agree to 1e-8 in
    both values and gradients (see ``tests/core/test_subset_sampling.py``).
    The recurrence itself is inherently sequential in ``j`` (step ``j+1``
    reads step ``j``'s probabilities), so the fusion removes the
    per-step graph/closure overhead rather than the loop: v stays, but
    each iteration is two vectorised numpy passes over ``(K, V)``.
    """
    log_probs = as_tensor(log_probs)
    _validate(log_probs, num_samples, temperature)
    noise = _resolve_noise(log_probs, gumbel_noise, rng)
    dtype = log_probs.data.dtype
    inv_temp = 1.0 / temperature

    r = log_probs.data + noise.astype(dtype, copy=False)
    # Per-step selection probabilities, kept for the reverse sweep.
    probs = np.empty((num_samples, *log_probs.shape), dtype=dtype)
    out_data = np.zeros(log_probs.shape, dtype=dtype)
    for j in range(num_samples):
        # Eq. 5: max-shifted softmax of the tempered keys.
        p = r * inv_temp
        p -= p.max(axis=1, keepdims=True)
        np.exp(p, out=p)
        p /= p.sum(axis=1, keepdims=True)
        probs[j] = p
        out_data += p
        # Eq. 4's suppression log(1 - p), with the saturation knock-out.
        suppression = np.where(
            p > _SATURATION,
            dtype.type(_KNOCKOUT),
            np.log(1.0 - np.minimum(p, _SATURATION) + _EPS),
        )
        r = r + suppression

    def backward(grad: np.ndarray) -> None:
        if not log_probs.requires_grad:
            return
        # Reverse sweep of the recurrence.  ``gr`` carries dL/dr_{j+1};
        # each step folds in (a) the direct dL/dp_j = grad from the output
        # sum, (b) the suppression path p_j -> r_{j+1} whose derivative is
        # -1/(1 - p + eps) below saturation and exactly 0 above it (the
        # knock-out constant), then pushes both through the softmax.
        gr = np.zeros(log_probs.shape, dtype=dtype)
        for j in range(num_samples - 1, -1, -1):
            p = probs[j]
            gp = np.where(
                p > _SATURATION, 0.0, -1.0 / (1.0 - p + _EPS)
            )
            gp *= gr
            gp += grad
            inner = np.einsum("kv,kv->k", gp, p)[:, None]
            gr += (inv_temp * p) * (gp - inner)
        log_probs._accumulate(gr)

    return Tensor._make(out_data, (log_probs,), backward)


def relaxed_topk_sample_composed(
    log_probs: Tensor,
    num_samples: int,
    temperature: float,
    gumbel_noise: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Reference composition of :func:`relaxed_topk_sample`.

    Builds the recurrence from primitive autodiff ops (softmax / clip /
    log / where — ~6 graph nodes and closures per sampled word); the
    fused kernel must stay equivalent to this to 1e-8 in both the sample
    and the gradient.  Kept for tests and as executable documentation of
    Eqs. 4-5.
    """
    log_probs = as_tensor(log_probs)
    _validate(log_probs, num_samples, temperature)
    noise = _resolve_noise(log_probs, gumbel_noise, rng)

    keys = log_probs + Tensor(noise, dtype=log_probs.data.dtype)
    inv_temp = 1.0 / temperature
    y: Tensor | None = None
    r = keys
    for _ in range(num_samples):
        # Eq. 5: softmax of the tempered keys (fused max-shifted kernel).
        p = fused.softmax(r * inv_temp, axis=1)
        y = p if y is None else y + p
        # Eq. 4's suppression log(1 - p).  For p -> 1 the log diverges and
        # a merely-large finite value may still lose to words whose own
        # log-probability is extremely negative; once a word is effectively
        # fully selected, knock it out with a decisive constant penalty
        # (no gradient flows through the saturated branch anyway).
        saturated = p.data > _SATURATION
        suppression = tensor_where(
            saturated,
            Tensor(np.full(p.shape, _KNOCKOUT, dtype=p.data.dtype)),
            (1.0 - p.clip(high=_SATURATION) + _EPS).log(),
        )
        r = r + suppression
    assert y is not None
    return y


def hard_topk_sample(
    log_probs: np.ndarray,
    num_samples: int,
    gumbel_noise: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Exact (non-relaxed) Gumbel-top-k sample: word ids, ``(K, v)``.

    This is the limit of :func:`relaxed_topk_sample` as τ → 0 under the
    same noise, used for evaluation and for checking the relaxation.
    """
    log_probs = np.asarray(log_probs, dtype=np.float64)
    if gumbel_noise is None:
        if rng is None:
            raise ConfigError("provide gumbel_noise or rng")
        gumbel_noise = sample_gumbel(log_probs.shape, rng)
    keys = log_probs + gumbel_noise
    return np.argsort(-keys, axis=1)[:, :num_samples]

"""The full ContraTopic model: backbone NTM + λ·L_con (Eq. 6, Algorithm 1).

ContraTopic wraps *any* :class:`~repro.models.base.NeuralTopicModel`
backbone (ETM in the paper's main results; WLDA and WeTe in the §V.I
backbone-substitution study) and adds the topic-wise contrastive
regularizer: per training batch it draws a relaxed v-word subset from every
topic's β_k via Gumbel top-k, evaluates the contrastive loss under the
precomputed similarity kernel, and adds λ·L_con to the backbone's ELBO.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.contrastive import ContrastiveMode
from repro.core.similarity import SimilarityKernel
from repro.errors import ConfigError, ShapeError
from repro.models.base import NeuralTopicModel
from repro.nn.module import Module
from repro.tensor.tensor import Tensor


@dataclass
class ContraTopicConfig:
    """Regularizer hyper-parameters (paper §V.D defaults where applicable).

    Parameters
    ----------
    lambda_weight:
        λ of Eq. 6 (paper: 40 / 40 / 300 on 20NG / Yahoo / NYTimes).
    num_sampled_words:
        v — words sampled per topic (paper: 10).
    gumbel_temperature:
        τ_g of the relaxed sampler (paper: 0.5).
    mode:
        FULL, or the -P / -N ablation modes.
    use_sampling:
        True uses the Gumbel subset sampler; False is the ContraTopic-S
        ablation, which feeds the expectation v·β directly into L_con.
    negative_weight:
        Balance multiplier on negative-pair mass (§IV.B's optional
        balancing hyper-parameter); 1.0 recovers the plain Eq. 2.
    """

    lambda_weight: float = 40.0
    num_sampled_words: int = 10
    gumbel_temperature: float = 0.5
    mode: ContrastiveMode = ContrastiveMode.FULL
    use_sampling: bool = True
    negative_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.lambda_weight < 0:
            raise ConfigError("lambda_weight must be non-negative")
        if self.num_sampled_words < 1:
            raise ConfigError("num_sampled_words must be >= 1")
        if self.gumbel_temperature <= 0:
            raise ConfigError("gumbel_temperature must be positive")
        if self.negative_weight <= 0:
            raise ConfigError("negative_weight must be positive")


class ContraTopic(NeuralTopicModel):
    """Backbone NTM + topic-wise contrastive regularizer.

    Parameters
    ----------
    backbone:
        Any constructed (unfitted) neural topic model; its encoder, decoder
        and losses are reused unchanged — ContraTopic only adds λ·L_con,
        exactly as the paper's "we keep the shared hyper-parameters
        unchanged" protocol requires.
    kernel:
        Precomputed similarity kernel (NPMI from the *training* corpus in
        the paper's main configuration).
    config:
        Regularizer settings.
    """

    def __init__(
        self,
        backbone: NeuralTopicModel,
        kernel: SimilarityKernel,
        config: ContraTopicConfig | None = None,
    ):
        regularizer_config = config or ContraTopicConfig()
        if kernel.vocab_size != backbone.vocab_size:
            raise ShapeError(
                f"kernel vocab {kernel.vocab_size} != backbone vocab "
                f"{backbone.vocab_size}"
            )
        # Deliberately skip NeuralTopicModel.__init__: the backbone already
        # owns the encoder; building a second one would waste parameters
        # and diverge from the paper's "same hyper-parameters" setup.
        Module.__init__(self)
        self.vocab_size = backbone.vocab_size
        self.config = backbone.config
        self.regularizer = regularizer_config
        self.kernel = kernel
        self.backbone = backbone
        self.encoder = backbone.encoder
        self._rng = np.random.default_rng(backbone.config.seed + 7)
        # Imported lazily: repro.objectives.contrastive imports this
        # package's loss kernels, so a module-level import would cycle
        # through repro.core.__init__.
        from repro.objectives.contrastive import TopicContrastiveObjective

        # The regularizer math lives in the shared objective; passing the
        # config *object* (not copies of its fields) keeps ablations that
        # mutate it post-construction (e.g. ContraTopic-S flipping
        # use_sampling) visible, and sharing self._rng keeps the Gumbel
        # stream identical to the historical inline implementation.
        self._contrastive = TopicContrastiveObjective(
            kernel=kernel, config=regularizer_config, rng=self._rng
        )
        self._fitted = False
        self.history = []

    # ------------------------------------------------------------------
    # delegate the generative pieces to the backbone
    # ------------------------------------------------------------------
    def beta(self) -> Tensor:
        return self.backbone.beta()

    def encode_theta(self, bow: np.ndarray, sample: bool = True):
        return self.backbone.encode_theta(bow, sample=sample)

    def reconstruction_loss(self, theta: Tensor, beta: Tensor, bow: np.ndarray) -> Tensor:
        return self.backbone.reconstruction_loss(theta, beta, bow)

    def kl_loss(self, mu: Tensor, logvar: Tensor, theta: Tensor) -> Tensor:
        return self.backbone.kl_loss(mu, logvar, theta)

    def on_fit_start(self, corpus) -> None:
        super().on_fit_start(corpus)  # prepares the objective stack
        self.backbone.on_fit_start(corpus)

    def rng_streams(self) -> dict:
        # Resume support: the backbone's stream drives dropout/epsilon
        # noise (encode_theta delegates there) while self._rng drives the
        # Gumbel subset sampling — both must travel in checkpoints.
        return {"model": self._rng, "backbone": self.backbone._rng}

    # ------------------------------------------------------------------
    # the contribution: λ·L_con (delegated to the shared objective)
    # ------------------------------------------------------------------
    def build_objectives(self):
        """ELBO + one named ``contrastive`` term weighted by λ.

        This is what makes ContraTopic a thin facade over the objective
        pipeline: the guard degrades (and telemetry reports) the
        contrastive term by name, and the identical term is available
        standalone via ``ObjectiveSpec("contrastive")`` on any backbone.
        """
        from repro.objectives.base import (
            ElboObjective,
            ObjectiveStack,
            ObjectiveTerm,
        )

        return ObjectiveStack(
            ElboObjective(),
            [
                ObjectiveTerm(
                    "contrastive",
                    self._contrastive,
                    weight=self.regularizer.lambda_weight,
                )
            ],
        )

    def contrastive_samples(self, beta: Tensor) -> Tensor:
        """Relaxed v-hot samples per topic (or v·β for ContraTopic-S)."""
        return self._contrastive.samples(beta)

    def contrastive_loss(self, beta: Tensor) -> Tensor:
        return self._contrastive.loss(beta)

    def extra_loss(self, theta: Tensor, beta: Tensor, bow: np.ndarray) -> Tensor:
        return self.contrastive_loss(beta) * self.regularizer.lambda_weight

"""Shared experiment context: dataset, embeddings, NPMI, model factories.

Loading a dataset, training corpus embeddings and precomputing the train
and test NPMI matrices is common to every experiment; the context does it
once and hands out model factories wired with the shared resources.

λ defaults follow the paper's relative ordering (40 / 40 / 300 for 20NG /
Yahoo / NYTimes) recalibrated to this library's loss normalisation — the
Figure-4/5 sensitivity sweep is the evidence for the chosen values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property


from repro.data.datasets import Dataset, load_dataset
from repro.embeddings.store import EmbeddingStore, build_embeddings
from repro.errors import ConfigError
from repro.metrics.npmi import NpmiMatrix, compute_npmi_matrix
from repro.models.base import NTMConfig, TopicModel
from repro.models.registry import build_model
from repro.training.trainer import RunSpec, Trainer

# λ per dataset — the paper's grid-searched values (§V.D: 40 / 40 / 300),
# which transfer directly once the kernel temperature is applied.
DEFAULT_LAMBDAS: dict[str, float] = {"20ng": 40.0, "yahoo": 40.0, "nytimes": 300.0}


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiments (scaled-down paper §V.D values)."""

    dataset: str = "20ng"
    scale: float = 0.3
    num_topics: int = 40
    hidden_sizes: tuple[int, ...] = (64,)
    epochs: int = 40
    batch_size: int = 200
    embedding_dim: int = 50
    learning_rate: float = 2e-3
    lambda_weight: float | None = None  # None -> DEFAULT_LAMBDAS[dataset]
    num_sampled_words: int = 10         # v  (paper: 10)
    gumbel_temperature: float = 0.5     # τ_g (paper: 0.5)
    beta_temperature: float = 0.1       # τ_β (paper: 0.1)
    kernel_temperature: float = 0.25    # sharpening of exp(K(·)) in Eq. 2
    negative_weight: float = 3.0        # §IV.B optional negative-pair balance
    seeds: tuple[int, ...] = (0,)
    #: Declarative training configuration every experiment's fits run
    #: under (``None`` = plain unguarded runs).  The runner's ``--guard``
    #: flag sets it to ``RunSpec.guarded()`` so a whole reproduction pass
    #: trains under the resilience runtime.
    run_spec: RunSpec | None = None

    def resolved_lambda(self) -> float:
        if self.lambda_weight is not None:
            return self.lambda_weight
        try:
            return DEFAULT_LAMBDAS[self.dataset]
        except KeyError:
            raise ConfigError(f"no default λ for dataset {self.dataset!r}") from None

    def fast(self) -> "ExperimentSettings":
        """A cheaper configuration for smoke tests.

        Smaller corpus and topic count, but a small batch size so the
        models still receive enough gradient updates to form topics.
        """
        return replace(
            self, scale=0.15, epochs=15, batch_size=64, num_topics=20, seeds=(0,)
        )


class ExperimentContext:
    """Lazily-built shared resources for one (dataset, settings) pair."""

    def __init__(self, settings: ExperimentSettings):
        self.settings = settings

    @cached_property
    def dataset(self) -> Dataset:
        return load_dataset(self.settings.dataset, scale=self.settings.scale)

    @cached_property
    def embeddings(self) -> EmbeddingStore:
        return build_embeddings(self.dataset.train, dim=self.settings.embedding_dim)

    @cached_property
    def npmi_train(self) -> NpmiMatrix:
        """Kernel NPMI — precomputed on the training set (paper §V.D)."""
        return compute_npmi_matrix(self.dataset.train)

    @cached_property
    def npmi_test(self) -> NpmiMatrix:
        """Evaluation NPMI — computed on unseen test data (paper §V.D)."""
        return compute_npmi_matrix(self.dataset.test)

    # ------------------------------------------------------------------
    def ntm_config(self, seed: int = 0) -> NTMConfig:
        s = self.settings
        return NTMConfig(
            num_topics=s.num_topics,
            hidden_sizes=s.hidden_sizes,
            epochs=s.epochs,
            batch_size=s.batch_size,
            learning_rate=s.learning_rate,
            beta_temperature=s.beta_temperature,
            seed=seed,
        )

    def build(
        self,
        name: str,
        seed: int = 0,
        lambda_weight: float | None = None,
        num_sampled_words: int | None = None,
        backbone: str = "etm",
    ) -> TopicModel:
        """Construct any registry model with this context's resources."""
        s = self.settings
        return build_model(
            name,
            self.dataset.vocab_size,
            self.ntm_config(seed),
            word_embeddings=self.embeddings.vectors,
            npmi=self.npmi_train,
            contratopic_lambda=(
                lambda_weight if lambda_weight is not None else s.resolved_lambda()
            ),
            contratopic_v=(
                num_sampled_words
                if num_sampled_words is not None
                else s.num_sampled_words
            ),
            contratopic_tau=s.gumbel_temperature,
            contratopic_kernel_temperature=s.kernel_temperature,
            contratopic_negative_weight=s.negative_weight,
            backbone=backbone,
        )

    def factory(self, name: str, **kwargs):
        """A ``seed -> model`` callable for the multi-seed protocol."""
        return lambda seed: self.build(name, seed=seed, **kwargs)

    def fit(self, model: TopicModel) -> TopicModel:
        """Train ``model`` on this context's training corpus.

        Neural models train through the engine under the settings'
        ``run_spec``; non-neural models (no epoch loop to drive) fit
        directly.
        """
        from repro.models.base import NeuralTopicModel

        if isinstance(model, NeuralTopicModel):
            Trainer(self.settings.run_spec).fit(model, self.dataset.train)
        else:
            model.fit(self.dataset.train)
        return model

"""Table I — summary statistics of the three datasets.

The paper's absolute numbers (below) cannot be matched offline — the
corpora are miniaturized — but the *relations* are preserved and asserted
by the test-suite: NYTimes has the widest vocabulary, the most documents,
the longest documents and by far the most tokens; Yahoo has more and
shorter documents than 20NG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import load_dataset
from repro.experiments.reporting import format_table

# Paper Table I (vocab, train, test, avg length, tokens).
PAPER_TABLE1 = {
    "20ng": (5770, 10827, 7183, 59.8, 1_076_941),
    "yahoo": (7394, 89808, 59873, 45.9, 6_872_000),
    "nytimes": (34330, 179814, 119876, 345.7, 103_608_732),
}


@dataclass
class DatasetStatsRow:
    """One Table-I row for a loaded dataset."""

    name: str
    vocabulary_size: int
    training_samples: int
    test_samples: int
    average_length: float
    num_tokens: int


def run_table1(scale: float = 0.3) -> list[DatasetStatsRow]:
    """Load each profile and collect its Table-I statistics."""
    rows = []
    for name in ("20ng", "yahoo", "nytimes"):
        ds = load_dataset(name, scale=scale)
        train_stats = ds.train.stats()
        test_stats = ds.test.stats()
        rows.append(
            DatasetStatsRow(
                name=name,
                vocabulary_size=train_stats.vocabulary_size,
                training_samples=train_stats.num_documents,
                test_samples=test_stats.num_documents,
                average_length=train_stats.average_length,
                num_tokens=train_stats.num_tokens + test_stats.num_tokens,
            )
        )
    return rows


def format_table1(rows: list[DatasetStatsRow]) -> str:
    """Render measured rows next to the paper's, Table-I style."""
    headers = ["dataset", "vocab", "train", "test", "avg len", "tokens", "(paper vocab/train/avg)"]
    body = []
    for row in rows:
        paper = PAPER_TABLE1[row.name]
        body.append(
            [
                row.name,
                row.vocabulary_size,
                row.training_samples,
                row.test_samples,
                round(row.average_length, 1),
                row.num_tokens,
                f"{paper[0]}/{paper[1]}/{paper[3]}",
            ]
        )
    return format_table(headers, body, title="Table I — dataset statistics (miniaturized)")

"""Experiment harness: one module per table/figure of the paper.

Every module exposes a ``run_*`` function returning structured results and
a ``format_*`` function rendering the paper-style rows/series, so the
benchmark suite (and the examples) can both execute and display them.

| Paper artefact | Module |
|---|---|
| Table I (dataset stats)            | :mod:`repro.experiments.table1_stats` |
| Figure 2 (coherence/diversity)     | :mod:`repro.experiments.fig2_interpretability` |
| Figure 3 (km-Purity / km-NMI)      | :mod:`repro.experiments.fig3_clustering` |
| Table II (ablation)                | :mod:`repro.experiments.table2_ablation` |
| Figures 4-5 (λ / v sensitivity)    | :mod:`repro.experiments.fig45_sensitivity` |
| Figure 6 (backbone substitution)   | :mod:`repro.experiments.fig6_backbone` |
| Table III (word intrusion)         | :mod:`repro.experiments.table3_intrusion` |
| Tables IV-VI (case study)          | :mod:`repro.experiments.tables456_casestudy` |
"""

from repro.experiments.context import ExperimentContext, ExperimentSettings, DEFAULT_LAMBDAS
from repro.experiments.grid_search import (
    GridPoint,
    GridSearchResult,
    grid_search_contratopic,
)
from repro.experiments.regularizers import (
    DEFAULT_OBJECTIVES,
    LeaderboardResult,
    LeaderboardRow,
    format_leaderboard,
    regularizer_leaderboard,
    weight_grid,
)

__all__ = [
    "ExperimentContext",
    "ExperimentSettings",
    "DEFAULT_LAMBDAS",
    "DEFAULT_OBJECTIVES",
    "GridPoint",
    "GridSearchResult",
    "LeaderboardResult",
    "LeaderboardRow",
    "format_leaderboard",
    "grid_search_contratopic",
    "regularizer_leaderboard",
    "weight_grid",
]

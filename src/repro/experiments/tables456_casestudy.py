"""Tables IV-VI — case study: highest-NPMI topics per model per dataset.

For each dataset the paper prints the top-5 topics (by NPMI) of LDA, ETM,
WeTe, CLNTM and ContraTopic with their top-8 words.  The qualitative
findings to look for here: baselines mixing themes inside one topic (LDA's
guns/armenia mixture), near-duplicate topics (CLNTM's repeated top topics),
and ContraTopic's clean, distinct themes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.metrics.coherence import topic_npmi_scores

CASESTUDY_MODELS = ("lda", "etm", "wete", "clntm", "contratopic")


@dataclass
class TopicListing:
    """Top topics of one model: (NPMI, top words) pairs."""

    model: str
    topics: list[tuple[float, list[str]]]


def run_casestudy(
    settings: ExperimentSettings,
    models: Sequence[str] = CASESTUDY_MODELS,
    num_topics_shown: int = 5,
    num_words: int = 8,
) -> list[TopicListing]:
    """Train each model and list its highest-NPMI topics."""
    context = ExperimentContext(settings)
    vocabulary = context.dataset.train.vocabulary
    listings: list[TopicListing] = []
    for name in models:
        model = context.build(name, seed=settings.seeds[0])
        context.fit(model)
        topic_word = model.topic_word_matrix()
        scores = topic_npmi_scores(topic_word, context.npmi_test)
        order = np.argsort(-scores)[:num_topics_shown]
        topics: list[tuple[float, list[str]]] = []
        for k in order:
            word_ids = np.argsort(-topic_word[k])[:num_words]
            words = [vocabulary.token_of(int(w)) for w in word_ids]
            topics.append((float(scores[k]), words))
        listings.append(TopicListing(model=name, topics=topics))
    return listings


def format_casestudy(listings: list[TopicListing], dataset: str) -> str:
    table_number = {"20ng": "IV", "yahoo": "V", "nytimes": "VI"}.get(dataset, "?")
    lines = [f"Table {table_number} — generated topics on {dataset}"]
    for listing in listings:
        lines.append(f"\n[{listing.model}]")
        for npmi_value, words in listing.topics:
            lines.append(f"  {npmi_value:+.3f}  {' '.join(words)}")
    return "\n".join(lines)


def describe_topic(words: Sequence[str]) -> str:
    """A tiny rule-based stand-in for the paper's LLM topic descriptions.

    The paper asks a large language model to caption each topic; offline we
    caption with the theme bank whose vocabulary overlaps the topic most.
    """
    from repro.data.theme_banks import THEME_BANKS

    best_theme = "unknown"
    best_overlap = 0
    word_set = set(words)
    for theme, bank in THEME_BANKS.items():
        overlap = len(word_set & set(bank))
        if overlap > best_overlap:
            best_overlap = overlap
            best_theme = theme
    return f"Topic about {best_theme.replace('_', ' ')} ({best_overlap}/{len(words)} bank words)"

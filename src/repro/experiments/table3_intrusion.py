"""Table III — word-intrusion scores (the simulated human evaluation).

Every Figure-2 model is trained on 20NG and scored with the simulated
word-intrusion protocol of :mod:`repro.metrics.intrusion` (20 annotators,
3 topics per coherence decile, intruders generated per §V.J.2).  The paper
reports WIS ordering closely tracking the automatic coherence ordering,
with ContraTopic highest at 0.80.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.experiments.fig2_interpretability import FIG2_MODELS
from repro.experiments.reporting import format_table
from repro.metrics.intrusion import word_intrusion_score

# Paper Table III (20NG).
PAPER_TABLE3 = {
    "lda": 0.34,
    "prodlda": 0.37,
    "wlda": 0.34,
    "etm": 0.58,
    "nstm": 0.68,
    "wete": 0.67,
    "ntmr": 0.29,
    "vtmrl": 0.46,
    "clntm": 0.64,
    "contratopic": 0.80,
}


@dataclass
class IntrusionRow:
    """WIS for one model, with the paper's value alongside."""

    model: str
    wis: float
    paper_wis: float


def run_table3(
    settings: ExperimentSettings,
    models: Sequence[str] = FIG2_MODELS,
    num_annotators: int = 20,
    noise_scale: float = 0.12,
) -> list[IntrusionRow]:
    """Train each model once and run the simulated intrusion study."""
    context = ExperimentContext(settings)
    rows: list[IntrusionRow] = []
    for name in models:
        model = context.build(name, seed=settings.seeds[0])
        context.fit(model)
        wis = word_intrusion_score(
            model.topic_word_matrix(),
            context.npmi_test,
            num_annotators=num_annotators,
            noise_scale=noise_scale,
            seed=settings.seeds[0],
        )
        rows.append(
            IntrusionRow(model=name, wis=wis, paper_wis=PAPER_TABLE3.get(name, float("nan")))
        )
    return rows


def format_table3(rows: list[IntrusionRow]) -> str:
    return format_table(
        ["model", "WIS (measured)", "WIS (paper)"],
        [[r.model, r.wis, r.paper_wis] for r in rows],
        title="Table III — word intrusion scores on 20NG (simulated annotators)",
    )

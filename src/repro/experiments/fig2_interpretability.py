"""Figure 2 — topic coherence and diversity vs. percentage of topics.

The paper's headline comparison: ten models × three datasets, coherence
(top row) and diversity (bottom row) as the fraction of selected topics
(ranked by NPMI) grows from 10% to 100%.  Expected shape: ContraTopic's
coherence curve dominates every baseline at most percentages while its
diversity stays among the highest; CLNTM shows strong head-coherence but
poor diversity (redundant topics); likelihood-only baselines decay faster
as low-quality tail topics are included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.experiments.reporting import format_series
from repro.training.protocol import EvaluationResult, multi_seed_evaluation

FIG2_MODELS = (
    "lda",
    "prodlda",
    "wlda",
    "etm",
    "nstm",
    "wete",
    "ntmr",
    "vtmrl",
    "clntm",
    "contratopic",
)


@dataclass
class Fig2Result:
    """Per-model coherence/diversity series for one dataset."""

    dataset: str
    coherence: dict[str, dict[float, float]] = field(default_factory=dict)
    diversity: dict[str, dict[float, float]] = field(default_factory=dict)


def run_fig2(
    settings: ExperimentSettings,
    models: Sequence[str] = FIG2_MODELS,
) -> Fig2Result:
    """Train every model on one dataset and collect the Figure-2 series."""
    context = ExperimentContext(settings)
    result = Fig2Result(dataset=settings.dataset)
    for name in models:
        evaluation: EvaluationResult = multi_seed_evaluation(
            context.factory(name),
            context.dataset.train,
            context.dataset.test,
            context.npmi_test,
            seeds=settings.seeds,
            model_name=name,
            cluster_counts=(),  # clustering belongs to Figure 3
            run_spec=settings.run_spec,
        )
        result.coherence[name] = evaluation.coherence
        result.diversity[name] = evaluation.diversity
    return result


def format_fig2(result: Fig2Result, charts: bool = True) -> str:
    from repro.viz import ascii_line_chart

    parts = [
        format_series(
            result.coherence,
            title=f"Figure 2 (top) — topic coherence on {result.dataset}",
        ),
        "",
        format_series(
            result.diversity,
            title=f"Figure 2 (bottom) — topic diversity on {result.dataset}",
        ),
    ]
    if charts:
        parts += [
            "",
            ascii_line_chart(
                result.coherence,
                title=f"[chart] coherence vs %topics ({result.dataset})",
                y_label="NPMI",
            ),
        ]
    return "\n".join(parts)

"""Regularizer leaderboard: the objective zoo swept head-to-head.

ROADMAP item "rival regularizers under one roof": every entry of
:mod:`repro.objectives` — the paper's topic-wise contrastive term plus the
CLNTM document-wise InfoNCE (Nguyen & Luu 2021), the diversity-aware
coherence regularizer (Li et al. 2023) and the VICReg-style latent
regularizer (Xu et al. 2025) — trains the *same* backbone under the same
:class:`~repro.training.trainer.RunSpec` and is scored with the full §V.B
protocol.  One table answers "which regularizer helps, by how much, at
what cost", which the paper's Table II only answers for its own ablations.

The sweep axes are regularizer × weight × seed: objectives come in as
:class:`~repro.objectives.registry.ObjectiveSpec` rows (weights swept via
:func:`weight_grid`), and each row fans its seeds out through
:func:`~repro.training.protocol.multi_seed_evaluation`'s ``workers``
machinery, so the leaderboard is identical for every worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.errors import ConfigError
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.objectives.registry import DEFAULT_WEIGHTS, ObjectiveSpec
from repro.training.protocol import EvaluationResult, multi_seed_evaluation
from repro.training.trainer import RunSpec

#: The head-to-head field: pure ELBO (the control — ``objectives=()``)
#: plus every registry objective at its calibrated default weight.
DEFAULT_OBJECTIVES: tuple[ObjectiveSpec | None, ...] = (
    None,  # rendered as the "elbo" control row
    ObjectiveSpec("contrastive"),
    ObjectiveSpec("clntm"),
    ObjectiveSpec("coherence"),
    ObjectiveSpec("vicreg"),
)

#: Clusters used by the leaderboard's km-Purity column — a single small
#: count keeps the sweep cheap while still ranking document quality.
LEADERBOARD_CLUSTERS = (20,)


def weight_grid(
    name: str, weights: Sequence[float] | None = None
) -> tuple[ObjectiveSpec, ...]:
    """Specs for one objective across a weight sweep.

    ``weights=None`` brackets the registry default with 0.5× and 2× —
    the cheap sanity sweep the leaderboard runs per objective when asked
    for weight sensitivity.
    """
    if weights is None:
        base = DEFAULT_WEIGHTS.get(name, 1.0)
        weights = (0.5 * base, base, 2.0 * base)
    if not weights:
        raise ConfigError("weight_grid needs at least one weight")
    return tuple(ObjectiveSpec(name, weight=float(w)) for w in weights)


@dataclass
class LeaderboardRow:
    """One objective's scores, averaged over seeds."""

    name: str
    weight: float
    coherence: dict[float, float]
    diversity: dict[float, float]
    km_purity: dict[int, float] = field(default_factory=dict)
    seed_status: dict[int, str] = field(default_factory=dict)

    @property
    def coherence_at_10(self) -> float:
        return self.coherence.get(0.1, float("nan"))

    @property
    def diversity_at_10(self) -> float:
        return self.diversity.get(0.1, float("nan"))

    @property
    def purity(self) -> float:
        if not self.km_purity:
            return float("nan")
        return self.km_purity[min(self.km_purity)]

    def summary(self) -> dict[str, float]:
        return {
            "coherence@10%": self.coherence_at_10,
            "diversity@10%": self.diversity_at_10,
            "km_purity": self.purity,
            "seeds_ok": float(sum(s == "ok" for s in self.seed_status.values())),
        }


@dataclass
class LeaderboardResult:
    """All rows of one sweep plus the per-row failure log."""

    rows: list[LeaderboardRow]
    #: ``row label -> per-seed status`` for rows with failed/diverged
    #: seeds, so a partially-failed sweep stays visible in reports.
    failures: dict[str, dict[int, str]] = field(default_factory=dict)

    def best(self, metric: str = "coherence@10%") -> LeaderboardRow:
        """Highest-scoring row by a :meth:`LeaderboardRow.summary` key."""
        if not self.rows:
            raise ConfigError("empty leaderboard has no best row")
        def value(row: LeaderboardRow) -> float:
            v = row.summary().get(metric, float("nan"))
            return v if v == v else float("-inf")
        return max(self.rows, key=value)

    def as_rows(self) -> list[list[object]]:
        """Table rows for :func:`format_leaderboard` and reports."""
        return [
            [
                row.name,
                row.weight,
                row.coherence_at_10,
                row.diversity_at_10,
                row.purity,
                int(row.summary()["seeds_ok"]),
            ]
            for row in self.rows
        ]


def _row_label(spec: ObjectiveSpec | None) -> str:
    if spec is None:
        return "elbo"
    default = DEFAULT_WEIGHTS.get(spec.name, 1.0)
    weight = spec.resolved_weight()
    if weight != default:
        return f"{spec.name}@{weight:g}"
    return spec.name


def regularizer_leaderboard(
    context: ExperimentContext,
    objectives: Sequence[ObjectiveSpec | None] | None = None,
    seeds: Sequence[int] = (0, 1, 2),
    workers: int | None = 1,
    registry=None,
    run_spec: RunSpec | None = None,
    backbone: str = "etm",
    cluster_counts: Sequence[int] = LEADERBOARD_CLUSTERS,
) -> LeaderboardResult:
    """Train one backbone per objective spec and rank the results.

    ``objectives`` entries are :class:`ObjectiveSpec` instances (``None``
    entries train the pure-ELBO control via ``RunSpec(objectives=())``);
    the default field is :data:`DEFAULT_OBJECTIVES`.  ``run_spec``
    supplies the shared training configuration (guard, checkpoints, DDP);
    each row trains under ``replace(run_spec, objectives=...)`` so the
    *only* difference between rows is the regularizer itself.  Seeds fan
    out through :class:`repro.parallel.ParallelMap` when ``workers``
    allows, and rows are bitwise-identical for every worker count.
    """
    if objectives is None:
        objectives = DEFAULT_OBJECTIVES
    objectives = tuple(objectives)
    if not objectives:
        raise ConfigError("regularizer_leaderboard needs at least one objective")
    base_spec = run_spec or context.settings.run_spec or RunSpec()
    labeled = context.dataset.test.labels is not None
    clusters = tuple(cluster_counts) if labeled else ()
    factory = context.factory(backbone)

    rows: list[LeaderboardRow] = []
    failures: dict[str, dict[int, str]] = {}
    for spec in objectives:
        label = _row_label(spec)
        terms = () if spec is None else (spec,)
        result: EvaluationResult = multi_seed_evaluation(
            factory,
            context.dataset.train,
            context.dataset.test,
            context.npmi_test,
            seeds=tuple(seeds),
            model_name=f"{backbone}+{label}",
            cluster_counts=clusters,
            workers=workers,
            registry=registry,
            run_spec=replace(base_spec, objectives=terms),
        )
        row = LeaderboardRow(
            name=label,
            weight=0.0 if spec is None else spec.resolved_weight(),
            coherence=result.coherence,
            diversity=result.diversity,
            km_purity=result.km_purity,
            seed_status=dict(result.seed_status),
        )
        rows.append(row)
        if any(status != "ok" for status in result.seed_status.values()):
            failures[label] = dict(result.seed_status)
    def rank(row: LeaderboardRow) -> float:
        v = row.coherence_at_10
        return -(v if v == v else float("-inf"))

    rows.sort(key=rank)
    return LeaderboardResult(rows=rows, failures=failures)


def format_leaderboard(result: LeaderboardResult, dataset: str) -> str:
    """Render the leaderboard as the checked-in BENCH table."""
    table = format_table(
        ["objective", "weight", "coherence@10%", "diversity@10%", "km_purity", "seeds"],
        result.as_rows(),
        title=f"Regularizer leaderboard — {dataset}",
    )
    if result.failures:
        notes = [
            f"  {label}: " + ", ".join(
                f"seed {seed}={status}" for seed, status in sorted(statuses.items())
            )
            for label, statuses in sorted(result.failures.items())
        ]
        table = "\n".join([table, "failures:", *notes])
    return table

"""Table II — ablation study of ContraTopic's design decisions.

Variants (paper §V.G):
* ContraTopic-P — positive pairs only (coherence ≈ -5%, diversity drops);
* ContraTopic-N — negative pairs only (largest decline, ≈ -12%, and the
  clustering quality deteriorates significantly);
* ContraTopic-I — inner-product kernel instead of NPMI (worse coherence);
* ContraTopic-S — expectation instead of Gumbel sampling (smallest drop).

Expected ordering: full > S ≥ P ≈ I > N on coherence/diversity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.variants import build_variant
from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.experiments.reporting import format_table
from repro.training.protocol import multi_seed_evaluation

ABLATION_ROWS = ("full", "P", "N", "I", "S")
COHERENCE_PERCENTAGES = (0.1, 0.5, 0.9)
PURITY_CLUSTERS = (20, 60, 100)

# Paper Table II (20NG): coherence@10/50/90, diversity@10/50/90,
# km-purity@20/60/100 percent of clusters.
PAPER_TABLE2 = {
    "full": ((0.54, 0.36, 0.28), (0.98, 0.86, 0.72), (0.37, 0.44, 0.46)),
    "P": ((0.44, 0.33, 0.27), (0.98, 0.83, 0.69), (0.36, 0.45, 0.44)),
    "N": ((0.42, 0.27, 0.19), (0.95, 0.69, 0.61), (0.34, 0.37, 0.38)),
    "I": ((0.45, 0.33, 0.26), (0.95, 0.84, 0.70), (0.35, 0.45, 0.44)),
    "S": ((0.50, 0.34, 0.26), (0.96, 0.85, 0.72), (0.36, 0.44, 0.45)),
}


@dataclass
class AblationRow:
    """One Table-II row: the three metric triplets for one variant.

    Std dictionaries are filled when multiple seeds were run, enabling the
    paper's mean±std cell format.
    """

    variant: str
    coherence: dict[float, float]
    diversity: dict[float, float]
    km_purity: dict[int, float] = field(default_factory=dict)
    coherence_std: dict[float, float] = field(default_factory=dict)
    diversity_std: dict[float, float] = field(default_factory=dict)
    km_purity_std: dict[int, float] = field(default_factory=dict)


def run_table2(
    settings: ExperimentSettings,
    variants: Sequence[str] = ABLATION_ROWS,
) -> list[AblationRow]:
    """Train and score each ablation variant with a shared ETM backbone."""
    context = ExperimentContext(settings)
    rows: list[AblationRow] = []
    for variant in variants:
        def factory(seed: int, variant=variant):
            backbone = context.build("etm", seed=seed)
            # `build("etm")` has no regularizer; wrap it in the variant.
            return build_variant(
                variant,
                backbone,
                context.npmi_train,
                word_embeddings=context.embeddings.vectors,
                lambda_weight=settings.resolved_lambda(),
                num_sampled_words=settings.num_sampled_words,
                gumbel_temperature=settings.gumbel_temperature,
                kernel_temperature=settings.kernel_temperature,
                negative_weight=settings.negative_weight,
            )

        evaluation = multi_seed_evaluation(
            factory,
            context.dataset.train,
            context.dataset.test,
            context.npmi_test,
            seeds=settings.seeds,
            model_name=f"ContraTopic-{variant}" if variant != "full" else "ContraTopic",
            cluster_counts=PURITY_CLUSTERS if context.dataset.test.labels is not None else (),
            run_spec=settings.run_spec,
        )
        rows.append(
            AblationRow(
                variant=variant,
                coherence=evaluation.coherence,
                diversity=evaluation.diversity,
                km_purity=evaluation.km_purity,
                coherence_std=evaluation.coherence_std,
                diversity_std=evaluation.diversity_std,
                km_purity_std=evaluation.km_purity_std,
            )
        )
    return rows


def format_table2(rows: list[AblationRow]) -> str:
    headers = (
        ["variant"]
        + [f"coh@{int(p*100)}%" for p in COHERENCE_PERCENTAGES]
        + [f"div@{int(p*100)}%" for p in COHERENCE_PERCENTAGES]
        + [f"purity@{c}" for c in PURITY_CLUSTERS]
        + ["paper coh@10/50/90"]
    )
    def cell(mean_map, std_map, key) -> object:
        mean = mean_map.get(key, float("nan"))
        if key in std_map:
            return f"{mean:.3f}±{std_map[key]:.2f}"
        return mean

    body = []
    for row in rows:
        paper = PAPER_TABLE2[row.variant][0]
        body.append(
            [f"ContraTopic-{row.variant}" if row.variant != "full" else "ContraTopic"]
            + [cell(row.coherence, row.coherence_std, p) for p in COHERENCE_PERCENTAGES]
            + [cell(row.diversity, row.diversity_std, p) for p in COHERENCE_PERCENTAGES]
            + [cell(row.km_purity, row.km_purity_std, c) for c in PURITY_CLUSTERS]
            + ["/".join(f"{v:.2f}" for v in paper)]
        )
    return format_table(headers, body, title="Table II — ablation study")

"""Run every experiment end to end and print all paper artefacts.

``python -m repro.experiments.runner [--fast]`` reproduces Table I,
Figure 2, Figure 3, Table II, Figures 4-6 and Tables III-VI in one go,
printing each in paper-style text form.  The benchmark suite runs the same
functions one artefact at a time.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.context import ExperimentSettings
from repro.experiments.fig2_interpretability import format_fig2, run_fig2
from repro.experiments.fig3_clustering import format_fig3, run_fig3
from repro.experiments.fig45_sensitivity import (
    format_sensitivity,
    run_lambda_sensitivity,
    run_v_sensitivity,
)
from repro.experiments.fig6_backbone import format_fig6, run_fig6
from repro.experiments.table1_stats import format_table1, run_table1
from repro.experiments.table2_ablation import format_table2, run_table2
from repro.experiments.table3_intrusion import format_table3, run_table3
from repro.experiments.tables456_casestudy import format_casestudy, run_casestudy


def run_all(fast: bool = False, out=sys.stdout) -> None:
    """Execute every experiment; ``fast`` shrinks corpora and epochs."""
    def settings(dataset: str) -> ExperimentSettings:
        s = ExperimentSettings(dataset=dataset)
        return s.fast() if fast else s

    def section(title: str) -> None:
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}", file=out)

    start = time.time()
    section("Table I")
    print(format_table1(run_table1(scale=settings("20ng").scale)), file=out)

    for dataset in ("20ng", "yahoo", "nytimes"):
        section(f"Figure 2 — {dataset}")
        print(format_fig2(run_fig2(settings(dataset))), file=out)

    for dataset in ("20ng", "yahoo"):
        section(f"Figure 3 — {dataset}")
        print(format_fig3(run_fig3(settings(dataset))), file=out)

    section("Table II — ablation (20NG)")
    print(format_table2(run_table2(settings("20ng"))), file=out)

    for dataset in ("20ng", "yahoo", "nytimes"):
        fig = "5" if dataset == "nytimes" else "4"
        section(f"Figure {fig} — sensitivity on {dataset}")
        print(format_sensitivity(run_lambda_sensitivity(settings(dataset))), file=out)
        print("", file=out)
        print(format_sensitivity(run_v_sensitivity(settings(dataset))), file=out)

    for dataset in ("20ng", "yahoo"):
        section(f"Figure 6 — backbone substitution on {dataset}")
        print(format_fig6(run_fig6(settings(dataset)), dataset), file=out)

    section("Table III — word intrusion (20NG)")
    print(format_table3(run_table3(settings("20ng"))), file=out)

    for dataset in ("20ng", "yahoo", "nytimes"):
        section(f"Case study — {dataset}")
        print(format_casestudy(run_casestudy(settings(dataset)), dataset), file=out)

    print(f"\nAll experiments finished in {time.time() - start:.1f}s", file=out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="smaller corpora / fewer epochs"
    )
    args = parser.parse_args(argv)
    run_all(fast=args.fast)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Run every experiment end to end and print all paper artefacts.

``python -m repro.experiments.runner [--fast] [--workers N]`` reproduces
Table I, Figure 2, Figure 3, Table II, Figures 4-6 and Tables III-VI in
one go, printing each in paper-style text form.  The benchmark suite runs
the same functions one artefact at a time.

The sections are independent of each other (each builds its own corpus
and models), so they fan out over :class:`repro.parallel.ParallelMap`:
each task returns its fully-formatted text block and the parent prints
the blocks in the fixed section order, so the output is identical for
every worker count.  A section that raises is reported in place as a
recorded failure instead of aborting the rest of the run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments.context import ExperimentSettings
from repro.experiments.fig2_interpretability import format_fig2, run_fig2
from repro.experiments.fig3_clustering import format_fig3, run_fig3
from repro.experiments.fig45_sensitivity import (
    format_sensitivity,
    run_lambda_sensitivity,
    run_v_sensitivity,
)
from repro.experiments.fig6_backbone import format_fig6, run_fig6
from repro.experiments.table1_stats import format_table1, run_table1
from repro.experiments.table2_ablation import format_table2, run_table2
from repro.experiments.table3_intrusion import format_table3, run_table3
from repro.experiments.tables456_casestudy import format_casestudy, run_casestudy


def build_sections(
    fast: bool = False, run_spec=None
) -> list[tuple[str, Callable[[], str]]]:
    """The full artefact list as independent ``(title, thunk)`` tasks.

    Each thunk computes and formats one paper artefact and returns the
    text block; nothing is shared between thunks, which is what makes the
    fan-out in :func:`run_all` safe.  ``run_spec`` (a
    :class:`~repro.training.trainer.RunSpec`) is the declarative training
    configuration every section's fits run under — e.g.
    ``RunSpec.guarded()`` puts the whole reproduction pass behind the
    resilience guard.
    """

    def settings(dataset: str) -> ExperimentSettings:
        s = ExperimentSettings(dataset=dataset, run_spec=run_spec)
        return s.fast() if fast else s

    sections: list[tuple[str, Callable[[], str]]] = [
        ("Table I", lambda: format_table1(run_table1(scale=settings("20ng").scale)))
    ]

    for dataset in ("20ng", "yahoo", "nytimes"):
        sections.append(
            (
                f"Figure 2 — {dataset}",
                lambda d=dataset: format_fig2(run_fig2(settings(d))),
            )
        )

    for dataset in ("20ng", "yahoo"):
        sections.append(
            (
                f"Figure 3 — {dataset}",
                lambda d=dataset: format_fig3(run_fig3(settings(d))),
            )
        )

    sections.append(
        (
            "Table II — ablation (20NG)",
            lambda: format_table2(run_table2(settings("20ng"))),
        )
    )

    for dataset in ("20ng", "yahoo", "nytimes"):
        fig = "5" if dataset == "nytimes" else "4"
        sections.append(
            (
                f"Figure {fig} — sensitivity on {dataset}",
                lambda d=dataset: "\n".join(
                    [
                        format_sensitivity(run_lambda_sensitivity(settings(d))),
                        "",
                        format_sensitivity(run_v_sensitivity(settings(d))),
                    ]
                ),
            )
        )

    for dataset in ("20ng", "yahoo"):
        sections.append(
            (
                f"Figure 6 — backbone substitution on {dataset}",
                lambda d=dataset: format_fig6(run_fig6(settings(d)), d),
            )
        )

    sections.append(
        (
            "Table III — word intrusion (20NG)",
            lambda: format_table3(run_table3(settings("20ng"))),
        )
    )

    for dataset in ("20ng", "yahoo", "nytimes"):
        sections.append(
            (
                f"Case study — {dataset}",
                lambda d=dataset: format_casestudy(run_casestudy(settings(d)), d),
            )
        )

    return sections


def run_all(
    fast: bool = False,
    out=sys.stdout,
    workers: int | None = 1,
    registry=None,
    run_spec=None,
) -> None:
    """Execute every experiment; ``fast`` shrinks corpora and epochs.

    ``workers=1`` (the default) runs the sections in-process in order —
    the exact serial path.  Higher counts fan the sections out across
    processes; the printed output is identical because each section's
    text is computed independently and printed in the fixed order.
    ``run_spec`` forwards to :func:`build_sections` (it is plain data, so
    it pickles across the fan-out).
    """
    from repro.parallel import ParallelMap, require_any_success

    sections = build_sections(fast=fast, run_spec=run_spec)

    start = time.time()
    outcomes = ParallelMap(workers=workers, registry=registry).map(
        lambda section: section[1](), sections
    )
    require_any_success(outcomes, "experiment-section")
    for (title, _), outcome in zip(sections, outcomes):
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}", file=out)
        if outcome.ok:
            print(outcome.value, file=out)
        else:
            print(f"SECTION FAILED: {outcome.error}", file=out)

    print(f"\nAll experiments finished in {time.time() - start:.1f}s", file=out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="smaller corpora / fewer epochs"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the section fan-out "
        "(default: REPRO_WORKERS or the CPU count; 1 = serial)",
    )
    parser.add_argument(
        "--guard",
        action="store_true",
        help="train every section under the resilience guard "
        "(skip/backoff/restore/degrade escalation)",
    )
    args = parser.parse_args(argv)
    run_spec = None
    if args.guard:
        from repro.training.trainer import RunSpec

        run_spec = RunSpec.guarded()
    run_all(fast=args.fast, workers=args.workers, run_spec=run_spec)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

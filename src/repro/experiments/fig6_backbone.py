"""Figure 6 — backbone model substitution.

The paper swaps ContraTopic's backbone from ETM to WLDA and WeTe and shows
the topic-wise regularizer improves coherence and diversity *regardless of
architecture* ("Our regularizer consistently improves topic coherence and
diversity across different backbone models"), with WLDA benefiting on
clustering quality too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.experiments.reporting import format_series
from repro.training.protocol import multi_seed_evaluation

BACKBONES = ("etm", "wlda", "wete")

# The paper grid-searches λ per configuration (§V.D).  WLDA's decoder is a
# free (K, V) logit matrix rather than an embedding factorization, and its
# calibrated λ is correspondingly smaller than the ETM/WeTe value.
BACKBONE_LAMBDA_SCALE = {"etm": 1.0, "wete": 1.0, "wlda": 0.25}


@dataclass
class BackboneRow:
    """Plain vs. regularized metrics for one backbone."""

    backbone: str
    plain_coherence: dict[float, float]
    regularized_coherence: dict[float, float]
    plain_diversity: dict[float, float]
    regularized_diversity: dict[float, float]
    plain_purity: dict[int, float] = field(default_factory=dict)
    regularized_purity: dict[int, float] = field(default_factory=dict)


def run_fig6(
    settings: ExperimentSettings,
    backbones: Sequence[str] = BACKBONES,
) -> list[BackboneRow]:
    """For each backbone, train plain and +regularizer versions."""
    context = ExperimentContext(settings)
    labeled = context.dataset.test.labels is not None
    clusters = (20, 60, 100) if labeled else ()
    rows: list[BackboneRow] = []
    for backbone in backbones:
        plain = multi_seed_evaluation(
            context.factory(backbone),
            context.dataset.train,
            context.dataset.test,
            context.npmi_test,
            seeds=settings.seeds,
            model_name=backbone,
            cluster_counts=clusters,
            run_spec=settings.run_spec,
        )
        lambda_weight = settings.resolved_lambda() * BACKBONE_LAMBDA_SCALE.get(
            backbone, 1.0
        )
        regularized = multi_seed_evaluation(
            context.factory(
                "contratopic", backbone=backbone, lambda_weight=lambda_weight
            ),
            context.dataset.train,
            context.dataset.test,
            context.npmi_test,
            seeds=settings.seeds,
            model_name=f"{backbone}+L_con",
            cluster_counts=clusters,
            run_spec=settings.run_spec,
        )
        rows.append(
            BackboneRow(
                backbone=backbone,
                plain_coherence=plain.coherence,
                regularized_coherence=regularized.coherence,
                plain_diversity=plain.diversity,
                regularized_diversity=regularized.diversity,
                plain_purity=plain.km_purity,
                regularized_purity=regularized.km_purity,
            )
        )
    return rows


def format_fig6(rows: list[BackboneRow], dataset: str) -> str:
    coherence_series: dict[str, dict[float, float]] = {}
    diversity_series: dict[str, dict[float, float]] = {}
    for row in rows:
        coherence_series[row.backbone] = row.plain_coherence
        coherence_series[f"{row.backbone}+L_con"] = row.regularized_coherence
        diversity_series[row.backbone] = row.plain_diversity
        diversity_series[f"{row.backbone}+L_con"] = row.regularized_diversity
    return "\n".join(
        [
            format_series(
                coherence_series,
                title=f"Figure 6 — coherence, backbone substitution on {dataset}",
            ),
            "",
            format_series(
                diversity_series,
                title=f"Figure 6 — diversity, backbone substitution on {dataset}",
            ),
        ]
    )

"""Figure 3 — km-Purity and km-NMI of document-topic representations.

KMeans is applied to held-out document-topic vectors on the two labeled
datasets (20NG, Yahoo) for 20..100 clusters.  Expected shape: ContraTopic
is competitive on 20NG without using any representation-specific technique;
some baselines (ETM, VTMRL in the paper) may edge it out on Yahoo while
losing badly on interpretability — the trade-off §V.F discusses at length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.experiments.reporting import format_series
from repro.training.protocol import CLUSTER_COUNTS, multi_seed_evaluation

FIG3_MODELS = ("lda", "prodlda", "wlda", "etm", "ntmr", "vtmrl", "clntm", "contratopic")


@dataclass
class Fig3Result:
    """Per-model km-Purity / km-NMI curves for one labeled dataset."""

    dataset: str
    km_purity: dict[str, dict[int, float]] = field(default_factory=dict)
    km_nmi: dict[str, dict[int, float]] = field(default_factory=dict)


def run_fig3(
    settings: ExperimentSettings,
    models: Sequence[str] = FIG3_MODELS,
    cluster_counts: Sequence[int] = CLUSTER_COUNTS,
) -> Fig3Result:
    """Train each model and cluster its held-out document representations."""
    context = ExperimentContext(settings)
    if context.dataset.test.labels is None:
        raise ValueError(
            f"dataset {settings.dataset!r} has no labels; Figure 3 needs them"
        )
    result = Fig3Result(dataset=settings.dataset)
    for name in models:
        evaluation = multi_seed_evaluation(
            context.factory(name),
            context.dataset.train,
            context.dataset.test,
            context.npmi_test,
            seeds=settings.seeds,
            model_name=name,
            cluster_counts=cluster_counts,
            run_spec=settings.run_spec,
        )
        result.km_purity[name] = evaluation.km_purity
        result.km_nmi[name] = evaluation.km_nmi
    return result


def format_fig3(result: Fig3Result) -> str:
    purity_series = {
        name: {float(k): v for k, v in curve.items()}
        for name, curve in result.km_purity.items()
    }
    nmi_series = {
        name: {float(k): v for k, v in curve.items()}
        for name, curve in result.km_nmi.items()
    }
    return "\n".join(
        [
            format_series(
                purity_series,
                x_label="#clusters",
                title=f"Figure 3a — km-Purity on {result.dataset}",
            ),
            "",
            format_series(
                nmi_series,
                x_label="#clusters",
                title=f"Figure 3b — km-NMI on {result.dataset}",
            ),
        ]
    )

"""Figures 4 & 5 — sensitivity analysis of λ and v.

The paper sweeps λ (the regularizer weight) and v (words sampled per
topic), reporting the max- and min-percentage values of coherence,
diversity and km-Purity.  Expected shape:

* λ↑ — coherence increases steadily (especially for the most coherent
  topics); diversity and km-Purity rise first, then decline once λ is so
  large it overwhelms the ELBO;
* v↑ — coherence and km-Purity rise quickly then plateau (v is the less
  sensitive hyper-parameter).

Figure 4 covers 20NG/Yahoo; Figure 5 covers NYTimes, whose λ scale is
"much larger than the other two datasets" — the sweep grids below keep
that relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.experiments.reporting import format_series
from repro.training.protocol import multi_seed_evaluation

# λ grids: NYTimes's grid is scaled up, as in the paper.
LAMBDA_GRID_SMALL = (0.0, 25.0, 100.0, 200.0, 400.0, 800.0)
LAMBDA_GRID_NYT = (0.0, 75.0, 300.0, 600.0, 1200.0, 2400.0)
V_GRID = (1, 4, 7, 10, 13, 19)


@dataclass
class SensitivityResult:
    """Metric extremes per swept value: ``{metric: {swept_value: score}}``."""

    dataset: str
    parameter: str  # "lambda" or "v"
    coherence_max: dict[float, float] = field(default_factory=dict)
    coherence_min: dict[float, float] = field(default_factory=dict)
    diversity_max: dict[float, float] = field(default_factory=dict)
    diversity_min: dict[float, float] = field(default_factory=dict)
    km_purity_max: dict[float, float] = field(default_factory=dict)
    km_purity_min: dict[float, float] = field(default_factory=dict)


def _record(result: SensitivityResult, value: float, evaluation) -> None:
    coh = evaluation.coherence
    div = evaluation.diversity
    result.coherence_max[value] = coh[min(coh)]     # smallest % = best topics
    result.coherence_min[value] = coh[max(coh)]     # 100% = all topics
    result.diversity_max[value] = max(div.values())
    result.diversity_min[value] = min(div.values())
    if evaluation.km_purity:
        result.km_purity_max[value] = max(evaluation.km_purity.values())
        result.km_purity_min[value] = min(evaluation.km_purity.values())


def run_lambda_sensitivity(
    settings: ExperimentSettings,
    lambda_grid: Sequence[float] | None = None,
) -> SensitivityResult:
    """Sweep λ for ContraTopic on one dataset."""
    if lambda_grid is None:
        lambda_grid = (
            LAMBDA_GRID_NYT if settings.dataset == "nytimes" else LAMBDA_GRID_SMALL
        )
    context = ExperimentContext(settings)
    labeled = context.dataset.test.labels is not None
    result = SensitivityResult(dataset=settings.dataset, parameter="lambda")
    for lam in lambda_grid:
        evaluation = multi_seed_evaluation(
            context.factory("contratopic", lambda_weight=lam),
            context.dataset.train,
            context.dataset.test,
            context.npmi_test,
            seeds=settings.seeds,
            model_name=f"lambda={lam}",
            cluster_counts=(20, 100) if labeled else (),
            run_spec=settings.run_spec,
        )
        _record(result, float(lam), evaluation)
    return result


def run_v_sensitivity(
    settings: ExperimentSettings,
    v_grid: Sequence[int] = V_GRID,
) -> SensitivityResult:
    """Sweep v (sampled words per topic) for ContraTopic on one dataset."""
    context = ExperimentContext(settings)
    labeled = context.dataset.test.labels is not None
    result = SensitivityResult(dataset=settings.dataset, parameter="v")
    for v in v_grid:
        evaluation = multi_seed_evaluation(
            context.factory("contratopic", num_sampled_words=v),
            context.dataset.train,
            context.dataset.test,
            context.npmi_test,
            seeds=settings.seeds,
            model_name=f"v={v}",
            cluster_counts=(20, 100) if labeled else (),
            run_spec=settings.run_spec,
        )
        _record(result, float(v), evaluation)
    return result


def format_sensitivity(result: SensitivityResult) -> str:
    series = {
        "coherence (max%)": result.coherence_max,
        "coherence (min%)": result.coherence_min,
        "diversity (max%)": result.diversity_max,
        "diversity (min%)": result.diversity_min,
    }
    if result.km_purity_max:
        series["km-purity (max)"] = result.km_purity_max
        series["km-purity (min)"] = result.km_purity_min
    from repro.viz import ascii_line_chart

    figure = "5" if result.dataset == "nytimes" else "4"
    table = format_series(
        series,
        x_label=result.parameter,
        title=(
            f"Figure {figure} — {result.parameter} sensitivity on "
            f"{result.dataset}"
        ),
    )
    chart = ascii_line_chart(
        {"coherence (min%)": result.coherence_min,
         "diversity (min%)": result.diversity_min},
        title=f"[chart] {result.parameter} sweep ({result.dataset})",
        height=12,
    )
    return f"{table}\n\n{chart}"

"""Hyper-parameter grid search on a validation split (§V.D).

The paper: "we keep the shared hyper-parameters unchanged and perform the
grid search for other hyper-parameters such as λ, v, τ_g ... on a
validation set split from the training corpus."  This module packages that
workflow: split, sweep the regularizer grid, select by a combined
interpretability score, refit the winner on the full training set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.contratopic import ContraTopic, ContraTopicConfig
from repro.core.similarity import npmi_kernel
from repro.data.corpus import Corpus
from repro.data.loaders import train_valid_split
from repro.errors import ConfigError
from repro.metrics.coherence import topic_coherence
from repro.metrics.diversity import topic_diversity
from repro.metrics.npmi import compute_npmi_matrix
from repro.models.base import NeuralTopicModel
from repro.training.trainer import RunSpec, Trainer


@dataclass(frozen=True)
class GridPoint:
    """One evaluated configuration and its validation scores."""

    lambda_weight: float
    num_sampled_words: int
    coherence: float
    diversity: float
    score: float


@dataclass
class GridSearchResult:
    """All evaluated points plus the selected configuration."""

    points: list[GridPoint] = field(default_factory=list)
    #: Grid points whose training run raised, as ``"(λ=..., v=...): error"``
    #: strings.  A failed point is excluded from the selection instead of
    #: aborting the sweep (see :mod:`repro.parallel`).
    failures: list[str] = field(default_factory=list)

    @property
    def best(self) -> GridPoint:
        if not self.points:
            raise ConfigError("grid search evaluated no points")
        return max(self.points, key=lambda p: p.score)

    def as_rows(self) -> list[list[object]]:
        """Rows for :func:`repro.experiments.reporting.format_table`."""
        return [
            [p.lambda_weight, p.num_sampled_words, p.coherence, p.diversity, p.score]
            for p in sorted(self.points, key=lambda p: -p.score)
        ]


def interpretability_score(
    coherence: float, diversity: float, diversity_weight: float = 0.5
) -> float:
    """The default selection criterion: both facets matter (paper §IV.A)."""
    return coherence + diversity_weight * diversity


def grid_search_contratopic(
    backbone_factory,
    train_corpus: Corpus,
    lambda_grid: Sequence[float] = (0.0, 10.0, 40.0, 160.0),
    v_grid: Sequence[int] = (5, 10),
    valid_fraction: float = 0.2,
    kernel_temperature: float = 0.25,
    negative_weight: float = 3.0,
    gumbel_temperature: float = 0.5,
    diversity_weight: float = 0.5,
    seed: int = 0,
    workers: int | None = 1,
    registry=None,
    run_spec: RunSpec | None = None,
) -> tuple[GridSearchResult, ContraTopic]:
    """Sweep (λ, v) on a validation split, then refit the winner.

    Parameters
    ----------
    backbone_factory:
        ``(vocab_size) -> NeuralTopicModel`` building a fresh, unfitted
        backbone each call (construction must be deterministic for a fair
        comparison across grid points).
    train_corpus:
        Full training corpus; a validation split is carved out internally.
    run_spec:
        Declarative training configuration applied to every grid point
        and the final refit.  Defaults to :meth:`RunSpec.guarded`: the
        sweep deliberately visits aggressive regularizer settings, so a
        point that diverges recovers through the guard's escalation
        ladder instead of burning the whole (λ, v) cell.  The guard only
        intervenes on non-finite batches, so scores on healthy points
        are unchanged.
    workers:
        The grid points are independent train-and-score jobs, so they fan
        out over :class:`repro.parallel.ParallelMap`.  ``1`` (default) is
        the exact serial path; ``None`` resolves via ``REPRO_WORKERS`` /
        CPU count.  Scores are identical for every worker count because
        each point's model construction is deterministic and the
        validation split is drawn before the fan-out.  A point whose run
        raises is recorded in ``result.failures`` and skipped.

    Returns
    -------
    (result, final_model):
        The scored grid and a ContraTopic refitted on the *full* training
        corpus with the winning configuration.
    """
    from repro.parallel import ParallelMap, require_any_success

    if not lambda_grid or not v_grid:
        raise ConfigError("lambda_grid and v_grid must be non-empty")
    trainer = Trainer(run_spec if run_spec is not None else RunSpec.guarded())
    rng = np.random.default_rng(seed)
    train, valid = train_valid_split(train_corpus, valid_fraction, rng)
    train_npmi = compute_npmi_matrix(train)
    valid_npmi = compute_npmi_matrix(valid)
    kernel = npmi_kernel(train_npmi, temperature=kernel_temperature)

    grid = [(lw, v) for lw in lambda_grid for v in v_grid]

    def score_point(point: tuple[float, int]) -> GridPoint:
        lambda_weight, v = point
        backbone: NeuralTopicModel = backbone_factory(train.vocab_size)
        model = ContraTopic(
            backbone,
            kernel,
            ContraTopicConfig(
                lambda_weight=lambda_weight,
                num_sampled_words=v,
                gumbel_temperature=gumbel_temperature,
                negative_weight=negative_weight,
            ),
        )
        trainer.fit(model, train)
        beta = model.topic_word_matrix()
        coherence = topic_coherence(beta, valid_npmi)
        diversity = topic_diversity(beta)
        return GridPoint(
            lambda_weight=lambda_weight,
            num_sampled_words=v,
            coherence=coherence,
            diversity=diversity,
            score=interpretability_score(coherence, diversity, diversity_weight),
        )

    outcomes = ParallelMap(workers=workers, registry=registry).map(
        score_point, grid
    )
    require_any_success(outcomes, "grid-search")
    result = GridSearchResult()
    for (lambda_weight, v), outcome in zip(grid, outcomes):
        if outcome.ok:
            result.points.append(outcome.value)
        else:
            result.failures.append(f"(λ={lambda_weight}, v={v}): {outcome.error}")

    best = result.best
    full_npmi = compute_npmi_matrix(train_corpus)
    final = ContraTopic(
        backbone_factory(train_corpus.vocab_size),
        npmi_kernel(full_npmi, temperature=kernel_temperature),
        ContraTopicConfig(
            lambda_weight=best.lambda_weight,
            num_sampled_words=best.num_sampled_words,
            gumbel_temperature=gumbel_temperature,
            negative_weight=negative_weight,
        ),
    )
    trainer.fit(final, train_corpus)
    return result, final

"""Hyper-parameter grid search on a validation split (§V.D).

The paper: "we keep the shared hyper-parameters unchanged and perform the
grid search for other hyper-parameters such as λ, v, τ_g ... on a
validation set split from the training corpus."  This module packages that
workflow: split, sweep the regularizer grid, select by a combined
interpretability score, refit the winner on the full training set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.contratopic import ContraTopic, ContraTopicConfig
from repro.core.similarity import npmi_kernel
from repro.data.corpus import Corpus
from repro.data.loaders import train_valid_split
from repro.errors import ConfigError
from repro.metrics.coherence import topic_coherence
from repro.metrics.diversity import topic_diversity
from repro.metrics.npmi import compute_npmi_matrix
from repro.models.base import NeuralTopicModel


@dataclass(frozen=True)
class GridPoint:
    """One evaluated configuration and its validation scores."""

    lambda_weight: float
    num_sampled_words: int
    coherence: float
    diversity: float
    score: float


@dataclass
class GridSearchResult:
    """All evaluated points plus the selected configuration."""

    points: list[GridPoint] = field(default_factory=list)

    @property
    def best(self) -> GridPoint:
        if not self.points:
            raise ConfigError("grid search evaluated no points")
        return max(self.points, key=lambda p: p.score)

    def as_rows(self) -> list[list[object]]:
        """Rows for :func:`repro.experiments.reporting.format_table`."""
        return [
            [p.lambda_weight, p.num_sampled_words, p.coherence, p.diversity, p.score]
            for p in sorted(self.points, key=lambda p: -p.score)
        ]


def interpretability_score(
    coherence: float, diversity: float, diversity_weight: float = 0.5
) -> float:
    """The default selection criterion: both facets matter (paper §IV.A)."""
    return coherence + diversity_weight * diversity


def grid_search_contratopic(
    backbone_factory,
    train_corpus: Corpus,
    lambda_grid: Sequence[float] = (0.0, 10.0, 40.0, 160.0),
    v_grid: Sequence[int] = (5, 10),
    valid_fraction: float = 0.2,
    kernel_temperature: float = 0.25,
    negative_weight: float = 3.0,
    gumbel_temperature: float = 0.5,
    diversity_weight: float = 0.5,
    seed: int = 0,
) -> tuple[GridSearchResult, ContraTopic]:
    """Sweep (λ, v) on a validation split, then refit the winner.

    Parameters
    ----------
    backbone_factory:
        ``(vocab_size) -> NeuralTopicModel`` building a fresh, unfitted
        backbone each call (construction must be deterministic for a fair
        comparison across grid points).
    train_corpus:
        Full training corpus; a validation split is carved out internally.

    Returns
    -------
    (result, final_model):
        The scored grid and a ContraTopic refitted on the *full* training
        corpus with the winning configuration.
    """
    if not lambda_grid or not v_grid:
        raise ConfigError("lambda_grid and v_grid must be non-empty")
    rng = np.random.default_rng(seed)
    train, valid = train_valid_split(train_corpus, valid_fraction, rng)
    train_npmi = compute_npmi_matrix(train)
    valid_npmi = compute_npmi_matrix(valid)
    kernel = npmi_kernel(train_npmi, temperature=kernel_temperature)

    result = GridSearchResult()
    for lambda_weight in lambda_grid:
        for v in v_grid:
            backbone: NeuralTopicModel = backbone_factory(train.vocab_size)
            model = ContraTopic(
                backbone,
                kernel,
                ContraTopicConfig(
                    lambda_weight=lambda_weight,
                    num_sampled_words=v,
                    gumbel_temperature=gumbel_temperature,
                    negative_weight=negative_weight,
                ),
            )
            model.fit(train)
            beta = model.topic_word_matrix()
            coherence = topic_coherence(beta, valid_npmi)
            diversity = topic_diversity(beta)
            result.points.append(
                GridPoint(
                    lambda_weight=lambda_weight,
                    num_sampled_words=v,
                    coherence=coherence,
                    diversity=diversity,
                    score=interpretability_score(
                        coherence, diversity, diversity_weight
                    ),
                )
            )

    best = result.best
    full_npmi = compute_npmi_matrix(train_corpus)
    final = ContraTopic(
        backbone_factory(train_corpus.vocab_size),
        npmi_kernel(full_npmi, temperature=kernel_temperature),
        ContraTopicConfig(
            lambda_weight=best.lambda_weight,
            num_sampled_words=best.num_sampled_words,
            gumbel_temperature=gumbel_temperature,
            negative_weight=negative_weight,
        ),
    )
    final.fit(train_corpus)
    return result, final

"""Plain-text rendering of experiment results as paper-style tables.

All experiments print through these helpers so benchmark output is uniform
and diffable.  ``paper_vs_measured`` renders the EXPERIMENTS.md comparison
rows.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table; floats rendered with 3 decimals."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[float, float]],
    x_label: str = "% topics",
    title: str | None = None,
) -> str:
    """Render ``{line_name: {x: y}}`` as a table with one column per x.

    This is the textual analogue of a Figure-2 style line plot.
    """
    xs = sorted({x for line in series.values() for x in line})
    headers = [x_label] + [_x_header(x) for x in xs]
    rows = []
    for name, line in series.items():
        rows.append([name] + [line.get(x, float("nan")) for x in xs])
    return format_table(headers, rows, title=title)


def _x_header(x: float) -> str:
    if isinstance(x, float) and 0 < x <= 1:
        return f"{int(round(x * 100))}%"
    if isinstance(x, float) and x.is_integer():
        return str(int(x))
    return str(x)


def paper_vs_measured(
    rows: Sequence[tuple[str, object, object]],
    title: str | None = None,
) -> str:
    """Three-column comparison: metric, paper-reported, measured here."""
    return format_table(
        ["metric", "paper", "measured"],
        [list(r) for r in rows],
        title=title,
    )

"""WLDA — topic modeling with Wasserstein autoencoders (Nan et al., 2019).

Replaces the VAE's KL term with a Maximum Mean Discrepancy (MMD) penalty
between the batch of inferred document-topic vectors and samples from a
Dirichlet prior.  The decoder is a plain (K, V) softmax matrix.

The MMD uses the information-diffusion kernel on the simplex from the WLDA
paper: ``k(x, y) = exp(-arccos²(Σ √(x_i y_i)))`` — computed here on
√-transformed θ with a differentiable arccos surrogate (we use the
equivalent geodesic form with the numerically-friendlier ``2 - 2·Σ√(xy)``
chordal approximation, which preserves the kernel's ordering).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import NeuralTopicModel, NTMConfig
from repro.nn import init
from repro.nn.module import Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def mmd_loss(sample_a: Tensor, sample_b: Tensor, bandwidth: float = 1.0) -> Tensor:
    """Unbiased-ish MMD² with the simplex diffusion kernel.

    Both inputs are batches of points on the simplex, ``(n, K)`` each.
    """
    def kernel(x: Tensor, y: Tensor) -> Tensor:
        # Bhattacharyya affinity: Σ_i sqrt(x_i y_i) ∈ (0, 1]
        affinity = (x + 1e-12).sqrt() @ (y + 1e-12).sqrt().T
        affinity = affinity.clip(0.0, 1.0)
        # chordal distance² on the sphere of √θ: 2 - 2·affinity
        dist_sq = (1.0 - affinity) * 2.0
        return (-dist_sq * (1.0 / bandwidth)).exp()

    k_aa = kernel(sample_a, sample_a).mean()
    k_bb = kernel(sample_b, sample_b).mean()
    k_ab = kernel(sample_a, sample_b).mean()
    return k_aa + k_bb - k_ab * 2.0


class WLDA(NeuralTopicModel):
    """Wasserstein-autoencoder topic model (MMD instead of KL)."""

    def __init__(
        self,
        vocab_size: int,
        config: NTMConfig,
        dirichlet_alpha: float = 0.1,
        mmd_weight: float = 20.0,
    ):
        super().__init__(vocab_size, config)
        self.dirichlet_alpha = dirichlet_alpha
        self.mmd_weight = mmd_weight
        self.topic_logits = Parameter(
            init.xavier_uniform((config.num_topics, vocab_size), self._rng)
        )

    def beta(self) -> Tensor:
        return F.softmax(self.topic_logits, axis=1)

    def encode_theta(self, bow: np.ndarray, sample: bool = True):
        # WAE: deterministic encoder — θ = softmax(μ), no noise injection.
        theta, mu, logvar = super().encode_theta(bow, sample=False)
        return theta, mu, logvar

    def kl_loss(self, mu: Tensor, logvar: Tensor, theta: Tensor) -> Tensor:
        """MMD between encoded θ batch and Dirichlet prior samples."""
        prior = self._rng.dirichlet(
            np.full(self.config.num_topics, self.dirichlet_alpha),
            size=theta.shape[0],
        )
        return mmd_loss(theta, Tensor(prior)) * self.mmd_weight

"""NTM-R — coherence-aware neural topic modeling (Ding et al., 2018).

Adds a differentiable topic-coherence surrogate built from *word
embeddings* to the ProdLDA objective: each topic should concentrate its
mass on words whose embeddings agree with the topic's own (probability-
weighted) embedding centroid.  The paper uses NTM-R as the representative
"coherence-only objective" baseline — it optimizes coherence but has no
notion of cross-topic diversity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.models.base import NTMConfig
from repro.models.prodlda import ProdLDA
from repro.tensor.dtypes import get_default_dtype
from repro.tensor.tensor import Tensor


class NTMR(ProdLDA):
    """ProdLDA + embedding-based coherence regularizer.

    Parameters
    ----------
    coherence_weight:
        Strength of the (negative) coherence reward added to the loss.
    """

    def __init__(
        self,
        vocab_size: int,
        config: NTMConfig,
        word_embeddings: np.ndarray,
        coherence_weight: float = 5.0,
    ):
        super().__init__(vocab_size, config)
        emb = np.asarray(word_embeddings, dtype=get_default_dtype())
        if emb.shape[0] != vocab_size:
            raise ShapeError(
                f"embeddings rows {emb.shape[0]} != vocab size {vocab_size}"
            )
        norms = np.linalg.norm(emb, axis=1, keepdims=True) + 1e-12
        self._embeddings = Tensor(emb / norms)  # frozen
        self.coherence_weight = coherence_weight

    def extra_loss(self, theta: Tensor, beta: Tensor, bow: np.ndarray) -> Tensor:
        """Negative expected word-to-centroid cosine agreement.

        centroid_k = normalize(β_k ρ);  coherence = Σ_k β_k · (ρ centroid_k)
        """
        centroids = beta @ self._embeddings  # (K, e)
        norm = ((centroids * centroids).sum(axis=1, keepdims=True) + 1e-12).sqrt()
        centroids = centroids / norm
        agreement = (beta * (centroids @ self._embeddings.T)).sum(axis=1)
        return -agreement.mean() * self.coherence_weight

"""VTMRL — neural topic model with reinforcement learning (Gui et al., 2019).

Treats the per-topic top-word selection as an action and the topic's NPMI
coherence as the reward, updating the topic-word logits with the score-
function (REINFORCE) estimator plus a running-mean baseline.  This is the
paper's representative "non-differentiable coherence reward" baseline —
contrast with ContraTopic's fully differentiable surrogate; the paper notes
its "intricate complexity of the states poses challenges for convergence".
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.metrics.npmi import NpmiMatrix
from repro.models.base import NTMConfig
from repro.models.prodlda import ProdLDA
from repro.tensor.tensor import Tensor


class VTMRL(ProdLDA):
    """ProdLDA + REINFORCE coherence reward.

    Parameters
    ----------
    npmi:
        Pre-computed NPMI matrix on the training corpus (the reward signal).
    reward_weight:
        Scale of the policy-gradient term in the loss.
    sample_words:
        Number of words sampled (without replacement) per topic per step.
    """

    def __init__(
        self,
        vocab_size: int,
        config: NTMConfig,
        npmi: NpmiMatrix,
        reward_weight: float = 5.0,
        sample_words: int = 10,
    ):
        super().__init__(vocab_size, config)
        if npmi.vocab_size != vocab_size:
            raise ShapeError(
                f"NPMI vocab {npmi.vocab_size} != model vocab {vocab_size}"
            )
        self._npmi = npmi
        self.reward_weight = reward_weight
        self.sample_words = sample_words
        self._baseline = 0.0
        self._baseline_momentum = 0.9

    def _sample_topic_words(self, beta_data: np.ndarray) -> np.ndarray:
        """Hard Gumbel-top-k word sample per topic, ``(K, sample_words)``."""
        gumbel = self._rng.gumbel(size=beta_data.shape)
        keys = np.log(beta_data + 1e-12) + gumbel
        return np.argsort(-keys, axis=1)[:, : self.sample_words]

    def _reward(self, samples: np.ndarray) -> np.ndarray:
        """Mean pairwise NPMI of each topic's sampled words."""
        return np.array([self._npmi.mean_pairwise(row) for row in samples])

    def extra_loss(self, theta: Tensor, beta: Tensor, bow: np.ndarray) -> Tensor:
        samples = self._sample_topic_words(beta.data)
        rewards = self._reward(samples)
        advantage = rewards - self._baseline
        self._baseline = (
            self._baseline_momentum * self._baseline
            + (1.0 - self._baseline_momentum) * float(rewards.mean())
        )
        # REINFORCE: -E[(r - b) * Σ log β_k,w] over the sampled words.
        log_beta = (beta + 1e-12).log()
        k = samples.shape[0]
        terms = []
        for topic in range(k):
            log_probs = log_beta[topic][Tensor(samples[topic])]
            terms.append(log_probs.sum() * float(advantage[topic]))
        from repro.tensor.tensor import stack

        policy = stack(terms).mean()
        return -policy * self.reward_weight

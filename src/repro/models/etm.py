"""ETM — the Embedded Topic Model (Dieng, Ruiz & Blei, 2020).

Words and topics live in a shared embedding space: with word embeddings ρ
(frozen, as in the paper: "We freeze the word embeddings during the
training time for stability") and learned topic embeddings t_k, the
topic-word distribution is ``β_k = softmax(ρ t_k / τ_β)``.  ETM is the
backbone model of ContraTopic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.models.base import NeuralTopicModel, NTMConfig
from repro.nn import init
from repro.nn.module import Parameter
from repro.tensor.dtypes import get_default_dtype
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class ETM(NeuralTopicModel):
    """Embedded topic model with frozen word embeddings.

    Parameters
    ----------
    vocab_size:
        Size of the vocabulary.
    config:
        Shared NTM hyper-parameters (``beta_temperature`` is ETM's τ_β).
    word_embeddings:
        ``(V, e)`` pre-trained vectors (ρ).  Kept constant during training.
    """

    def __init__(
        self,
        vocab_size: int,
        config: NTMConfig,
        word_embeddings: np.ndarray,
    ):
        super().__init__(vocab_size, config)
        rho = np.asarray(word_embeddings, dtype=get_default_dtype())
        if rho.shape[0] != vocab_size:
            raise ShapeError(
                f"embeddings rows {rho.shape[0]} != vocab size {vocab_size}"
            )
        # Row-normalize so the τ_β temperature has a consistent scale.
        norms = np.linalg.norm(rho, axis=1, keepdims=True) + 1e-12
        self.rho = Tensor(rho / norms)  # frozen: a plain constant tensor
        self.topic_embeddings = Parameter(
            init.xavier_uniform((config.num_topics, rho.shape[1]), self._rng)
        )

    def beta(self) -> Tensor:
        """β = softmax(ρ tᵀ / τ_β) over the vocabulary axis."""
        logits = (self.topic_embeddings @ self.rho.T) * (
            1.0 / self.config.beta_temperature
        )
        return F.softmax(logits, axis=1)

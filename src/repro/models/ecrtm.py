"""ECRTM — embedding clustering regularization topic model (Wu et al., 2023).

The most recent related work the paper cites (§II.A): ECRTM "avoids the
collapsing of topic embeddings" by forcing each topic embedding to be the
center of a distinct cluster of word embeddings, formulated as optimal
transport between topic embeddings and word embeddings with a uniform
topic marginal.  Included here as an optional extra baseline beyond the
paper's Figure-2 lineup.

Implementation: ETM decoder + a Sinkhorn-based clustering regularizer
transporting the word-embedding mass to topic embeddings under the uniform
topic marginal — collapsed topics cannot jointly absorb their 1/K shares,
so the transport cost pushes them apart.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import NTMConfig
from repro.models.etm import ETM
from repro.ot.costs import euclidean_cost_matrix
from repro.ot.sinkhorn import sinkhorn_divergence_loss
from repro.tensor.tensor import Tensor


class ECRTM(ETM):
    """ETM + embedding clustering regularization.

    Parameters
    ----------
    ecr_weight:
        Weight of the clustering-transport term.
    sinkhorn_epsilon / sinkhorn_iterations:
        Entropic OT solver knobs for the regularizer.
    """

    def __init__(
        self,
        vocab_size: int,
        config: NTMConfig,
        word_embeddings: np.ndarray,
        ecr_weight: float = 3.0,
        sinkhorn_epsilon: float = 0.15,
        sinkhorn_iterations: int = 15,
    ):
        super().__init__(vocab_size, config, word_embeddings)
        self.ecr_weight = ecr_weight
        self.sinkhorn_epsilon = sinkhorn_epsilon
        self.sinkhorn_iterations = sinkhorn_iterations

    def clustering_regularizer(self) -> Tensor:
        """OT(words -> topics) with uniform marginals in embedding space."""
        cost = euclidean_cost_matrix(self.rho, self.topic_embeddings)  # (V, K)
        v, k = cost.shape
        word_marginal = Tensor(np.full((1, v), 1.0 / v))
        topic_marginal = Tensor(np.full((1, k), 1.0 / k))
        return sinkhorn_divergence_loss(
            cost,
            word_marginal,
            topic_marginal,
            epsilon=self.sinkhorn_epsilon,
            n_iterations=self.sinkhorn_iterations,
        )

    def extra_loss(self, theta: Tensor, beta: Tensor, bow: np.ndarray) -> Tensor:
        return self.clustering_regularizer() * self.ecr_weight

"""Topic models: the paper's nine baselines (plus ECRTM) and shared
infrastructure.

All models implement the :class:`~repro.models.base.TopicModel` interface
(fit / topic_word_matrix / transform / top_words), so the experiment harness
treats LDA, the VAE family, the OT family and ContraTopic uniformly.
"""

from repro.models.base import (
    TopicModel,
    NeuralTopicModel,
    NTMConfig,
    VaeEncoder,
)
from repro.models.lda import LatentDirichletAllocation, LdaConfig
from repro.models.prodlda import ProdLDA
from repro.models.etm import ETM
from repro.models.wlda import WLDA
from repro.models.ntmr import NTMR
from repro.models.vtmrl import VTMRL
from repro.models.clntm import CLNTM
from repro.models.ecrtm import ECRTM
from repro.models.nstm import NSTM
from repro.models.wete import WeTe
from repro.models.registry import build_model, available_models

__all__ = [
    "TopicModel",
    "NeuralTopicModel",
    "NTMConfig",
    "VaeEncoder",
    "LatentDirichletAllocation",
    "LdaConfig",
    "ProdLDA",
    "ETM",
    "WLDA",
    "NTMR",
    "VTMRL",
    "CLNTM",
    "ECRTM",
    "NSTM",
    "WeTe",
    "build_model",
    "available_models",
]

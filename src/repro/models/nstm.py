"""NSTM — neural topic model via optimal transport (Zhao et al., 2020).

Learns document-topic proportions by minimising the entropic OT distance
between each document's empirical word distribution and its topic
distribution, under a ground cost of cosine distance between (frozen) word
embeddings and (learned) topic embeddings.  The topic-word matrix is read
off the same geometry: ``β_k ∝ softmax_v(-C_vk / τ)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.models.base import NeuralTopicModel, NTMConfig
from repro.nn import init
from repro.nn.module import Parameter
from repro.ot.costs import cosine_cost_matrix
from repro.ot.sinkhorn import sinkhorn_divergence_loss
from repro.tensor.dtypes import get_default_dtype
from repro.tensor import functional as F
from repro.tensor import fused
from repro.tensor.tensor import Tensor


class NSTM(NeuralTopicModel):
    """Optimal-transport topic model with a Sinkhorn objective.

    Parameters
    ----------
    sinkhorn_epsilon / sinkhorn_iterations:
        Entropic regularisation strength and unrolled iteration count.
    ot_weight:
        Weight of the transport term relative to the (retained, small)
        categorical reconstruction that stabilises training.
    """

    def __init__(
        self,
        vocab_size: int,
        config: NTMConfig,
        word_embeddings: np.ndarray,
        sinkhorn_epsilon: float = 0.1,
        sinkhorn_iterations: int = 12,
        ot_weight: float = 5.0,
    ):
        super().__init__(vocab_size, config)
        rho = np.asarray(word_embeddings, dtype=get_default_dtype())
        if rho.shape[0] != vocab_size:
            raise ShapeError(
                f"embeddings rows {rho.shape[0]} != vocab size {vocab_size}"
            )
        norms = np.linalg.norm(rho, axis=1, keepdims=True) + 1e-12
        self.rho = Tensor(rho / norms)
        self.topic_embeddings = Parameter(
            init.xavier_uniform((config.num_topics, rho.shape[1]), self._rng)
        )
        self.sinkhorn_epsilon = sinkhorn_epsilon
        self.sinkhorn_iterations = sinkhorn_iterations
        self.ot_weight = ot_weight

    def _cost_matrix(self) -> Tensor:
        """``(V, K)`` cosine-distance ground cost."""
        return cosine_cost_matrix(self.rho, self.topic_embeddings)

    def beta(self) -> Tensor:
        cost = self._cost_matrix()  # (V, K)
        logits = (-cost.T) * (1.0 / self.config.beta_temperature)
        return F.softmax(logits, axis=1)

    def reconstruction_loss(self, theta: Tensor, beta: Tensor, bow: np.ndarray) -> Tensor:
        bow = np.asarray(bow)
        word_dist = bow / np.maximum(bow.sum(axis=1, keepdims=True), 1.0)
        ot = sinkhorn_divergence_loss(
            self._cost_matrix(),
            Tensor(word_dist),
            theta,
            epsilon=self.sinkhorn_epsilon,
            n_iterations=self.sinkhorn_iterations,
        )
        # A light categorical term keeps the encoder's gradients healthy
        # early in training (the original warm-starts similarly).
        rec = fused.nll_from_probs(theta @ beta, bow)
        return ot * self.ot_weight + rec * 0.1

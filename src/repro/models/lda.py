"""Latent Dirichlet Allocation via collapsed Gibbs sampling (Blei et al.,
2003; Griffiths & Steyvers, 2004).

The conventional-topic-model baseline.  Collapsed Gibbs integrates out θ
and β analytically and resamples each token's topic assignment from

    p(z = k | rest) ∝ (n_dk + α) * (n_kw + η) / (n_k + V η)

Held-out documents are folded in by running the same sampler with the
topic-word counts frozen.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corpus import Corpus
from repro.errors import ConfigError, NotFittedError
from repro.models.base import TopicModel


@dataclass
class LdaConfig:
    """Collapsed-Gibbs hyper-parameters."""

    num_topics: int = 20
    alpha: float = 0.1
    eta: float = 0.01
    iterations: int = 60
    foldin_iterations: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_topics < 2:
            raise ConfigError("num_topics must be >= 2")
        if self.alpha <= 0 or self.eta <= 0:
            raise ConfigError("alpha and eta must be positive")
        if self.iterations < 1:
            raise ConfigError("iterations must be >= 1")


class LatentDirichletAllocation(TopicModel):
    """Collapsed Gibbs LDA implementing the shared TopicModel interface."""

    def __init__(self, vocab_size: int, config: LdaConfig | None = None):
        self.vocab_size = vocab_size
        self.config = config or LdaConfig()
        self._topic_word_counts: np.ndarray | None = None
        self._topic_totals: np.ndarray | None = None
        self._doc_topic_counts: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, corpus: Corpus) -> "LatentDirichletAllocation":
        if corpus.vocab_size != self.vocab_size:
            raise ConfigError(
                f"corpus vocab {corpus.vocab_size} != model vocab {self.vocab_size}"
            )
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        k, v = cfg.num_topics, self.vocab_size

        docs = corpus.documents
        assignments = [rng.integers(k, size=doc.size) for doc in docs]
        n_kw = np.zeros((k, v))
        n_k = np.zeros(k)
        n_dk = np.zeros((len(docs), k))
        for d, (doc, z) in enumerate(zip(docs, assignments)):
            np.add.at(n_kw, (z, doc), 1.0)
            np.add.at(n_k, z, 1.0)
            np.add.at(n_dk[d], z, 1.0)

        for _ in range(cfg.iterations):
            self._sweep(docs, assignments, n_kw, n_k, n_dk, rng, frozen_beta=False)

        self._topic_word_counts = n_kw
        self._topic_totals = n_k
        self._doc_topic_counts = n_dk
        return self

    def _sweep(
        self,
        docs,
        assignments,
        n_kw: np.ndarray,
        n_k: np.ndarray,
        n_dk: np.ndarray,
        rng: np.random.Generator,
        frozen_beta: bool,
    ) -> None:
        """One Gibbs sweep over every token of every document."""
        cfg = self.config
        v_eta = self.vocab_size * cfg.eta
        for d, doc in enumerate(docs):
            z_doc = assignments[d]
            doc_counts = n_dk[d]
            for i, word in enumerate(doc):
                old = z_doc[i]
                doc_counts[old] -= 1.0
                if not frozen_beta:
                    n_kw[old, word] -= 1.0
                    n_k[old] -= 1.0
                weights = (doc_counts + cfg.alpha) * (
                    (n_kw[:, word] + cfg.eta) / (n_k + v_eta)
                )
                weights_sum = weights.sum()
                new = int(rng.choice(cfg.num_topics, p=weights / weights_sum))
                z_doc[i] = new
                doc_counts[new] += 1.0
                if not frozen_beta:
                    n_kw[new, word] += 1.0
                    n_k[new] += 1.0

    # ------------------------------------------------------------------
    def topic_word_matrix(self) -> np.ndarray:
        self._require_fitted()
        cfg = self.config
        beta = self._topic_word_counts + cfg.eta
        return beta / beta.sum(axis=1, keepdims=True)

    def transform(self, corpus: Corpus) -> np.ndarray:
        """Fold-in inference: Gibbs with the topic-word counts frozen."""
        self._require_fitted()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 17)
        k = cfg.num_topics
        docs = corpus.documents
        assignments = [rng.integers(k, size=doc.size) for doc in docs]
        n_dk = np.zeros((len(docs), k))
        for d, z in enumerate(assignments):
            np.add.at(n_dk[d], z, 1.0)
        for _ in range(cfg.foldin_iterations):
            self._sweep(
                docs,
                assignments,
                self._topic_word_counts,
                self._topic_totals,
                n_dk,
                rng,
                frozen_beta=True,
            )
        theta = n_dk + cfg.alpha
        return theta / theta.sum(axis=1, keepdims=True)

    def training_doc_topic(self) -> np.ndarray:
        """Document-topic proportions from the training sweep counts."""
        self._require_fitted()
        theta = self._doc_topic_counts + self.config.alpha
        return theta / theta.sum(axis=1, keepdims=True)

    def _require_fitted(self) -> None:
        if self._topic_word_counts is None:
            raise NotFittedError("LDA has not been fitted")

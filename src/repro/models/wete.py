"""WeTe — representing mixtures of word embeddings with mixtures of topic
embeddings (Wang et al., 2022).

Views each document as a *set* of word embeddings and measures, via
bidirectional conditional transport, how well the set of topic embeddings
covers it: the forward direction moves each observed word to its best
topics (weighted by θ), the backward direction moves each topic back to
the document's words.  Both directions use a softmax transport kernel in
embedding space, so the loss is fully differentiable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.models.base import NeuralTopicModel, NTMConfig
from repro.nn import init
from repro.nn.module import Parameter
from repro.ot.costs import cosine_cost_matrix
from repro.tensor.dtypes import get_default_dtype
from repro.tensor import functional as F
from repro.tensor import fused
from repro.tensor.tensor import Tensor


class WeTe(NeuralTopicModel):
    """Bidirectional conditional-transport topic model.

    Parameters
    ----------
    transport_temperature:
        Softmax temperature of the conditional transport kernels.
    ct_weight:
        Weight of the conditional-transport term relative to the retained
        categorical reconstruction.
    """

    def __init__(
        self,
        vocab_size: int,
        config: NTMConfig,
        word_embeddings: np.ndarray,
        transport_temperature: float = 0.3,
        ct_weight: float = 2.0,
    ):
        super().__init__(vocab_size, config)
        rho = np.asarray(word_embeddings, dtype=get_default_dtype())
        if rho.shape[0] != vocab_size:
            raise ShapeError(
                f"embeddings rows {rho.shape[0]} != vocab size {vocab_size}"
            )
        norms = np.linalg.norm(rho, axis=1, keepdims=True) + 1e-12
        self.rho = Tensor(rho / norms)
        self.topic_embeddings = Parameter(
            init.xavier_uniform((config.num_topics, rho.shape[1]), self._rng)
        )
        self.transport_temperature = transport_temperature
        self.ct_weight = ct_weight

    def beta(self) -> Tensor:
        logits = (self.topic_embeddings @ self.rho.T) * (
            1.0 / self.config.beta_temperature
        )
        return F.softmax(logits, axis=1)

    def reconstruction_loss(self, theta: Tensor, beta: Tensor, bow: np.ndarray) -> Tensor:
        bow = np.asarray(bow)
        word_dist = Tensor(bow / np.maximum(bow.sum(axis=1, keepdims=True), 1.0))
        cost = cosine_cost_matrix(self.rho, self.topic_embeddings)  # (V, K)
        inv_temp = 1.0 / self.transport_temperature

        # Forward CT: word -> topic, weighted by θ.
        # π(k|v, d) ∝ θ_dk exp(-C_vk / τ); expected cost over observed words.
        fwd_logits = (-cost) * inv_temp  # (V, K)
        fwd_kernel = fwd_logits.exp()  # (V, K)
        weighted = theta.reshape(theta.shape[0], 1, -1) * fwd_kernel.reshape(
            1, *fwd_kernel.shape
        )  # (B, V, K)
        norm = weighted.sum(axis=2, keepdims=True) + 1e-12
        pi_fwd = weighted / norm
        fwd_cost = (pi_fwd * cost.reshape(1, *cost.shape)).sum(axis=2)  # (B, V)
        forward = (word_dist * fwd_cost).sum(axis=1).mean()

        # Backward CT: topic -> word, weighted by the document's word dist.
        bwd_kernel = fwd_kernel.T  # (K, V)
        weighted_b = word_dist.reshape(word_dist.shape[0], 1, -1) * bwd_kernel.reshape(
            1, *bwd_kernel.shape
        )  # (B, K, V)
        norm_b = weighted_b.sum(axis=2, keepdims=True) + 1e-12
        pi_bwd = weighted_b / norm_b
        bwd_cost = (pi_bwd * cost.T.reshape(1, *bwd_kernel.shape)).sum(axis=2)  # (B, K)
        backward = (theta * bwd_cost).sum(axis=1).mean()

        ct = (forward + backward) * self.ct_weight
        rec = fused.nll_from_probs(theta @ beta, bow)
        return ct + rec * 0.1

"""CLNTM — contrastive learning for neural topic models (Nguyen & Luu, 2021).

The paper's representative *document-wise* contrastive baseline, and the
method ContraTopic is contrasted against in §IV.E.  Since the objective
refactor the math lives in
:class:`repro.objectives.clntm.DocumentContrastiveObjective`; this class
is the registry alias **ProdLDA backbone + that one term** — its training
is bitwise-identical to ``ProdLDA`` with
``ObjectiveSpec("clntm")`` attached (pinned by
``tests/objectives/test_rivals.py``).  The ``_augment``/``extra_loss``
methods remain as thin delegates for direct inspection and the legacy
test surface.
"""

from __future__ import annotations

import numpy as np

from repro.data.corpus import Corpus
from repro.models.base import NTMConfig
from repro.models.prodlda import ProdLDA
from repro.objectives.clntm import DocumentContrastiveObjective
from repro.tensor.tensor import Tensor


class CLNTM(ProdLDA):
    """ProdLDA + document-wise InfoNCE with tf-idf driven views.

    Parameters
    ----------
    contrastive_weight:
        Weight of the InfoNCE term in the loss.
    salient_fraction:
        Fraction of a document's present words (by tf-idf) treated salient.
    temperature:
        InfoNCE softmax temperature.
    """

    def __init__(
        self,
        vocab_size: int,
        config: NTMConfig,
        contrastive_weight: float = 1.0,
        salient_fraction: float = 0.25,
        temperature: float = 0.5,
    ):
        super().__init__(vocab_size, config)
        self.contrastive_weight = contrastive_weight
        self.salient_fraction = salient_fraction
        self.temperature = temperature
        self._objective = DocumentContrastiveObjective(
            salient_fraction=salient_fraction, temperature=temperature
        )

    def build_objectives(self):
        from repro.objectives.base import (
            ElboObjective,
            ObjectiveStack,
            ObjectiveTerm,
        )

        return ObjectiveStack(
            ElboObjective(),
            [
                ObjectiveTerm(
                    "clntm", self._objective, weight=self.contrastive_weight
                )
            ],
        )

    # -- legacy inspection surface (delegates to the shared objective) --
    @property
    def _idf(self) -> np.ndarray | None:
        return self._objective.idf

    def on_fit_start(self, corpus: Corpus) -> None:
        super().on_fit_start(corpus)  # stack prepare computes the idf table

    def _augment(self, bow: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Positive view keeps tf-idf-salient words; negative deletes them."""
        return self._objective.views(bow)

    def extra_loss(self, theta: Tensor, beta: Tensor, bow: np.ndarray) -> Tensor:
        return self._objective.infonce(self, theta, bow) * self.contrastive_weight

"""CLNTM — contrastive learning for neural topic models (Nguyen & Luu, 2021).

The paper's representative *document-wise* contrastive baseline, and the
method ContraTopic is contrasted against in §IV.E: CLNTM perturbs each
document's bag-of-words using tf-idf salience — the positive view keeps the
salient words, the negative view deletes them — and applies an InfoNCE loss
over the *document-topic* representations.  Any benefit to the topic-word
matrix is indirect, which is exactly the weakness ContraTopic's topic-wise
loss addresses.
"""

from __future__ import annotations

import numpy as np

from repro.data.corpus import Corpus
from repro.models.base import NTMConfig
from repro.models.prodlda import ProdLDA
from repro.tensor.dtypes import get_default_dtype
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class CLNTM(ProdLDA):
    """ProdLDA + document-wise InfoNCE with tf-idf driven views.

    Parameters
    ----------
    contrastive_weight:
        Weight of the InfoNCE term in the loss.
    salient_fraction:
        Fraction of a document's present words (by tf-idf) treated salient.
    temperature:
        InfoNCE softmax temperature.
    """

    def __init__(
        self,
        vocab_size: int,
        config: NTMConfig,
        contrastive_weight: float = 1.0,
        salient_fraction: float = 0.25,
        temperature: float = 0.5,
    ):
        super().__init__(vocab_size, config)
        self.contrastive_weight = contrastive_weight
        self.salient_fraction = salient_fraction
        self.temperature = temperature
        self._idf: np.ndarray | None = None

    def on_fit_start(self, corpus: Corpus) -> None:
        doc_freq = corpus.word_document_frequency()
        self._idf = np.log((len(corpus) + 1.0) / (doc_freq + 1.0)) + 1.0

    def _augment(self, bow: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Positive view keeps tf-idf-salient words; negative deletes them."""
        if self._idf is None:  # transform-time or unit-test use
            self._idf = np.ones(self.vocab_size)
        tfidf = bow * self._idf[None, :]
        positive = np.zeros_like(bow)
        negative = bow.copy()
        for i in range(bow.shape[0]):
            present = np.flatnonzero(bow[i] > 0)
            if present.size == 0:
                continue
            n_salient = max(1, int(round(present.size * self.salient_fraction)))
            salient = present[np.argsort(-tfidf[i, present])[:n_salient]]
            positive[i, salient] = bow[i, salient]
            negative[i, salient] = 0.0
        return positive, negative

    def extra_loss(self, theta: Tensor, beta: Tensor, bow: np.ndarray) -> Tensor:
        positive_bow, negative_bow = self._augment(
            np.asarray(bow, dtype=get_default_dtype())
        )
        theta_pos, _, _ = self.encode_theta(positive_bow, sample=False)
        theta_neg, _, _ = self.encode_theta(negative_bow, sample=False)

        anchor = _l2_normalize(theta)
        pos = _l2_normalize(theta_pos)
        neg = _l2_normalize(theta_neg)
        sim_pos = (anchor * pos).sum(axis=1) * (1.0 / self.temperature)
        sim_neg = (anchor * neg).sum(axis=1) * (1.0 / self.temperature)
        # InfoNCE with one positive and one negative per anchor:
        # -log( e^{s+} / (e^{s+} + e^{s-}) ) = softplus(s- - s+)
        return F.softplus(sim_neg - sim_pos).mean() * self.contrastive_weight


def _l2_normalize(x: Tensor) -> Tensor:
    norm = ((x * x).sum(axis=1, keepdims=True) + 1e-12).sqrt()
    return x / norm

"""Model registry: build any evaluated model by name with shared resources.

The experiment harness compares ten models (Figure 2 / Table III).  This
registry centralizes their construction so every experiment uses identical
shared hyper-parameters, mirroring the paper's "we keep the shared
hyper-parameters unchanged" protocol.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.metrics.npmi import NpmiMatrix
from repro.models.base import NTMConfig, TopicModel
from repro.models.clntm import CLNTM
from repro.models.ecrtm import ECRTM
from repro.models.etm import ETM
from repro.models.lda import LatentDirichletAllocation, LdaConfig
from repro.models.nstm import NSTM
from repro.models.ntmr import NTMR
from repro.models.prodlda import ProdLDA
from repro.models.vtmrl import VTMRL
from repro.models.wete import WeTe
from repro.models.wlda import WLDA


def available_models() -> tuple[str, ...]:
    """Names accepted by :func:`build_model` (paper Figure-2 lineup)."""
    return (
        "lda",
        "prodlda",
        "wlda",
        "etm",
        "nstm",
        "wete",
        "ntmr",
        "vtmrl",
        "clntm",
        "ecrtm",
        "contratopic",
    )


def build_model(
    name: str,
    vocab_size: int,
    config: NTMConfig,
    word_embeddings: np.ndarray | None = None,
    npmi: NpmiMatrix | None = None,
    contratopic_lambda: float = 40.0,
    contratopic_v: int = 10,
    contratopic_tau: float = 0.5,
    contratopic_kernel_temperature: float = 0.25,
    contratopic_negative_weight: float = 3.0,
    backbone: str = "etm",
) -> TopicModel:
    """Construct one of the paper's evaluated models.

    Parameters
    ----------
    word_embeddings:
        Required by embedding-based models (etm, nstm, wete, ntmr,
        contratopic with an etm/nstm/wete backbone).
    npmi:
        Required by vtmrl and contratopic (the NPMI kernel / reward).
    backbone:
        Backbone for contratopic: ``etm`` (paper default), ``wlda`` or
        ``wete`` (the §V.I substitution study).
    """
    name = name.lower()
    if name == "lda":
        return LatentDirichletAllocation(
            vocab_size,
            LdaConfig(num_topics=config.num_topics, seed=config.seed),
        )
    if name == "prodlda":
        return ProdLDA(vocab_size, config)
    if name == "wlda":
        return WLDA(vocab_size, config)
    if name == "etm":
        return ETM(vocab_size, config, _need_embeddings(name, word_embeddings))
    if name == "nstm":
        return NSTM(vocab_size, config, _need_embeddings(name, word_embeddings))
    if name == "wete":
        return WeTe(vocab_size, config, _need_embeddings(name, word_embeddings))
    if name == "ntmr":
        return NTMR(vocab_size, config, _need_embeddings(name, word_embeddings))
    if name == "vtmrl":
        return VTMRL(vocab_size, config, _need_npmi(name, npmi))
    if name == "clntm":
        return CLNTM(vocab_size, config)
    if name == "ecrtm":
        return ECRTM(vocab_size, config, _need_embeddings(name, word_embeddings))
    if name == "contratopic":
        from repro.core.contratopic import ContraTopic, ContraTopicConfig
        from repro.core.similarity import npmi_kernel

        backbone_model = _build_backbone(
            backbone, vocab_size, config, word_embeddings
        )
        return ContraTopic(
            backbone_model,
            npmi_kernel(
                _need_npmi(name, npmi),
                temperature=contratopic_kernel_temperature,
            ),
            ContraTopicConfig(
                lambda_weight=contratopic_lambda,
                num_sampled_words=contratopic_v,
                gumbel_temperature=contratopic_tau,
                negative_weight=contratopic_negative_weight,
            ),
        )
    raise ConfigError(f"unknown model {name!r}; choose from {available_models()}")


def _build_backbone(
    backbone: str,
    vocab_size: int,
    config: NTMConfig,
    word_embeddings: np.ndarray | None,
):
    backbone = backbone.lower()
    if backbone == "etm":
        return ETM(vocab_size, config, _need_embeddings("etm", word_embeddings))
    if backbone == "wlda":
        return WLDA(vocab_size, config)
    if backbone == "wete":
        return WeTe(vocab_size, config, _need_embeddings("wete", word_embeddings))
    if backbone == "prodlda":
        return ProdLDA(vocab_size, config)
    raise ConfigError(f"unknown contratopic backbone {backbone!r}")


def _need_embeddings(name: str, emb: np.ndarray | None) -> np.ndarray:
    if emb is None:
        raise ConfigError(f"model {name!r} requires word embeddings")
    return emb


def _need_npmi(name: str, npmi: NpmiMatrix | None) -> NpmiMatrix:
    if npmi is None:
        raise ConfigError(f"model {name!r} requires a precomputed NPMI matrix")
    return npmi

"""ProdLDA (Srivastava & Sutton, 2017).

Replaces LDA's mixture-of-multinomials decoder with a *product of experts*:
the unnormalized topic-word weights combine additively in logit space,
``p(w|θ) = softmax(θ B)`` where ``B`` is an unconstrained (K, V) matrix
passed through batch normalisation (the original uses a BN layer over the
decoder logits to stabilise training).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import NeuralTopicModel, NTMConfig
from repro.nn import init
from repro.nn.module import Parameter
from repro.tensor import functional as F
from repro.tensor import fused
from repro.tensor.tensor import Tensor


class ProdLDA(NeuralTopicModel):
    """VAE topic model with a product-of-experts decoder."""

    def __init__(self, vocab_size: int, config: NTMConfig):
        super().__init__(vocab_size, config)
        self.topic_logits = Parameter(
            init.xavier_uniform((config.num_topics, vocab_size), self._rng)
        )

    def beta(self) -> Tensor:
        """Rows of softmax(B): the reported topic-word distributions."""
        return F.softmax(self.topic_logits, axis=1)

    def reconstruction_loss(self, theta: Tensor, beta: Tensor, bow: np.ndarray) -> Tensor:
        # Product of experts: mix in logit space, then normalize.  The
        # log-softmax + weighted NLL pair is one fused node.
        return fused.log_softmax_nll(theta @ self.topic_logits, bow)

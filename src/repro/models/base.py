"""Shared topic-model interface and the common VAE scaffolding (§III.B).

The generative story shared by the paper's VAE-based NTMs:

1. θ ~ LogisticNormal(μ0, σ0²)   (approximating the Dirichlet prior)
2. for each word: z ~ Cat(θ); w ~ Cat(β_z)

with amortized inference q(θ|w): an MLP over the bag-of-words produces
μ(w), log σ(w); θ = softmax(μ + σ ⊙ ε).  Subclasses differ only in how the
topic-word matrix β is parameterized and which extra loss terms they add.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.data.corpus import Corpus
from repro.data.vocabulary import Vocabulary
from repro.errors import ConfigError, CorpusError, NotFittedError, ShapeError
from repro.nn import BatchNorm1d, Linear, MLP, Module
from repro.tensor import functional as F
from repro.tensor import fused
from repro.tensor.dtypes import get_default_dtype, get_sparse_policy
from repro.tensor.sparse import CSRBatch
from repro.tensor.tensor import Tensor, no_grad

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.objectives.base import ObjectiveStack
    from repro.training.callbacks import Callback
    from repro.training.faults import FaultInjector
    from repro.training.resilience import GuardPolicy
    from repro.training.trainer import TrainState


@dataclass
class NTMConfig:
    """Hyper-parameters shared by every neural topic model here.

    Scaled-down defaults relative to the paper (encoder 800→128 hidden
    units, 100→20 topics, batch 1000→256) so CPU training finishes in
    seconds; the paper's values can be passed explicitly.
    """

    num_topics: int = 20
    hidden_sizes: tuple[int, ...] = (128, 128)
    activation: str = "selu"
    dropout: float = 0.2
    learning_rate: float = 2e-3
    batch_size: int = 256
    epochs: int = 30
    embedding_dim: int = 100
    beta_temperature: float = 0.1  # τ_β of ETM-style decoders
    grad_clip: float = 10.0
    kl_weight: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_topics < 2:
            raise ConfigError("num_topics must be >= 2")
        if self.epochs < 1:
            raise ConfigError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if self.beta_temperature <= 0:
            raise ConfigError("beta_temperature must be positive")


class TopicModel(abc.ABC):
    """The uniform interface every topic model implements."""

    @abc.abstractmethod
    def fit(self, corpus: Corpus) -> "TopicModel":
        """Train on a corpus; returns self for chaining."""

    @abc.abstractmethod
    def topic_word_matrix(self) -> np.ndarray:
        """``(K, V)`` matrix with rows on the simplex."""

    @abc.abstractmethod
    def transform(self, corpus: Corpus) -> np.ndarray:
        """``(D, K)`` document-topic proportions for a (held-out) corpus."""

    def top_words(self, vocabulary: Vocabulary, n: int = 10) -> list[list[str]]:
        """Top-``n`` word strings per topic."""
        beta = self.topic_word_matrix()
        order = np.argsort(-beta, axis=1)[:, :n]
        return [[vocabulary.token_of(int(w)) for w in row] for row in order]


class VaeEncoder(Module):
    """q(θ|w): MLP trunk then linear μ / log σ heads with batch-norm.

    Matches the paper's description: three-layer perceptron, SeLU,
    dropout 0.5, batch norm (§V.D) — widths are configurable.
    """

    def __init__(self, vocab_size: int, config: NTMConfig, rng: np.random.Generator):
        super().__init__()
        sizes = [vocab_size, *config.hidden_sizes]
        self.trunk = MLP(
            sizes,
            rng,
            activation=config.activation,
            dropout=config.dropout,
            final_activation=True,
        )
        hidden = sizes[-1]
        self.mu_head = Linear(hidden, config.num_topics, rng)
        self.logvar_head = Linear(hidden, config.num_topics, rng)
        self.mu_bn = BatchNorm1d(config.num_topics, affine=False)
        self.logvar_bn = BatchNorm1d(config.num_topics, affine=False)

    def forward(self, bow: Tensor | CSRBatch) -> tuple[Tensor, Tensor]:
        # Normalizing counts keeps the encoder input scale stable across
        # documents of very different lengths.
        if isinstance(bow, CSRBatch):
            # Sparse fast path: the normalized CSR batch feeds the trunk's
            # first Linear, whose fused.linear dispatches to linear_csr —
            # O(nnz·hidden) instead of O(batch·vocab·hidden).
            pi = self.trunk(bow.row_normalized())
        else:
            total = Tensor(bow.data.sum(axis=1, keepdims=True).clip(min=1.0))
            pi = self.trunk(bow / total)
        mu = self.mu_bn(self.mu_head(pi))
        logvar = self.logvar_bn(self.logvar_head(pi))
        return mu, logvar


class NeuralTopicModel(TopicModel, Module):
    """Common machinery: encoder, reparameterization, ELBO, training loop.

    Subclasses must implement :meth:`beta` (the differentiable topic-word
    matrix) and may override :meth:`extra_loss` (regularizers — this is the
    hook ContraTopic uses), :meth:`reconstruction_loss` (OT-based models
    replace the categorical likelihood), and :meth:`kl_loss` (WLDA swaps
    the KL for MMD).
    """

    #: Class-level defaults so subclasses that bypass ``__init__`` (e.g.
    #: ContraTopic, which reuses its backbone's encoder) still have them.
    #: The objective stack is built lazily on first use (and replaceable
    #: via ``set_objectives`` / ``RunSpec.objectives``).
    _objectives: "ObjectiveStack | None" = None
    _trainer: "TrainState | None" = None

    def __init__(self, vocab_size: int, config: NTMConfig):
        Module.__init__(self)
        self.vocab_size = vocab_size
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.encoder = VaeEncoder(vocab_size, config, self._rng)
        self._fitted = False
        self.history: list[dict[str, float]] = []

    # ------------------------------------------------------------------
    # pieces subclasses provide / may override
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def beta(self) -> Tensor:
        """Differentiable ``(K, V)`` topic-word matrix (rows on simplex)."""

    def reconstruction_loss(
        self, theta: Tensor, beta: Tensor, bow: np.ndarray | CSRBatch
    ) -> Tensor:
        """Default: mean categorical negative log-likelihood (ETM-style).

        ``bow`` may be dense or a :class:`~repro.tensor.sparse.CSRBatch`.
        The sparse form fuses the whole mixture decode: it never builds
        the ``(batch, vocab)`` matrix ``theta @ beta``, evaluating the
        mixture probabilities only at nonzero count positions.
        """
        if isinstance(bow, CSRBatch):
            return fused.nll_from_mixture_csr(theta, beta, bow)
        return fused.nll_from_probs(theta @ beta, bow)

    def kl_loss(self, mu: Tensor, logvar: Tensor, theta: Tensor) -> Tensor:
        """Default: closed-form KL to the standard-normal logistic prior."""
        return F.kl_normal_standard(mu, logvar)

    def extra_loss(
        self, theta: Tensor, beta: Tensor, bow: np.ndarray | CSRBatch
    ) -> Tensor | None:
        """Optional regularizer; ContraTopic plugs its L_con in here."""
        return None

    # ------------------------------------------------------------------
    # the objective stack (composable loss terms)
    # ------------------------------------------------------------------
    def build_objectives(self) -> "ObjectiveStack":
        """The model's default loss composition.

        Base class: the ELBO plus one ``extra`` term adapting the legacy
        :meth:`extra_loss` hook — so subclasses overriding that hook keep
        training identically.  Subclasses with named regularizers (e.g.
        ContraTopic) override this to declare real terms; a
        :class:`~repro.training.trainer.RunSpec` with ``objectives=``
        replaces whatever the model declares.
        """
        # Imported lazily: repro.objectives is a consumer-side layer and
        # importing it at module level would make every model import pull
        # in the similarity/NPMI machinery.
        from repro.objectives.base import (
            ElboObjective,
            ExtraLossAdapter,
            ObjectiveStack,
            ObjectiveTerm,
        )

        return ObjectiveStack(
            ElboObjective(),
            [ObjectiveTerm("extra", ExtraLossAdapter())],
        )

    @property
    def objectives(self) -> "ObjectiveStack":
        """The live stack (built lazily from :meth:`build_objectives`)."""
        if self._objectives is None:
            self._objectives = self.build_objectives()
        return self._objectives

    def set_objectives(self, stack: "ObjectiveStack") -> None:
        """Replace the stack (the ``RunSpec.objectives`` attachment path)."""
        self._objectives = stack

    def objective_flags(self) -> dict[str, bool]:
        """Per-term enable flags — what DDP ships and checkpoints carry."""
        return self.objectives.flags()

    def apply_objective_flags(self, flags: "bool | dict[str, bool]") -> None:
        """Set per-term flags from a dict, or all terms from a legacy bool."""
        self.objectives.apply_flags(flags)

    @property
    def extra_loss_enabled(self) -> bool:
        """Legacy single-switch view of the per-term flags.

        True while *any* regularizer term is still enabled; assigning a
        bool sets every term — exactly the pre-stack semantics, so the
        guard's ELBO-only degradation and old checkpoints keep working.
        """
        return self.objectives.any_enabled()

    @extra_loss_enabled.setter
    def extra_loss_enabled(self, enabled: bool) -> None:
        self.objectives.apply_flags(bool(enabled))

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------
    def encode_theta(
        self, bow: np.ndarray | CSRBatch, sample: bool = True
    ) -> tuple[Tensor, Tensor, Tensor]:
        """Return (θ, μ, logvar) for a batch of counts (dense or CSR)."""
        if isinstance(bow, CSRBatch):
            # O(nnz) cast sharing the structure arrays; stays sparse into
            # the encoder.
            bow_t: Tensor | CSRBatch = bow.astype(get_default_dtype())
        else:
            bow_t = Tensor(np.asarray(bow), dtype=get_default_dtype())
        mu, logvar = self.encoder(bow_t)
        if sample and self.training:
            eps = Tensor(self._rng.standard_normal(mu.shape), dtype=mu.data.dtype)
            z = mu + (logvar * 0.5).exp() * eps
        else:
            z = mu
        theta = F.softmax(z, axis=1)
        return theta, mu, logvar

    def loss_on_batch(
        self, bow: np.ndarray | CSRBatch
    ) -> tuple[Tensor, dict[str, float]]:
        """Total training loss for one bag-of-words batch, plus components.

        ``bow`` arrives in whichever format the
        :class:`~repro.data.loaders.BatchIterator` chose — dense on the
        reference path, :class:`~repro.tensor.sparse.CSRBatch` on the
        sparse fast path.  Loss values agree to ≤1e-6 between the two.

        The composition itself lives in the model's
        :class:`~repro.objectives.base.ObjectiveStack`: base ELBO plus
        every enabled regularizer term (the guard's ELBO-only degradation
        disables terms one by one).  The stack's compute path reproduces
        the historical inline body operation-for-operation, so this
        remains a bitwise-identical facade.
        """
        return self.objectives.compute(self, bow)

    def fit(
        self,
        corpus: Corpus,
        callbacks: Sequence["Callback"] = (),
        guard: "GuardPolicy | None" = None,
        faults: "FaultInjector | None" = None,
        resume_from: str | Path | None = None,
    ) -> "NeuralTopicModel":
        """Train on ``corpus`` — a facade over :class:`repro.training.trainer.Trainer`.

        The epoch/mini-batch loop itself lives in
        :mod:`repro.training.trainer`; this method packages the arguments
        into a :class:`~repro.training.trainer.RunSpec` and delegates, so
        the long-standing ``model.fit(...)`` surface keeps working
        unchanged (and bitwise-identically).

        Parameters
        ----------
        corpus:
            Training corpus (vocabulary must match the model's).
        callbacks:
            :class:`repro.training.callbacks.Callback` instances observing
            the epoch loop; any callback returning True from
            ``on_epoch_end`` stops training early.
        guard:
            Optional :class:`repro.training.resilience.GuardPolicy`
            enabling per-batch loss/gradient finiteness checks with the
            skip → LR-backoff → restore → degrade escalation ladder.
        faults:
            Optional :class:`repro.training.faults.FaultInjector` that
            deterministically corrupts losses/gradients — the test harness
            for the guard's recovery paths.
        resume_from:
            Path of a format-v2 checkpoint (written with trainer state,
            e.g. by :class:`repro.training.resilience.CheckpointCallback`);
            training continues from the epoch after the checkpoint and is
            bitwise-identical to an uninterrupted run.
        """
        # Imported lazily: repro.training.__init__ imports the protocol
        # module, which imports this module — a module-level import here
        # would be circular.
        from repro.training.trainer import RunSpec, Trainer

        Trainer(RunSpec(guard=guard)).fit(
            self,
            corpus,
            callbacks=callbacks,
            faults=faults,
            resume_from=resume_from,
        )
        return self

    def on_fit_start(self, corpus: Corpus) -> None:
        """Hook run before training.

        The default prepares the objective stack — corpus-dependent term
        state (NPMI kernels, tf-idf tables, private RNG streams) is built
        here, which is what keeps :class:`ObjectiveSpec`s plain picklable
        data until fit time.  Subclasses adding their own setup should
        call ``super().on_fit_start(corpus)``.
        """
        self.objectives.prepare(self, corpus)

    # ------------------------------------------------------------------
    # checkpoint / resume support
    # ------------------------------------------------------------------
    def rng_streams(self) -> dict[str, np.random.Generator]:
        """Every RNG stream training consumes (for checkpoint/resume).

        Subclasses with additional streams (e.g. ContraTopic's Gumbel
        noise generator) extend this mapping; bitwise-consistent resume
        requires every stream to be captured.  Objective terms holding a
        private stream (e.g. a spec-attached contrastive or VICReg term)
        surface it here as ``objective_<term>``.
        """
        streams = {"model": self._rng}
        if self._objectives is not None:
            streams.update(self._objectives.rng_streams())
        return streams

    def training_state(self) -> dict:
        """JSON-serializable snapshot of the non-parameter training state.

        Travels as ``trainer_state`` in format-v2 checkpoints
        (:func:`repro.io.save_checkpoint`); a :class:`Trainer` given
        ``resume_from=`` restores it via
        :func:`repro.training.trainer.restore_training_state`.  Delegates
        to :func:`repro.training.trainer.capture_training_state`, which
        reads the :class:`~repro.training.trainer.TrainState` the engine
        attaches as ``self._trainer``.
        """
        from repro.training.trainer import capture_training_state

        return capture_training_state(self)

    # ------------------------------------------------------------------
    # TopicModel interface
    # ------------------------------------------------------------------
    def topic_word_matrix(self) -> np.ndarray:
        self._require_fitted()
        with no_grad():
            return self.beta().data.copy()

    def transform(self, corpus: Corpus) -> np.ndarray:
        self._require_fitted()
        # Request validation: the serving front door (repro.serving) relies
        # on these being precise errors rather than downstream shape
        # explosions deep inside the encoder.
        if len(corpus) == 0:
            raise CorpusError(
                "transform received an empty batch: the corpus contains "
                "no documents"
            )
        if corpus.vocab_size != self.vocab_size:
            raise ShapeError(
                f"transform received documents indexed against a "
                f"vocabulary of size {corpus.vocab_size}, but "
                f"{type(self).__name__} was built for vocabulary size "
                f"{self.vocab_size}; re-index the documents with the "
                "model's own vocabulary"
            )
        # Inference must not leave a side effect on training: a validation
        # callback calling transform() mid-fit would otherwise flip the
        # model into eval mode (disabling dropout / freezing batch-norm
        # statistics) for the rest of the epoch.
        was_training = self.training
        self.eval()
        try:
            policy = get_sparse_policy()
            batch_size = self.config.batch_size
            thetas: list[np.ndarray] = []
            if policy.use_sparse(corpus.bow_density()):
                # Sparse fast path: contiguous eval batches are zero-copy
                # CSR row views; a batch denser than the threshold falls
                # back to dense for that batch only.
                csr = corpus.bow_csr(dtype=get_default_dtype())
                with no_grad():
                    for start in range(0, len(corpus), batch_size):
                        batch = csr.slice_rows(start, start + batch_size)
                        if batch.density >= policy.density_threshold:
                            batch = batch.toarray()
                        theta, _, _ = self.encode_theta(batch, sample=False)
                        thetas.append(theta.data)
            else:
                bow = corpus.bow_matrix(dtype=get_default_dtype())
                with no_grad():
                    for start in range(0, bow.shape[0], batch_size):
                        theta, _, _ = self.encode_theta(
                            bow[start : start + batch_size], sample=False
                        )
                        thetas.append(theta.data)
            return np.concatenate(thetas, axis=0)
        finally:
            self.train(was_training)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")

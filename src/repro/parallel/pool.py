"""Process-parallel execution of independent train/evaluate tasks.

The paper's protocol is dominated by *embarrassingly parallel* outer
loops: five seeds per reported metric (§V.F), a (λ, v) grid per dataset
(§V.D), and a dozen independent experiment sections in the full runner.
:class:`ParallelMap` fans those loops out over a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping three
guarantees the serial loops already had:

* **Determinism** — every task carries its own explicit seed (derived via
  :func:`repro.training.seed.spawn_task_seed` when not already explicit),
  so results are identical regardless of worker count or completion
  order.  ``workers=1`` does not even build a pool: it runs the tasks
  in-process, in submission order — the exact serial path, bit for bit.
* **Fault isolation** — an exception inside a task (including a
  NaN-divergence escalated to :class:`~repro.errors.TrainingDivergedError`
  or an injected fault from :mod:`repro.training.faults`) becomes a
  recorded per-task failure in the returned :class:`TaskResult`, not an
  abort of the whole fan-out.  Only when *every* task failed does
  :meth:`ParallelMap.map` raise (via callers checking
  :func:`require_any_success`).
* **Telemetry** — each task runs under its own
  :class:`~repro.telemetry.MetricsRegistry` (optionally with
  :func:`~repro.telemetry.profile_ops` active) whose snapshot ships back
  with the result; the parent merges the snapshots idempotently, so the
  op/stage tables of ``BENCH_*.json`` stay populated under parallelism.

Worker-count resolution order: explicit argument > ``REPRO_WORKERS``
environment variable > ``os.cpu_count()``.

Implementation note — why ``fork``: the fan-out sites pass closures
(model factories bound to corpora and NPMI matrices) that are not
picklable, and the corpora themselves are large enough that re-shipping
them per task would dominate the win.  Tasks are therefore stashed in a
module-level registry and the pool is created with the ``fork`` start
method, so children inherit the registry (and every already-loaded
corpus page) by copy-on-write; only the integer task index crosses the
pipe.  On platforms without ``fork`` (Windows, macOS under ``spawn``)
the map transparently degrades to the serial path and records the
fallback under the ``parallel/serial_fallback`` counter.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
import traceback
import uuid
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, TypeVar

from repro.errors import ConfigError, ParallelExecutionError
from repro.telemetry.core import MetricsRegistry

T = TypeVar("T")

#: Environment variable overriding the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Scoped timer key every task's wall time is recorded under (in the
#: task's own registry, and therefore — after the merge — in the parent's).
TASK_TIMER_KEY = "parallel/task"

# Fan-outs in flight, keyed by a per-map token.  Populated *before* the
# pool forks so children inherit the (unpicklable) task callables through
# copy-on-write memory; only ``(token, index)`` is ever pickled.
_TASK_GROUPS: dict[str, tuple[Callable[[Any], Any], list, bool]] = {}


def available_cpus() -> int:
    """CPUs this process may actually run on.

    Containerized CI commonly pins the process to a subset of the host's
    cores; ``os.cpu_count()`` reports the host and oversubscribes.  The
    scheduler affinity mask (``os.sched_getaffinity(0)``, Linux) is the
    honest figure; platforms without it fall back to ``cpu_count()``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return os.cpu_count() or 1


def resolve_workers(workers: int | None = None) -> int:
    """Resolve the effective worker count.

    ``workers`` wins when given; otherwise the ``REPRO_WORKERS``
    environment variable; otherwise :func:`available_cpus` (the CPU
    affinity mask where the platform exposes one).  The result is always
    >= 1; zero/negative values are configuration errors.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw is not None and raw.strip():
            try:
                workers = int(raw)
            except ValueError:
                raise ConfigError(
                    f"{WORKERS_ENV}={raw!r} is not an integer"
                ) from None
        else:
            return available_cpus()
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    return int(workers)


def fork_available() -> bool:
    """Whether the ``fork`` start method (required for the pool) exists."""
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass
class TaskResult:
    """Outcome of one task of a parallel map, success or failure.

    ``value`` holds the task's return value when ``ok``; ``error`` holds
    ``"ExcType: message"`` otherwise, with the worker-side traceback text
    in ``traceback`` (fan-out sites used to surface only the exception
    type, which made crashed workers undebuggable from the parent).
    ``telemetry`` is the snapshot of the task-local
    :class:`~repro.telemetry.MetricsRegistry` (present in both cases — a
    failing task's partial timings are still shipped).
    """

    index: int
    value: Any = None
    error: str | None = None
    error_type: str | None = None
    seconds: float = 0.0
    pid: int = 0
    telemetry: dict | None = field(default=None, repr=False)
    traceback: str | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        """The task's value; raises :class:`ParallelExecutionError` if it failed."""
        if not self.ok:
            detail = f"\n{self.traceback}" if self.traceback else ""
            raise ParallelExecutionError(
                f"task {self.index} failed: {self.error}{detail}"
            )
        return self.value


def _execute(
    fn: Callable[[Any], Any], item: Any, index: int, profile: bool
) -> TaskResult:
    """Run one task under fault isolation and a task-local registry.

    This is the *only* execution path — the serial mode and every pool
    worker call it — so failure semantics and telemetry shape cannot
    drift between worker counts.
    """
    from repro.telemetry.ophooks import profile_ops

    registry = MetricsRegistry()
    profiler = profile_ops(registry) if profile else contextlib.nullcontext()
    start = time.perf_counter()
    try:
        with profiler, registry.timer(TASK_TIMER_KEY):
            value = fn(item)
        return TaskResult(
            index=index,
            value=value,
            seconds=time.perf_counter() - start,
            pid=os.getpid(),
            telemetry=registry.snapshot(),
        )
    except Exception as exc:  # noqa: BLE001 - isolation is the contract
        return TaskResult(
            index=index,
            error=f"{type(exc).__name__}: {exc}",
            error_type=type(exc).__name__,
            seconds=time.perf_counter() - start,
            pid=os.getpid(),
            telemetry=registry.snapshot(),
            traceback=traceback.format_exc(),
        )


def _execute_grouped(token: str, index: int) -> TaskResult:
    """Pool-worker entry point: look the task up in the forked registry."""
    fn, items, profile = _TASK_GROUPS[token]
    return _execute(fn, items[index], index, profile)


class ParallelMap:
    """Map a function over independent items across worker processes.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` resolves via :func:`resolve_workers`
        (``REPRO_WORKERS`` env var, then ``os.cpu_count()``).  ``1``
        selects the in-process serial path.
    registry:
        Parent :class:`~repro.telemetry.MetricsRegistry` the per-task
        snapshots are merged into (idempotently), plus fan-out counters
        (``parallel/tasks``, ``parallel/failures``, ...).  Optional.
    profile:
        Run every task under :func:`~repro.telemetry.profile_ops` so the
        merged registry carries per-op rows from the workers.
    """

    def __init__(
        self,
        workers: int | None = None,
        registry: MetricsRegistry | None = None,
        profile: bool = False,
    ):
        self.workers = resolve_workers(workers)
        self.registry = registry
        self.profile = profile

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], T], items: Sequence[Any]) -> list[TaskResult]:
        """Run ``fn`` over ``items``; results come back in item order.

        Never raises for an individual task — inspect each
        :class:`TaskResult`.  Use :func:`require_any_success` when at
        least one success is mandatory.
        """
        items = list(items)
        if not items:
            return []
        serial = self.workers == 1 or len(items) == 1
        if not serial and not fork_available():  # pragma: no cover - platform
            serial = True
            if self.registry is not None:
                self.registry.count("parallel/serial_fallback", absolute=True)
        start = time.perf_counter()
        if serial:
            results = [
                _execute(fn, item, i, self.profile) for i, item in enumerate(items)
            ]
        else:
            results = self._map_processes(fn, items)
        self._record(results, time.perf_counter() - start)
        return results

    # ------------------------------------------------------------------
    def _map_processes(
        self, fn: Callable[[Any], Any], items: list
    ) -> list[TaskResult]:
        token = uuid.uuid4().hex
        _TASK_GROUPS[token] = (fn, items, self.profile)
        context = multiprocessing.get_context("fork")
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(items)), mp_context=context
            ) as pool:
                futures = [
                    pool.submit(_execute_grouped, token, i)
                    for i in range(len(items))
                ]
                results: list[TaskResult] = []
                for i, future in enumerate(futures):
                    try:
                        results.append(future.result())
                    except BrokenProcessPool as exc:
                        # A worker died outside Python (segfault, OOM
                        # kill): everything still pending fails, but as
                        # recorded failures, not an abort of the map.
                        results.append(
                            TaskResult(
                                index=i,
                                error=f"BrokenProcessPool: {exc}",
                                error_type="BrokenProcessPool",
                            )
                        )
        finally:
            _TASK_GROUPS.pop(token, None)
        return results

    # ------------------------------------------------------------------
    def _record(self, results: list[TaskResult], elapsed: float) -> None:
        if self.registry is None:
            return
        self.registry.record_seconds("parallel/map", elapsed, absolute=True)
        self.registry.count("parallel/tasks", len(results), absolute=True)
        failures = sum(not r.ok for r in results)
        if failures:
            self.registry.count("parallel/failures", failures, absolute=True)
        # Last-used worker count (a gauge, not a tally).
        self.registry.counter("parallel/workers", absolute=True).value = float(
            self.workers
        )
        for result in results:
            if result.telemetry is not None:
                self.registry.merge_snapshot(result.telemetry)


def parallel_map(
    fn: Callable[[Any], T],
    items: Sequence[Any],
    workers: int | None = None,
    registry: MetricsRegistry | None = None,
    profile: bool = False,
) -> list[TaskResult]:
    """Functional shorthand for ``ParallelMap(...).map(fn, items)``."""
    return ParallelMap(workers=workers, registry=registry, profile=profile).map(
        fn, items
    )


def require_any_success(results: Sequence[TaskResult], what: str) -> list[TaskResult]:
    """Return the successful results; raise if every task failed."""
    ok = [r for r in results if r.ok]
    if not ok and results:
        details = "; ".join(
            f"task {r.index}: {r.error}" for r in results[:5]
        )
        raise ParallelExecutionError(f"every {what} task failed ({details})")
    return ok

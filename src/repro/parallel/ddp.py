"""Data-parallel training: gradient-averaged batch sharding.

One training step of Algorithm 1 is a pure function of (parameters,
batch): the loss is a mean over documents, so the full-batch gradient
equals the document-count-weighted average of per-shard gradients.  This
module exploits that to parallelize a *single* run — the step the
ROADMAP's north star still needed after PR 4 parallelized whole
experiments and PRs 3/5/6 made the serial hot path fast:

:class:`GradientExchange`
    The strategy object the :class:`~repro.training.trainer.Trainer`
    consults inside its batch-step pipeline.  The base class is the
    **identity** (serial) strategy: ``dispatch`` returns the batch
    untouched and ``reduce`` returns the loss parts untouched, so a run
    with ``workers=1`` is bitwise-identical to the pre-DDP trainer.

:class:`DDPGradientExchange`
    Splits every batch into per-worker shards (``np.array_split`` over
    the batch's document indices; the parent is rank 0 and keeps shard
    0), has forked persistent workers compute ``loss_on_batch`` +
    backward on their shard, and all-reduces the gradients as a
    size-weighted average into the parent's ``p.grad`` before the
    existing faults → clip → guard → step stages run *in the parent* on
    the averaged values — the PR-2 resilience envelope and PR-5
    checkpoint/resume semantics survive unchanged.

Zero-copy data plane (:mod:`repro.parallel.shm`):

* the **corpus BOW** is re-homed into shared memory before the fork
  (:func:`~repro.parallel.shm.share_corpus_bow`), so N workers map one
  physical bag-of-words instead of holding N copies;
* **parameters** broadcast through one flat shared buffer the parent
  rewrites per batch and workers read through views bound once at
  startup (:func:`repro.tensor.flat.bind_params_to` — read-only, since
  only the parent ever steps the optimizer);
* **gradients** return through one persistent flat shared buffer per
  worker — nothing per-batch is pickled except the small shard index
  array and the scalar loss parts.

Determinism: every rank's model RNG streams are reseeded at each epoch
start from ``spawn_task_seed(seed, rank, stream=DDP_RNG_STREAM)`` +
``(epoch, stream)`` spawn keys, so a run is a deterministic function of
(corpus, seed, worker count) and a mid-training resume at the same
worker count is bitwise — worker RNG state never needs checkpointing.
The batch-shuffling RNG stays the parent's checkpointed stream.

Exactness caveats (documented in docs/PARALLELISM.md): batch-dependent
randomness (dropout, reparameterization noise, contrastive sampling) and
BatchNorm *batch* statistics see per-shard batches rather than the full
batch, so a ``workers=N`` run is statistically — not bitwise — equivalent
to serial.  With those disabled (eval-mode ETM), the averaged gradient
matches the serial full-batch gradient to float rounding.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ConfigError, ParallelExecutionError

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.parallel.shm import SharedArray, SharedCorpusBow
    from repro.telemetry.core import MetricsRegistry

# NOTE on imports: this module must stay importable with only numpy and
# repro.errors loaded.  The Trainer imports it at module level (for the
# GradientExchange strategy types), and repro.telemetry's package init
# transitively imports the Trainer — so a top-level import of
# repro.telemetry / repro.tensor / repro.parallel.pool here would make
# ``import repro.parallel`` order-dependent.  Everything heavier is
# imported inside the methods that use it (a sys.modules lookup per
# batch — negligible next to a forward/backward pass).

#: SeedSequence stream index of the per-rank model-RNG reseeds.  Far from
#: stream 0 (the default every :func:`~repro.training.seed.spawn_task_seed`
#: fan-out site uses), so worker-rank seeds are disjoint from per-seed
#: task seeds and from the trainer's ``seed + 1`` batch-shuffling stream.
DDP_RNG_STREAM = 0xDD

#: How often the parent re-checks worker liveness while awaiting a reply.
_POLL_INTERVAL = 0.05

#: Hard ceiling on one shard's compute time before the parent gives up.
_REPLY_TIMEOUT = 300.0


# ----------------------------------------------------------------------
# the strategy interface (identity == serial)
# ----------------------------------------------------------------------
class GradientExchange:
    """How gradients are produced for one batch: serially, by default.

    The Trainer calls, in pipeline order::

        bind(model, corpus, dtype)      # once per fit, before batching
        start_epoch(epoch)              # once per epoch
        shard = dispatch(bow, idx, extra_loss_enabled)   # per batch
        ... parent computes loss+backward on ``shard`` ...
        parts = reduce(model, parts, shard_docs, total_docs)
        abort()                         # instead of reduce, on guard skip
        close()                         # once per fit, always

    The base implementation is the identity strategy: the "shard" is the
    whole batch and ``reduce`` is a no-op, which *is* the serial trainer.
    """

    workers = 1

    def bind(self, model, corpus, dtype) -> None:
        """Attach to a run before the fork/batching begins (no-op)."""

    def start_epoch(self, epoch: int) -> None:
        """Epoch boundary hook (no-op serially)."""

    def dispatch(self, bow, idx, extra_loss_enabled):
        """The parent's shard of ``bow`` (serially: the whole batch).

        ``extra_loss_enabled`` is either the legacy bool or a per-term
        ``{name: enabled}`` map from ``model.objective_flags()``.
        """
        return bow

    def reduce(self, model, parts: dict, shard_docs: int, total_docs: int) -> dict:
        """All-reduce gradients/parts (serially: the identity)."""
        return parts

    def abort(self) -> None:
        """Discard the in-flight dispatch (guard skipped the batch)."""

    def close(self) -> None:
        """Release every resource the exchange holds (no-op serially)."""


class SerialExchange(GradientExchange):
    """The explicit name for the identity strategy (``workers=1``)."""


# ----------------------------------------------------------------------
# deterministic per-(rank, epoch) model reseeding
# ----------------------------------------------------------------------
def reseed_model_streams(model, seed: int, rank: int, epoch: int) -> None:
    """Reseed every model RNG stream deterministically for (rank, epoch).

    The per-rank base seed comes from ``spawn_task_seed(seed, rank,
    stream=DDP_RNG_STREAM)``; each named stream then gets its own
    ``(epoch, stream-index)`` spawn key.  Reseeding at every epoch start
    (parent included) makes a DDP run's randomness a function of the
    epoch number alone, which is what lets a resumed run replay worker
    streams bitwise without ever checkpointing them.
    """
    from repro.training.seed import spawn_task_seed  # lazy: import cycle

    base = spawn_task_seed(seed, rank, stream=DDP_RNG_STREAM)
    streams = model.rng_streams()
    for index, name in enumerate(sorted(streams)):
        fresh = np.random.default_rng(
            np.random.SeedSequence(entropy=base, spawn_key=(int(epoch), index))
        )
        streams[name].bit_generator.state = fresh.bit_generator.state


# ----------------------------------------------------------------------
# the forked worker
# ----------------------------------------------------------------------
@dataclass
class _WorkerContext:
    """Everything a forked worker needs, passed by reference (no pickle)."""

    model: Any
    corpus: Any
    dtype: np.dtype
    sparse: bool
    density_threshold: float
    seed: int
    param_flat: np.ndarray
    grad_flats: list


def _materialize_shard(ctx: _WorkerContext, idx: np.ndarray):
    """Gather one shard from the shared BOW, mirroring
    :meth:`repro.data.loaders.BatchIterator._materialize` (including the
    per-batch density fallback, evaluated on the shard)."""
    if not ctx.sparse:
        return ctx.corpus.bow_matrix(ctx.dtype)[idx]
    shard = ctx.corpus.bow_csr(ctx.dtype).take_rows(idx)
    if shard.density >= ctx.density_threshold:
        return shard.toarray()
    return shard


def _memory_probe() -> dict:
    """Self-reported memory of the calling process (Linux; best effort).

    ``private_dirty`` is the figure the zero-copy test asserts on: pages
    this process actually owns, excluding everything fork-shared or
    mapped from the shm segments.
    """
    info: dict = {"pid": os.getpid()}
    try:
        with open("/proc/self/smaps_rollup") as fh:
            for line in fh:
                for label, key in (
                    ("Rss:", "rss"),
                    ("Private_Dirty:", "private_dirty"),
                    ("Shared_Clean:", "shared_clean"),
                    ("Shared_Dirty:", "shared_dirty"),
                ):
                    if line.startswith(label):
                        info[key] = int(line.split(":", 1)[1].strip().split()[0]) * 1024
    except OSError:  # pragma: no cover - /proc layout dependent
        pass
    return info


def _worker_main(ctx: _WorkerContext, rank: int, conn) -> None:
    """Forked worker loop: materialize shard → loss → backward → shm.

    Parameters are bound once to read-only views of the shared broadcast
    buffer — the parent rewrites it before every dispatch, so the views
    always show the post-step values without any per-batch copy.
    """
    from repro.tensor.flat import bind_params_to, write_grads

    params = list(ctx.model.parameters())
    bind_params_to(params, ctx.param_flat)
    grad_flat = ctx.grad_flats[rank - 1]
    last_epoch: int | None = None
    while True:
        msg = conn.recv()
        tag = msg[0]
        if tag == "stop":
            conn.close()
            return
        if tag == "probe":
            conn.send(("probe_ok", msg[1], rank, _memory_probe()))
            continue
        _, seq, epoch, shard_idx, extra_enabled = msg
        try:
            if epoch != last_epoch:
                reseed_model_streams(ctx.model, ctx.seed, rank, epoch)
                last_epoch = epoch
            # ``extra_enabled`` is a per-term {name: bool} map for models
            # on the objective stack, or the legacy bool; either way the
            # worker mirrors the parent's degradation state exactly.
            apply_flags = getattr(ctx.model, "apply_objective_flags", None)
            if apply_flags is not None:
                apply_flags(extra_enabled)
            else:
                ctx.model.extra_loss_enabled = extra_enabled
            for p in params:
                p.grad = None
            bow = _materialize_shard(ctx, shard_idx)
            loss, parts = ctx.model.loss_on_batch(bow)
            loss.backward()
            write_grads(params, grad_flat)
            conn.send(
                ("ok", seq, int(shard_idx.size), {k: float(v) for k, v in parts.items()})
            )
        except Exception:  # noqa: BLE001 - shipped to the parent verbatim
            conn.send(("err", seq, traceback.format_exc()))


# ----------------------------------------------------------------------
# the data-parallel strategy
# ----------------------------------------------------------------------
class DDPGradientExchange(GradientExchange):
    """Size-weighted gradient all-reduce over forked shard workers.

    Parameters
    ----------
    workers:
        Total ranks, parent included — ``workers=4`` forks 3 children.
    seed:
        The model seed; per-rank RNG derives from it (see
        :func:`reseed_model_streams`).
    metrics:
        Registry the ``ddp/*`` timers and counters are recorded into
        (``ddp/shard``, ``ddp/reduce``, ``ddp/step`` timers;
        ``ddp/bytes_params``, ``ddp/bytes_grads``, ``ddp/batches``,
        ``ddp/bow_bytes_shared`` counters).  A private registry is
        created when omitted; benches merge it into their report.
    """

    def __init__(
        self,
        workers: int,
        seed: int,
        metrics: MetricsRegistry | None = None,
    ):
        from repro.parallel.pool import fork_available
        from repro.telemetry.core import MetricsRegistry

        if workers < 2:
            raise ConfigError(f"DDP needs >= 2 workers, got {workers}")
        if not fork_available():  # pragma: no cover - platform dependent
            raise ConfigError(
                "data-parallel training requires the fork start method"
            )
        self.workers = int(workers)
        self.seed = int(seed)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._model = None
        self._corpus = None
        self._params: list | None = None
        self._param_buf: SharedArray | None = None
        self._grad_bufs: list[SharedArray] = []
        self._acc: np.ndarray | None = None
        self._bow: SharedCorpusBow | None = None
        self._procs: list = []
        self._conns: list = []
        self._seq = 0
        self._epoch = 0
        self._outstanding: list[int] = []
        self._step_start: float | None = None

    # ------------------------------------------------------------------
    def bind(self, model, corpus, dtype) -> None:
        """Share the BOW, allocate the flat buffers, fork the workers.

        Must run before the trainer builds its
        :class:`~repro.data.loaders.BatchIterator`: the iterator caches
        the corpus BOW reference, and it has to cache the shared one.
        """
        from repro.parallel.shm import SharedArray, share_corpus_bow
        from repro.tensor.dtypes import get_sparse_policy
        from repro.tensor.flat import flat_size

        policy = get_sparse_policy()
        sparse = policy.use_sparse(corpus.bow_density())
        self._bow = share_corpus_bow(corpus, dtype, sparse)
        self.metrics.counter("ddp/bow_bytes_shared", absolute=True).value = float(
            self._bow.bytes_shared
        )
        self._model = model
        self._corpus = corpus
        self._params = list(model.parameters())
        size = flat_size(self._params)
        param_dtype = self._params[0].data.dtype if self._params else np.float64
        self._param_buf = SharedArray((size,), param_dtype)
        self._grad_bufs = [
            SharedArray((size,), param_dtype) for _ in range(self.workers - 1)
        ]
        self._acc = np.zeros(size, dtype=param_dtype)
        ctx = _WorkerContext(
            model=model,
            corpus=corpus,
            dtype=np.dtype(dtype),
            sparse=sparse,
            density_threshold=policy.density_threshold,
            seed=self.seed,
            param_flat=self._param_buf.array,
            grad_flats=[buf.array for buf in self._grad_bufs],
        )
        fork = multiprocessing.get_context("fork")
        for rank in range(1, self.workers):
            parent_conn, child_conn = fork.Pipe(duplex=True)
            proc = fork.Process(
                target=_worker_main, args=(ctx, rank, child_conn), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def start_epoch(self, epoch: int) -> None:
        """Reseed rank 0 for the epoch; workers reseed on first dispatch."""
        self._epoch = int(epoch)
        reseed_model_streams(self._model, self.seed, 0, self._epoch)

    # ------------------------------------------------------------------
    def dispatch(self, bow, idx, extra_loss_enabled):
        """Broadcast parameters, ship shard indices, return shard 0.

        ``np.array_split`` places the larger shards first, so shard 0 is
        never empty; a rank whose shard *is* empty (batch smaller than
        the worker count) simply sits this batch out.
        """
        if idx is None:
            raise ConfigError(
                "DDP dispatch needs the batch's document indices; "
                "iterate BatchIterator.batches_with_indices()"
            )
        from repro.tensor.flat import write_params

        self._step_start = time.perf_counter()
        with self.metrics.timer("ddp/shard"):
            write_params(self._params, self._param_buf.array)
            self.metrics.count(
                "ddp/bytes_params", self._param_buf.nbytes, absolute=True
            )
            self.metrics.count("ddp/batches", absolute=True)
            shards = np.array_split(np.asarray(idx), self.workers)
            self._seq += 1
            self._outstanding = []
            for worker_index, conn in enumerate(self._conns):
                shard = shards[worker_index + 1]
                if shard.size == 0:
                    continue
                conn.send(
                    (
                        "step",
                        self._seq,
                        self._epoch,
                        shard,
                        dict(extra_loss_enabled)
                        if isinstance(extra_loss_enabled, dict)
                        else bool(extra_loss_enabled),
                    )
                )
                self._outstanding.append(worker_index)
            n0 = int(shards[0].size)
            if isinstance(bow, np.ndarray):
                return bow[:n0]
            return bow.slice_rows(0, n0)

    def reduce(self, model, parts: dict, shard_docs: int, total_docs: int) -> dict:
        """Size-weighted average of gradients and loss parts, in place.

        After this returns, every parent parameter's ``grad`` views the
        averaged flat accumulator, so the downstream fault injection,
        clipping, guard and optimizer step all act on the batch-level
        average — exactly what the serial step would have seen, up to the
        documented shard-randomness caveats.
        """
        from repro.tensor.flat import load_grads, write_grads

        with self.metrics.timer("ddp/reduce"):
            replies = self._collect()
            acc = self._acc
            write_grads(self._params, acc)
            acc *= float(shard_docs)
            parts_acc = {k: float(v) * shard_docs for k, v in parts.items()}
            docs = int(shard_docs)
            for worker_index, n_docs, worker_parts in replies:
                buf = self._grad_bufs[worker_index].array
                acc += np.multiply(buf, float(n_docs))
                self.metrics.count("ddp/bytes_grads", buf.nbytes, absolute=True)
                for key, value in worker_parts.items():
                    parts_acc[key] = parts_acc.get(key, 0.0) + value * n_docs
                docs += n_docs
            if docs != total_docs:
                raise ParallelExecutionError(
                    f"ddp reduce saw {docs} docs for a {total_docs}-doc batch"
                )
            acc /= float(docs)
            load_grads(self._params, acc)
        if self._step_start is not None:
            self.metrics.record_seconds(
                "ddp/step", time.perf_counter() - self._step_start, absolute=True
            )
            self._step_start = None
        return {k: v / docs for k, v in parts_acc.items()}

    def abort(self) -> None:
        """Drain outstanding replies after a guard-skipped batch.

        The workers already computed their shard (their gradients land in
        the shm buffers and are simply never read), so draining keeps the
        pipes in lockstep for the next dispatch.  A worker *crash* still
        raises — a skipped batch must not mask a dead rank.
        """
        try:
            for worker_index in self._outstanding:
                self._recv(worker_index)
        finally:
            self._outstanding = []
            self._step_start = None

    # ------------------------------------------------------------------
    def _recv(self, worker_index: int):
        conn = self._conns[worker_index]
        deadline = time.monotonic() + _REPLY_TIMEOUT
        while not conn.poll(_POLL_INTERVAL):
            proc = self._procs[worker_index]
            if not proc.is_alive():
                raise ParallelExecutionError(
                    f"ddp worker {worker_index + 1} died "
                    f"(exitcode {proc.exitcode}) before replying"
                )
            if time.monotonic() > deadline:  # pragma: no cover - hang guard
                raise ParallelExecutionError(
                    f"ddp worker {worker_index + 1} reply timed out"
                )
        return conn.recv()

    def _collect(self) -> list[tuple[int, int, dict]]:
        replies = []
        for worker_index in self._outstanding:
            msg = self._recv(worker_index)
            tag, seq = msg[0], msg[1]
            if seq != self._seq:
                raise ParallelExecutionError(
                    f"ddp worker {worker_index + 1} replied to step {seq}, "
                    f"expected {self._seq}"
                )
            if tag == "err":
                raise ParallelExecutionError(
                    f"ddp worker {worker_index + 1} failed:\n{msg[2]}"
                )
            replies.append((worker_index, int(msg[2]), msg[3]))
        self._outstanding = []
        return replies

    # ------------------------------------------------------------------
    def probe_workers(self) -> list[dict]:
        """Per-worker memory self-reports (the zero-copy RSS assertion)."""
        self._seq += 1
        for conn in self._conns:
            conn.send(("probe", self._seq))
        return [self._recv(i)[3] for i in range(len(self._conns))]

    def close(self) -> None:
        """Stop workers, then release pipes and every shm segment.

        The corpus' adopted shm-backed cache arrays are re-privatized
        (copied out) before their segments unmap — ``SharedMemory.close``
        pulls the mapping out from under live views, so handing the
        corpus back with views into a closed segment would turn its next
        ``bow_matrix``/``bow_csr`` hit into a read of unmapped (or
        recycled) memory.
        """
        from repro.parallel.shm import unshare_corpus_bow

        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                pass
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=10.0)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []
        buffers = list(self._grad_bufs)
        if self._param_buf is not None:
            buffers.append(self._param_buf)
        for buf in buffers:
            buf.close()
        self._param_buf = None
        self._grad_bufs = []
        self._acc = None
        if self._bow is not None:
            unshare_corpus_bow(self._corpus, self._bow)
            self._bow = None
        self._corpus = None

"""Process-parallel execution layer: experiment fan-out and data-parallel training.

:mod:`repro.parallel.pool` fans out *independent* tasks (multi-seed,
grid, experiment sections); :mod:`repro.parallel.ddp` parallelizes a
*single* training run by sharding every batch across forked ranks with
shared-memory parameter/gradient/BOW buffers
(:mod:`repro.parallel.shm`).  See ``docs/PARALLELISM.md`` for the API,
seeding guarantees, failure semantics and telemetry-merge behaviour.
"""

from repro.parallel.ddp import (
    DDP_RNG_STREAM,
    DDPGradientExchange,
    GradientExchange,
    SerialExchange,
)
from repro.parallel.pool import (
    TASK_TIMER_KEY,
    WORKERS_ENV,
    ParallelMap,
    TaskResult,
    available_cpus,
    fork_available,
    parallel_map,
    require_any_success,
    resolve_workers,
)
from repro.parallel.shm import (
    SharedArray,
    SharedCorpusBow,
    share_corpus_bow,
    unshare_corpus_bow,
)

__all__ = [
    "DDP_RNG_STREAM",
    "DDPGradientExchange",
    "GradientExchange",
    "SerialExchange",
    "SharedArray",
    "SharedCorpusBow",
    "TASK_TIMER_KEY",
    "WORKERS_ENV",
    "ParallelMap",
    "TaskResult",
    "available_cpus",
    "fork_available",
    "parallel_map",
    "require_any_success",
    "resolve_workers",
    "share_corpus_bow",
    "unshare_corpus_bow",
]

"""Process-parallel execution layer for multi-seed / grid / experiment fan-out.

See :mod:`repro.parallel.pool` for the execution model and
``docs/PARALLELISM.md`` for the API, seeding guarantees, failure
semantics and telemetry-merge behaviour.
"""

from repro.parallel.pool import (
    TASK_TIMER_KEY,
    WORKERS_ENV,
    ParallelMap,
    TaskResult,
    fork_available,
    parallel_map,
    require_any_success,
    resolve_workers,
)

__all__ = [
    "TASK_TIMER_KEY",
    "WORKERS_ENV",
    "ParallelMap",
    "TaskResult",
    "fork_available",
    "parallel_map",
    "require_any_success",
    "resolve_workers",
]

"""Shared-memory arrays for fork-based data-parallel training.

The DDP exchange (:mod:`repro.parallel.ddp`) needs three kinds of arrays
visible to every rank without per-batch pickling:

* the **parameter broadcast buffer** the parent writes before each batch
  and workers read through bound views,
* one **gradient reduction buffer** per worker, written by the worker
  after its backward pass and consumed by the parent's all-reduce,
* the **corpus bag-of-words** (dense cast cache or CSR arrays), so N
  workers map one BOW instead of holding N copies.

All of them are numpy arrays backed by :class:`multiprocessing.shared_memory
.SharedMemory` segments created in the parent *before* the workers fork.
Forked children inherit the mappings, so cross-process writes are visible
both ways and nothing is ever attached by name.

Lifecycle: the creating process owns the segment and must call
:meth:`SharedArray.close` (the exchange does, in ``close()``), which
unmaps the parent's view and unlinks the name; inherited mappings in
workers only unmap on process exit.

.. warning::
   ``SharedMemory.close()`` unmaps even while numpy views of the buffer
   are still alive (CPython does not raise ``BufferError`` for ndarray
   exports of ``shm.buf``) — a stale view then reads unmapped memory, or
   worse, whatever segment got mapped at the same address next.  Any
   array handed out beyond the exchange's lifetime (the corpus' adopted
   BOW cache) must therefore be re-privatized with
   :func:`unshare_corpus_bow` *before* its segment is closed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np


class SharedArray:
    """A numpy array whose buffer lives in a shared-memory segment.

    Only the process that constructed the instance unlinks the segment;
    fork-inherited copies merely unmap when they are garbage collected or
    their process exits.
    """

    def __init__(self, shape, dtype):
        shape = tuple(int(s) for s in np.atleast_1d(np.asarray(shape, dtype=np.int64)))
        itemsize = np.dtype(dtype).itemsize
        nbytes = max(1, int(np.prod(shape)) * itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._owner_pid = os.getpid()
        self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)

    @classmethod
    def from_array(cls, source: np.ndarray) -> "SharedArray":
        """A shared copy of ``source`` (same shape and dtype)."""
        shared = cls(source.shape, source.dtype)
        shared.array[...] = source
        return shared

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def close(self) -> None:
        """Unmap this handle's view; the owner also unlinks the segment.

        Closing UNMAPS the memory in this process even if other numpy
        views of the buffer are still alive (see the module warning) —
        callers must re-home any such view first
        (:func:`unshare_corpus_bow` does, for the corpus cache).
        """
        owner = os.getpid() == self._owner_pid
        self.array = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - outstanding exported views
            pass
        if owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass


@dataclass
class SharedCorpusBow:
    """Handles of a corpus BOW re-homed into shared memory.

    ``segments`` keeps the :class:`SharedArray` owners alive (and
    closeable); ``bytes_shared`` feeds the ``ddp_*`` telemetry.
    """

    sparse: bool
    dtype: np.dtype
    segments: list[SharedArray] = field(default_factory=list)

    @property
    def bytes_shared(self) -> int:
        return sum(seg.nbytes for seg in self.segments)

    def close(self) -> None:
        for seg in self.segments:
            seg.close()
        self.segments.clear()


def share_corpus_bow(corpus, dtype, sparse: bool) -> SharedCorpusBow:
    """Move the corpus' cached BOW (for ``dtype``) into shared memory.

    Builds the cache entry the training path will use — the dense
    per-dtype cast for the dense path, the CSR master/cast for the sparse
    path — copies its backing arrays into shared segments, and re-adopts
    the shared copies into the corpus cache.  Every later
    ``bow_matrix(dtype)`` / ``bow_csr(dtype)`` call (the trainer's
    :class:`~repro.data.loaders.BatchIterator` makes exactly one) then
    returns shared-memory-backed arrays, and workers forked afterwards
    map the same physical pages.
    """
    from repro.tensor.sparse import CSRBatch

    handles = SharedCorpusBow(sparse=bool(sparse), dtype=np.dtype(dtype))
    if sparse:
        csr = corpus.bow_csr(dtype)
        data = SharedArray.from_array(csr.data)
        indices = SharedArray.from_array(csr.indices)
        indptr = SharedArray.from_array(csr.indptr)
        handles.segments += [data, indices, indptr]
        corpus.adopt_bow_csr(
            dtype,
            CSRBatch(data.array, indices.array, indptr.array, csr.shape),
        )
    else:
        bow = corpus.bow_matrix(dtype)
        dense = SharedArray.from_array(bow)
        handles.segments.append(dense)
        corpus.adopt_bow_matrix(dtype, dense.array)
    return handles


def unshare_corpus_bow(corpus, handles: SharedCorpusBow) -> None:
    """Re-privatize the corpus cache, then release the shared segments.

    The corpus cache entries installed by :func:`share_corpus_bow` are
    views into the shared segments; closing those segments unmaps them
    in place (see the module warning), so any cache entry that still
    aliases a segment is first replaced with a private copy.  After this
    returns, ``bow_matrix``/``bow_csr`` keep serving warm caches and the
    segments are gone.
    """
    from repro.tensor.sparse import CSRBatch

    shared = {id(seg.array) for seg in handles.segments if seg.array is not None}
    if handles.sparse:
        csr = corpus.bow_csr(handles.dtype)
        if {id(csr.data), id(csr.indices), id(csr.indptr)} & shared:
            corpus.adopt_bow_csr(
                handles.dtype,
                CSRBatch(
                    csr.data.copy(), csr.indices.copy(), csr.indptr.copy(), csr.shape
                ),
            )
    else:
        bow = corpus.bow_matrix(handles.dtype)
        if id(bow) in shared:
            corpus.adopt_bow_matrix(handles.dtype, bow.copy())
    handles.close()

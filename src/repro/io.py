"""Persistence: save/load model parameters, vocabularies and corpora.

Checkpoints are plain ``.npz`` archives (parameters under their dotted
names plus a small metadata header), so they need nothing beyond numpy and
can be inspected with ``np.load``.  Vocabularies and corpora serialize to
``.npz`` as well, keeping a trained pipeline fully restorable offline.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.corpus import Corpus
from repro.data.vocabulary import Vocabulary
from repro.errors import ReproError
from repro.nn.module import Module

_META_KEY = "__repro_meta__"
_FORMAT_VERSION = 1


class CheckpointError(ReproError, ValueError):
    """A checkpoint file was malformed or incompatible."""


def save_checkpoint(model: Module, path: str | Path, extra: dict | None = None) -> None:
    """Write a module's parameters (and optional metadata) to ``path``.

    ``extra`` must be JSON-serializable; it travels in the archive header
    (useful for hyper-parameters or training provenance).
    """
    path = Path(path)
    state = model.state_dict()
    meta = {
        "format_version": _FORMAT_VERSION,
        "model_class": type(model).__name__,
        "extra": extra or {},
    }
    arrays = dict(state)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_checkpoint(model: Module, path: str | Path) -> dict:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Returns the ``extra`` metadata dictionary.  Raises
    :class:`CheckpointError` on format or class mismatches (class mismatch
    is a warning-level condition: it raises only when parameter names
    don't line up, since e.g. a ContraTopic checkpoint legitimately loads
    into another ContraTopic with a different kernel).
    """
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise CheckpointError(f"{path} is not a repro checkpoint")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {meta.get('format_version')}"
            )
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(f"checkpoint does not fit the model: {exc}") from exc
    return meta.get("extra", {})


def save_corpus(corpus: Corpus, path: str | Path) -> None:
    """Serialize a corpus (documents, labels, vocabulary) to ``.npz``."""
    path = Path(path)
    lengths = np.array([doc.size for doc in corpus.documents])
    flat = np.concatenate(corpus.documents)
    arrays: dict[str, np.ndarray] = {
        "lengths": lengths,
        "tokens": flat,
        "vocabulary": np.array(corpus.vocabulary.tokens(), dtype=np.str_),
    }
    if corpus.labels is not None:
        arrays["labels"] = corpus.labels
    if corpus.label_names is not None:
        arrays["label_names"] = np.array(corpus.label_names, dtype=np.str_)
    np.savez_compressed(path, **arrays)


def load_corpus(path: str | Path) -> Corpus:
    """Restore a corpus saved by :func:`save_corpus`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        lengths = archive["lengths"]
        flat = archive["tokens"]
        vocab = Vocabulary(str(t) for t in archive["vocabulary"]).freeze()
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        documents = [
            flat[offsets[i] : offsets[i + 1]] for i in range(lengths.size)
        ]
        labels = archive["labels"] if "labels" in archive.files else None
        label_names = (
            [str(n) for n in archive["label_names"]]
            if "label_names" in archive.files
            else None
        )
    return Corpus(documents, vocab, labels=labels, label_names=label_names)

"""Persistence: save/load model parameters, vocabularies and corpora.

Checkpoints are plain ``.npz`` archives (parameters under their dotted
names plus a small metadata header), so they need nothing beyond numpy and
can be inspected with ``np.load``.  Vocabularies and corpora serialize to
``.npz`` as well, keeping a trained pipeline fully restorable offline.

Format v2 checkpoints additionally carry optimizer state (``optim::``
prefixed arrays) and a JSON ``trainer_state`` blob (epoch counter, RNG
stream states, training history) so an interrupted run can resume
bitwise-consistently — see :mod:`repro.training.resilience` and
``docs/ROBUSTNESS.md``.

Every file this module writes goes through :func:`atomic_write`
(tmp + fsync + rename), so a crash mid-write can never leave a truncated
file at the final path.  Checkpoints additionally carry a content
checksum (:func:`content_checksum`) over every stored array, verified at
load time: a corrupt file fails with a clear :class:`CheckpointError`
instead of loading garbage parameters — the property the serving layer's
last-good rollback (:class:`repro.serving.ModelRegistry`) depends on.
"""

from __future__ import annotations

import contextlib
import json
import os
import zipfile
import zlib
from pathlib import Path
from typing import IO, Callable, Iterator, TYPE_CHECKING

import numpy as np

from repro.data.corpus import Corpus
from repro.data.vocabulary import Vocabulary
from repro.errors import ReproError
from repro.nn.module import Module

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.nn.optim import Optimizer

_META_KEY = "__repro_meta__"
_OPTIM_PREFIX = "optim::"
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

#: Hooks called (with the write's category string) just before an atomic
#: commit renames the tmp file over the final path.  This is the seam the
#: fault-injection harness (:mod:`repro.training.faults`) uses to simulate
#: a crash between "bytes written" and "file published".
_COMMIT_HOOKS: list[Callable[[str], None]] = []


class CheckpointError(ReproError, ValueError):
    """A checkpoint file was malformed or incompatible."""


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------
def commit_file(tmp: str | Path, path: str | Path, category: str = "file") -> None:
    """Atomically publish ``tmp`` at ``path`` (rename on the same volume).

    Runs the registered commit hooks first, so fault injection can
    simulate a crash after the data was written but before it became
    visible — the invariant under test is that ``path`` is never left
    truncated.
    """
    for hook in _COMMIT_HOOKS:
        hook(category)
    os.replace(tmp, path)


@contextlib.contextmanager
def atomic_write(
    path: str | Path, mode: str = "w", category: str = "file"
) -> Iterator[IO]:
    """Open a tmp file next to ``path``; fsync + rename it over on success.

    On any exception (including an injected commit fault) the tmp file is
    removed and ``path`` keeps its previous content — readers never see a
    partial write.  ``category`` labels the write for commit hooks
    ("checkpoint", "report", "telemetry", ...).
    """
    if any(flag in mode for flag in ("r", "a", "+")):
        raise ValueError(f"atomic_write requires a write-only mode, got {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp")
    fp = tmp.open(mode, encoding=None if "b" in mode else "utf-8")
    try:
        yield fp
        fp.flush()
        os.fsync(fp.fileno())
        fp.close()
        commit_file(tmp, path, category=category)
    except BaseException:
        if not fp.closed:
            fp.close()
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
def content_checksum(arrays: dict[str, np.ndarray]) -> str:
    """Deterministic CRC32 over every array's name, dtype, shape and bytes.

    Stored in the checkpoint header at save time and re-verified at load
    time, so corruption that survives the zip layer (bit flips introduced
    after decompression, a partially-rewritten archive, the chaos
    harness's :meth:`~repro.training.faults.FaultInjector.corrupt_checkpoint`)
    fails with a clear :class:`CheckpointError` instead of loading garbage
    parameters.  Keys are folded in sorted order, so the value is
    independent of dict insertion order.
    """
    crc = 0
    for key in sorted(arrays):
        arr = np.ascontiguousarray(np.asarray(arrays[key]))
        for piece in (key, str(arr.dtype), str(arr.shape)):
            crc = zlib.crc32(piece.encode("utf-8"), crc)
        crc = zlib.crc32(arr.tobytes(), crc)
    return f"{crc & 0xFFFFFFFF:08x}"


def save_checkpoint(
    model: Module,
    path: str | Path,
    extra: dict | None = None,
    *,
    optimizer: "Optimizer | None" = None,
    trainer_state: dict | None = None,
) -> None:
    """Write a module's parameters (and optional training state) to ``path``.

    ``extra`` must be JSON-serializable; it travels in the archive header
    (useful for hyper-parameters or training provenance).  Passing
    ``optimizer`` embeds its :meth:`~repro.nn.optim.Optimizer.state_dict`;
    ``trainer_state`` (a JSON dict, usually from
    :func:`repro.training.trainer.capture_training_state` /
    ``model.training_state()``) is what makes resuming — a
    :class:`~repro.training.trainer.Trainer` with ``resume_from=`` set,
    or the ``fit(resume_from=...)`` facade — bitwise-consistent.  The
    archive is written atomically (tmp + fsync + rename).
    """
    path = Path(path)
    arrays = dict(model.state_dict())
    if optimizer is not None:
        for key, value in optimizer.state_dict().items():
            arrays[f"{_OPTIM_PREFIX}{key}"] = value
    meta = {
        "format_version": _FORMAT_VERSION,
        "model_class": type(model).__name__,
        "extra": extra or {},
        "optimizer_class": type(optimizer).__name__ if optimizer is not None else None,
        "trainer_state": trainer_state,
        # Verified on load; computed before the meta blob joins the archive
        # (the checksum obviously cannot cover itself).
        "content_checksum": content_checksum(arrays),
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    with atomic_write(path, "wb", category="checkpoint") as fp:
        np.savez_compressed(fp, **arrays)


def _read_checkpoint(path: Path) -> tuple[dict, dict, dict]:
    """Read (meta, model_state, optimizer_state); harden against garbage."""
    try:
        with np.load(path, allow_pickle=False) as archive:
            if _META_KEY not in archive:
                raise CheckpointError(f"{path} is not a repro checkpoint")
            meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
            if meta.get("format_version") not in _SUPPORTED_VERSIONS:
                raise CheckpointError(
                    f"{path}: unsupported checkpoint version "
                    f"{meta.get('format_version')!r} "
                    f"(supported: {_SUPPORTED_VERSIONS})"
                )
            raw: dict[str, np.ndarray] = {
                key: archive[key] for key in archive.files if key != _META_KEY
            }
            expected = meta.get("content_checksum")
            if expected is not None:
                actual = content_checksum(raw)
                if actual != expected:
                    raise CheckpointError(
                        f"{path}: content checksum mismatch (stored "
                        f"{expected}, recomputed {actual}) — the file is "
                        "truncated or corrupt; restore it from a last-good "
                        "checkpoint"
                    )
            state, optim_state = {}, {}
            for key, value in raw.items():
                if key.startswith(_OPTIM_PREFIX):
                    optim_state[key[len(_OPTIM_PREFIX):]] = value
                else:
                    state[key] = value
    except CheckpointError:
        raise
    except (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile) as exc:
        # Truncated archives surface as BadZipFile/EOFError, garbage bytes
        # as ValueError, unreadable paths as OSError — all mean the same
        # thing to a caller: this is not a usable checkpoint.
        raise CheckpointError(
            f"{path} is not a readable checkpoint (truncated or corrupt?): {exc}"
        ) from exc
    return meta, state, optim_state


def restore_checkpoint(
    model: Module,
    path: str | Path,
    *,
    optimizer: "Optimizer | None" = None,
) -> dict:
    """Load a checkpoint into ``model`` (and optionally ``optimizer``).

    Returns the full metadata dictionary (``extra``, ``trainer_state``,
    ``format_version``, ...).  Raises :class:`CheckpointError` on
    truncated/garbage files, version mismatches, or state dicts that do
    not fit the model (class mismatch is a warning-level condition: it
    raises only when parameter names don't line up, since e.g. a
    ContraTopic checkpoint legitimately loads into another ContraTopic
    with a different kernel).
    """
    path = Path(path)
    meta, state, optim_state = _read_checkpoint(path)
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(f"checkpoint does not fit the model: {exc}") from exc
    if optimizer is not None:
        if not optim_state:
            raise CheckpointError(
                f"{path} carries no optimizer state "
                "(saved without optimizer=...?)"
            )
        try:
            optimizer.load_state_dict(optim_state)
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint optimizer state does not fit: {exc}"
            ) from exc
    return meta


def load_checkpoint(model: Module, path: str | Path) -> dict:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Returns the ``extra`` metadata dictionary; use
    :func:`restore_checkpoint` when optimizer/trainer state is needed.
    """
    return restore_checkpoint(model, path).get("extra", {})


def save_corpus(corpus: Corpus, path: str | Path) -> None:
    """Serialize a corpus (documents, labels, vocabulary) to ``.npz``."""
    path = Path(path)
    lengths = np.array([doc.size for doc in corpus.documents])
    flat = np.concatenate(corpus.documents)
    arrays: dict[str, np.ndarray] = {
        "lengths": lengths,
        "tokens": flat,
        "vocabulary": np.array(corpus.vocabulary.tokens(), dtype=np.str_),
    }
    if corpus.labels is not None:
        arrays["labels"] = corpus.labels
    if corpus.label_names is not None:
        arrays["label_names"] = np.array(corpus.label_names, dtype=np.str_)
    with atomic_write(path, "wb", category="corpus") as fp:
        np.savez_compressed(fp, **arrays)


def load_corpus(path: str | Path) -> Corpus:
    """Restore a corpus saved by :func:`save_corpus`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        lengths = archive["lengths"]
        flat = archive["tokens"]
        vocab = Vocabulary(str(t) for t in archive["vocabulary"]).freeze()
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        documents = [
            flat[offsets[i] : offsets[i + 1]] for i in range(lengths.size)
        ]
        labels = archive["labels"] if "labels" in archive.files else None
        label_names = (
            [str(n) for n in archive["label_names"]]
            if "label_names" in archive.files
            else None
        )
    return Corpus(documents, vocab, labels=labels, label_names=label_names)

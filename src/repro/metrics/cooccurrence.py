"""Document-level word co-occurrence counting.

Topic-coherence NPMI is conventionally estimated from boolean document
co-occurrence: ``p(w) = df(w) / D`` and ``p(w_i, w_j) = df(w_i, w_j) / D``
where ``df`` counts documents containing the word (pair).  The joint-count
matrix is computed with one sparse matrix product.

Caching: counting is O(nnz·V) and several callers re-count the *same*
corpus — every grid point recomputes the validation NPMI, every
evaluation recomputes the test NPMI.  :meth:`DocumentCooccurrence
.from_corpus` therefore memoises per process, keyed by
:func:`corpus_fingerprint` (a content hash, so two corpora with equal
documents share an entry no matter how they were constructed).  The
cache is bounded (LRU) because each entry holds a dense V×V matrix.
Cached instances are shared — treat them as read-only.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np
from scipy import sparse

from repro.data.corpus import Corpus
from repro.errors import CorpusError, ShapeError

#: Dense V×V joint matrices are large; keep only this many corpora.
CACHE_CAPACITY = 8

_COUNT_CACHE: "OrderedDict[str, DocumentCooccurrence]" = OrderedDict()
_CACHE_STATS = {"hits": 0, "misses": 0}


def corpus_fingerprint(corpus: Corpus) -> str:
    """Content hash of a corpus's documents (order-sensitive).

    Two corpora with identical document sequences over the same-sized
    vocabulary fingerprint identically regardless of how they were built
    (loader, subset, split, or streaming :meth:`~repro.data.corpus.Corpus
    .extend`).  Labels are excluded — co-occurrence never reads them.

    The value is memoised on the corpus and chained incrementally: a
    warm lookup hashes nothing, and a corpus grown by ``extend`` chains
    (parent digest, delta digest) instead of re-hashing every document.
    """
    return corpus.content_fingerprint()


def cooccurrence_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the per-process count cache."""
    return {**_CACHE_STATS, "size": len(_COUNT_CACHE)}


def clear_cooccurrence_cache() -> None:
    """Drop every cached count (and reset the hit/miss counters)."""
    _COUNT_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


class DocumentCooccurrence:
    """Document-frequency marginals and pairwise joint counts for a corpus.

    Attributes
    ----------
    num_documents:
        Number of documents counted.
    doc_freq:
        ``(vocab,)`` — documents containing each word.
    joint:
        ``(vocab, vocab)`` dense symmetric matrix of documents containing
        both words; the diagonal equals ``doc_freq``.
    """

    def __init__(self, num_documents: int, doc_freq: np.ndarray, joint: np.ndarray):
        if joint.shape != (doc_freq.size, doc_freq.size):
            raise ShapeError(
                f"joint shape {joint.shape} inconsistent with vocab {doc_freq.size}"
            )
        self.num_documents = num_documents
        self.doc_freq = doc_freq
        self.joint = joint
        #: Cached instances are shared read-only; :meth:`update` refuses
        #: to mutate them (set when an instance enters the LRU cache).
        self._frozen = False
        #: Streaming counters: delta updates applied and their total
        #: sparse-accumulated nonzeros.
        self.update_stats: dict[str, int] = {
            "updates": 0,
            "delta_nnz": 0,
            "documents_added": 0,
        }

    @classmethod
    def from_corpus(cls, corpus: Corpus, cache: bool = True) -> "DocumentCooccurrence":
        """Count document co-occurrence with a single sparse product.

        With ``cache=True`` (the default) the result is memoised per
        process under the corpus's content fingerprint; the returned
        instance may be shared with other callers, so treat it as
        read-only.  Pass ``cache=False`` to force a fresh count (and
        leave the cache untouched).
        """
        if not cache:
            return cls._count(corpus)
        key = corpus_fingerprint(corpus)
        hit = _COUNT_CACHE.get(key)
        if hit is not None:
            _COUNT_CACHE.move_to_end(key)
            _CACHE_STATS["hits"] += 1
            return hit
        _CACHE_STATS["misses"] += 1
        counted = cls._count(corpus)
        counted._frozen = True
        _COUNT_CACHE[key] = counted
        while len(_COUNT_CACHE) > CACHE_CAPACITY:
            _COUNT_CACHE.popitem(last=False)
        return counted

    @classmethod
    def _count(cls, corpus: Corpus) -> "DocumentCooccurrence":
        incidence = corpus.binary_doc_word()  # (docs, vocab), 0/1
        joint = (incidence.T @ incidence).toarray()
        doc_freq = np.diag(joint).copy()
        return cls(len(corpus), doc_freq, joint)

    @classmethod
    def from_bow(cls, bow: np.ndarray | sparse.spmatrix) -> "DocumentCooccurrence":
        """Count from a (docs, vocab) count matrix directly."""
        if sparse.issparse(bow):
            incidence = bow.tocsr().copy()
            incidence.data = np.ones_like(incidence.data)
        else:
            incidence = sparse.csr_matrix((np.asarray(bow) > 0).astype(np.float64))
        joint = (incidence.T @ incidence).toarray()
        doc_freq = np.diag(joint).copy()
        return cls(incidence.shape[0], doc_freq, joint)

    @classmethod
    def empty(cls, vocab_size: int) -> "DocumentCooccurrence":
        """Zero counts over ``vocab_size`` words — the streaming seed.

        An empty instance is mutable by construction: feed it slices
        through :meth:`update` and the counts stay bitwise-equal to a
        full recount of everything fed so far.
        """
        if vocab_size < 1:
            raise ShapeError(f"vocab_size must be >= 1, got {vocab_size}")
        return cls(
            0,
            np.zeros(vocab_size, dtype=np.float64),
            np.zeros((vocab_size, vocab_size), dtype=np.float64),
        )

    def update(
        self,
        new_docs: "Corpus | Sequence[Sequence[int]] | np.ndarray | sparse.spmatrix",
    ) -> int:
        """Fold new documents' counts in, exactly; returns the delta nnz.

        The delta is the new documents' binary-slice product — an
        O(nnz_new·V) sparse accumulation scattered into the existing
        dense ``joint`` (never a full O(nnz_total·V) recount).  Because
        every count is an integer (exact in float64), the incremental
        totals are **bitwise identical** to a from-scratch recount of
        all documents seen so far.

        ``new_docs`` may be a :class:`~repro.data.corpus.Corpus`, a
        sequence of token-id documents (the empty sequence is a no-op
        slice), or a ``(docs, vocab)`` count matrix.  Cached instances
        returned by :meth:`from_corpus` are shared read-only and refuse
        to update.
        """
        if self._frozen:
            raise CorpusError(
                "refusing to update a cached DocumentCooccurrence (shared "
                "read-only); count with cache=False or start from empty()"
            )
        incidence = self._as_incidence(new_docs)
        self.update_stats["updates"] += 1
        added = incidence.shape[0]
        if added == 0:
            return 0
        delta = (incidence.T @ incidence).tocoo()
        delta.sum_duplicates()
        # Canonical COO has unique coordinates, so fancy-indexed += is an
        # exact scatter-add of integer-valued float64 counts.
        self.joint[delta.row, delta.col] += delta.data
        self.doc_freq += np.asarray(incidence.sum(axis=0)).ravel()
        self.num_documents += added
        self.update_stats["delta_nnz"] += int(delta.nnz)
        self.update_stats["documents_added"] += added
        return int(delta.nnz)

    def _as_incidence(self, new_docs) -> sparse.csr_matrix:
        """Normalize any accepted slice form to 0/1 CSR over this vocab."""
        vocab = self.vocab_size
        if isinstance(new_docs, Corpus):
            if new_docs.vocab_size != vocab:
                raise ShapeError(
                    f"slice vocab {new_docs.vocab_size} != counts vocab {vocab}"
                )
            return new_docs.binary_doc_word()
        if sparse.issparse(new_docs) or isinstance(new_docs, np.ndarray):
            bow = new_docs
            if bow.shape[1] != vocab:
                raise ShapeError(
                    f"slice bow vocab {bow.shape[1]} != counts vocab {vocab}"
                )
            if sparse.issparse(bow):
                incidence = bow.tocsr().copy()
                incidence.data = np.ones_like(incidence.data)
                return incidence
            return sparse.csr_matrix((np.asarray(bow) > 0).astype(np.float64))
        # A (possibly empty) sequence of token-id documents.
        docs = [np.asarray(doc, dtype=np.int64) for doc in new_docs]
        indptr = [0]
        indices: list[int] = []
        for i, doc in enumerate(docs):
            if doc.size == 0:
                raise CorpusError(f"slice document {i} is empty")
            if doc.min() < 0 or doc.max() >= vocab:
                raise CorpusError(
                    f"slice document {i} has token ids outside [0, {vocab})"
                )
            ids = np.unique(doc)
            indices.extend(ids.tolist())
            indptr.append(len(indices))
        return sparse.csr_matrix(
            (
                np.ones(len(indices), dtype=np.float64),
                np.array(indices, dtype=np.int64),
                np.array(indptr, dtype=np.int64),
            ),
            shape=(len(docs), vocab),
        )

    @property
    def vocab_size(self) -> int:
        return self.doc_freq.size

    def marginal_probability(self) -> np.ndarray:
        """``p(w)`` estimated as document frequency over document count."""
        return self.doc_freq / self.num_documents

    def joint_probability(self) -> np.ndarray:
        """``p(w_i, w_j)`` estimated from joint document frequency."""
        return self.joint / self.num_documents

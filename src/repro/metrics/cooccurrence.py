"""Document-level word co-occurrence counting.

Topic-coherence NPMI is conventionally estimated from boolean document
co-occurrence: ``p(w) = df(w) / D`` and ``p(w_i, w_j) = df(w_i, w_j) / D``
where ``df`` counts documents containing the word (pair).  The joint-count
matrix is computed with one sparse matrix product.

Caching: counting is O(nnz·V) and several callers re-count the *same*
corpus — every grid point recomputes the validation NPMI, every
evaluation recomputes the test NPMI.  :meth:`DocumentCooccurrence
.from_corpus` therefore memoises per process, keyed by
:func:`corpus_fingerprint` (a content hash, so two corpora with equal
documents share an entry no matter how they were constructed).  The
cache is bounded (LRU) because each entry holds a dense V×V matrix.
Cached instances are shared — treat them as read-only.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np
from scipy import sparse

from repro.data.corpus import Corpus
from repro.errors import ShapeError

#: Dense V×V joint matrices are large; keep only this many corpora.
CACHE_CAPACITY = 8

_COUNT_CACHE: "OrderedDict[str, DocumentCooccurrence]" = OrderedDict()
_CACHE_STATS = {"hits": 0, "misses": 0}


def corpus_fingerprint(corpus: Corpus) -> str:
    """Content hash of a corpus's documents (order-sensitive).

    Two corpora with identical document sequences over the same-sized
    vocabulary fingerprint identically regardless of how they were built
    (loader, subset, split).  Labels are excluded — co-occurrence never
    reads them.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"{len(corpus)}:{corpus.vocab_size}".encode())
    for doc in corpus.documents:
        digest.update(doc.size.to_bytes(8, "little"))
        digest.update(np.ascontiguousarray(doc).tobytes())
    return digest.hexdigest()


def cooccurrence_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the per-process count cache."""
    return {**_CACHE_STATS, "size": len(_COUNT_CACHE)}


def clear_cooccurrence_cache() -> None:
    """Drop every cached count (and reset the hit/miss counters)."""
    _COUNT_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


class DocumentCooccurrence:
    """Document-frequency marginals and pairwise joint counts for a corpus.

    Attributes
    ----------
    num_documents:
        Number of documents counted.
    doc_freq:
        ``(vocab,)`` — documents containing each word.
    joint:
        ``(vocab, vocab)`` dense symmetric matrix of documents containing
        both words; the diagonal equals ``doc_freq``.
    """

    def __init__(self, num_documents: int, doc_freq: np.ndarray, joint: np.ndarray):
        if joint.shape != (doc_freq.size, doc_freq.size):
            raise ShapeError(
                f"joint shape {joint.shape} inconsistent with vocab {doc_freq.size}"
            )
        self.num_documents = num_documents
        self.doc_freq = doc_freq
        self.joint = joint

    @classmethod
    def from_corpus(cls, corpus: Corpus, cache: bool = True) -> "DocumentCooccurrence":
        """Count document co-occurrence with a single sparse product.

        With ``cache=True`` (the default) the result is memoised per
        process under the corpus's content fingerprint; the returned
        instance may be shared with other callers, so treat it as
        read-only.  Pass ``cache=False`` to force a fresh count (and
        leave the cache untouched).
        """
        if not cache:
            return cls._count(corpus)
        key = corpus_fingerprint(corpus)
        hit = _COUNT_CACHE.get(key)
        if hit is not None:
            _COUNT_CACHE.move_to_end(key)
            _CACHE_STATS["hits"] += 1
            return hit
        _CACHE_STATS["misses"] += 1
        counted = cls._count(corpus)
        _COUNT_CACHE[key] = counted
        while len(_COUNT_CACHE) > CACHE_CAPACITY:
            _COUNT_CACHE.popitem(last=False)
        return counted

    @classmethod
    def _count(cls, corpus: Corpus) -> "DocumentCooccurrence":
        incidence = corpus.binary_doc_word()  # (docs, vocab), 0/1
        joint = (incidence.T @ incidence).toarray()
        doc_freq = np.diag(joint).copy()
        return cls(len(corpus), doc_freq, joint)

    @classmethod
    def from_bow(cls, bow: np.ndarray | sparse.spmatrix) -> "DocumentCooccurrence":
        """Count from a (docs, vocab) count matrix directly."""
        if sparse.issparse(bow):
            incidence = bow.tocsr().copy()
            incidence.data = np.ones_like(incidence.data)
        else:
            incidence = sparse.csr_matrix((np.asarray(bow) > 0).astype(np.float64))
        joint = (incidence.T @ incidence).toarray()
        doc_freq = np.diag(joint).copy()
        return cls(incidence.shape[0], doc_freq, joint)

    @property
    def vocab_size(self) -> int:
        return self.doc_freq.size

    def marginal_probability(self) -> np.ndarray:
        """``p(w)`` estimated as document frequency over document count."""
        return self.doc_freq / self.num_documents

    def joint_probability(self) -> np.ndarray:
        """``p(w_i, w_j)`` estimated from joint document frequency."""
        return self.joint / self.num_documents

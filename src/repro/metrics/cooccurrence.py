"""Document-level word co-occurrence counting.

Topic-coherence NPMI is conventionally estimated from boolean document
co-occurrence: ``p(w) = df(w) / D`` and ``p(w_i, w_j) = df(w_i, w_j) / D``
where ``df`` counts documents containing the word (pair).  The joint-count
matrix is computed with one sparse matrix product.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.data.corpus import Corpus
from repro.errors import ShapeError


class DocumentCooccurrence:
    """Document-frequency marginals and pairwise joint counts for a corpus.

    Attributes
    ----------
    num_documents:
        Number of documents counted.
    doc_freq:
        ``(vocab,)`` — documents containing each word.
    joint:
        ``(vocab, vocab)`` dense symmetric matrix of documents containing
        both words; the diagonal equals ``doc_freq``.
    """

    def __init__(self, num_documents: int, doc_freq: np.ndarray, joint: np.ndarray):
        if joint.shape != (doc_freq.size, doc_freq.size):
            raise ShapeError(
                f"joint shape {joint.shape} inconsistent with vocab {doc_freq.size}"
            )
        self.num_documents = num_documents
        self.doc_freq = doc_freq
        self.joint = joint

    @classmethod
    def from_corpus(cls, corpus: Corpus) -> "DocumentCooccurrence":
        """Count document co-occurrence with a single sparse product."""
        incidence = corpus.binary_doc_word()  # (docs, vocab), 0/1
        joint = (incidence.T @ incidence).toarray()
        doc_freq = np.diag(joint).copy()
        return cls(len(corpus), doc_freq, joint)

    @classmethod
    def from_bow(cls, bow: np.ndarray | sparse.spmatrix) -> "DocumentCooccurrence":
        """Count from a (docs, vocab) count matrix directly."""
        if sparse.issparse(bow):
            incidence = bow.tocsr().copy()
            incidence.data = np.ones_like(incidence.data)
        else:
            incidence = sparse.csr_matrix((np.asarray(bow) > 0).astype(np.float64))
        joint = (incidence.T @ incidence).toarray()
        doc_freq = np.diag(joint).copy()
        return cls(incidence.shape[0], doc_freq, joint)

    @property
    def vocab_size(self) -> int:
        return self.doc_freq.size

    def marginal_probability(self) -> np.ndarray:
        """``p(w)`` estimated as document frequency over document count."""
        return self.doc_freq / self.num_documents

    def joint_probability(self) -> np.ndarray:
        """``p(w_i, w_j)`` estimated from joint document frequency."""
        return self.joint / self.num_documents

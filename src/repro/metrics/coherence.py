"""Topic coherence under the paper's evaluation protocol.

"Topic coherence measures the average NPMI over the top K_TC words of the
selected topics" with K_TC = 10, and — following NSTM — scores are reported
as the average over the *top p% of topics ranked by their own NPMI*, for p
from 10% to 100% (Figure 2's horizontal axis).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.metrics.npmi import NpmiMatrix

DEFAULT_TOP_WORDS = 10
DEFAULT_PERCENTAGES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def top_word_ids(topic_word: np.ndarray, top_n: int) -> np.ndarray:
    """Ids of the ``top_n`` most probable words per topic, ``(K, top_n)``."""
    topic_word = np.asarray(topic_word)
    if topic_word.ndim != 2:
        raise ShapeError(f"topic-word matrix must be 2-D, got {topic_word.shape}")
    if top_n > topic_word.shape[1]:
        raise ConfigError(
            f"top_n={top_n} exceeds vocabulary size {topic_word.shape[1]}"
        )
    order = np.argsort(-topic_word, axis=1)
    return order[:, :top_n]


def topic_npmi_scores(
    topic_word: np.ndarray,
    npmi: NpmiMatrix,
    top_n: int = DEFAULT_TOP_WORDS,
) -> np.ndarray:
    """Per-topic coherence: mean pairwise NPMI over each topic's top words."""
    tops = top_word_ids(topic_word, top_n)
    return np.array([npmi.mean_pairwise(ids) for ids in tops])


def select_topics_by_coherence(
    topic_word: np.ndarray,
    npmi: NpmiMatrix,
    percentage: float,
    top_n: int = DEFAULT_TOP_WORDS,
) -> np.ndarray:
    """Indices of the top ``percentage`` of topics ranked by NPMI."""
    if not 0.0 < percentage <= 1.0:
        raise ConfigError(f"percentage must be in (0, 1], got {percentage}")
    scores = topic_npmi_scores(topic_word, npmi, top_n=top_n)
    k = topic_word.shape[0]
    n_selected = max(1, int(round(k * percentage)))
    return np.argsort(-scores)[:n_selected]


def topic_coherence(
    topic_word: np.ndarray,
    npmi: NpmiMatrix,
    percentage: float = 1.0,
    top_n: int = DEFAULT_TOP_WORDS,
) -> float:
    """Average NPMI coherence over the top ``percentage`` of topics."""
    scores = topic_npmi_scores(topic_word, npmi, top_n=top_n)
    k = topic_word.shape[0]
    n_selected = max(1, int(round(k * percentage)))
    selected = np.sort(scores)[::-1][:n_selected]
    return float(selected.mean())


def coherence_by_percentage(
    topic_word: np.ndarray,
    npmi: NpmiMatrix,
    percentages: Sequence[float] = DEFAULT_PERCENTAGES,
    top_n: int = DEFAULT_TOP_WORDS,
) -> dict[float, float]:
    """The Figure-2 coherence series: ``{percentage: coherence}``.

    Computes per-topic scores once and reuses them for all percentages.
    """
    scores = np.sort(topic_npmi_scores(topic_word, npmi, top_n=top_n))[::-1]
    k = scores.size
    result: dict[float, float] = {}
    for p in percentages:
        if not 0.0 < p <= 1.0:
            raise ConfigError(f"percentage must be in (0, 1], got {p}")
        n_selected = max(1, int(round(k * p)))
        result[p] = float(scores[:n_selected].mean())
    return result

"""Incremental co-occurrence/NPMI engine for streaming corpora.

The paper precomputes its similarity kernel K(·) — the dense V×V NPMI
matrix — once, on a static training corpus (§IV.A), and itself flags the
O(V²) cost of keeping that matrix around (§V.E).  In the streaming
setting (documents arrive in time slices; see
:mod:`repro.extensions.online`) a from-scratch rebuild per slice pays

* O(nnz_total·V) to recount document co-occurrence over *every*
  document seen so far, and
* a fresh O(V²) NPMI derivation allocating several V×V temporaries.

:class:`StreamingNpmiEngine` makes kernel maintenance incremental and
exact instead:

* :meth:`~repro.metrics.cooccurrence.DocumentCooccurrence.update` adds
  only the new documents' binary-slice product — O(nnz_new·V), sparse-
  accumulated — into the existing joint/df/D counts, **bitwise equal**
  to a full recount (integer counts are exact in float64);
* :meth:`~repro.metrics.npmi.NpmiMatrix.rederive_into` rebuilds the
  NPMI matrix in place through one persistent
  :class:`~repro.metrics.npmi.NpmiWorkspace`, so the per-slice cost is
  pure arithmetic with zero V×V allocations, and the result matches a
  cold :func:`~repro.metrics.npmi.compute_npmi_matrix` to the last bit
  (same derivation kernel).

Module-level counters aggregate every engine's activity per process;
:func:`record_streaming_stats` publishes them (plus the co-occurrence
cache's hit/miss counters) into a
:class:`~repro.telemetry.MetricsRegistry`, where
:func:`repro.telemetry.report.build_report` rolls them into
``streaming_*`` / ``npmi_cache_*`` totals for the CI perf guard.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.metrics.cooccurrence import (
    DocumentCooccurrence,
    cooccurrence_cache_stats,
)
from repro.metrics.npmi import NpmiMatrix, NpmiWorkspace

_STREAM_STATS = {
    "updates": 0,
    "documents": 0,
    "delta_nnz": 0,
    "buffer_reuses": 0,
}


def streaming_update_stats() -> dict[str, int]:
    """Process-wide streaming counters (all engines, since last reset)."""
    return dict(_STREAM_STATS)


def reset_streaming_stats() -> None:
    """Zero the process-wide streaming counters (tests use this)."""
    for key in _STREAM_STATS:
        _STREAM_STATS[key] = 0


def record_streaming_stats(registry, prefix: str = "streaming") -> None:
    """Publish streaming + NPMI-cache counters into ``registry``.

    Keys are absolute (``streaming/updates``, ``npmi_cache/hits``, ...)
    so callers inside nested timer scopes record the same names;
    :func:`repro.telemetry.report.build_report` picks them up as
    ``streaming_*`` / ``npmi_cache_*`` report totals.
    """
    for name, value in _STREAM_STATS.items():
        registry.counter(f"{prefix}/{name}", absolute=True).add(value)
    for name, value in cooccurrence_cache_stats().items():
        registry.counter(f"npmi_cache/{name}", absolute=True).add(value)


class StreamingNpmiEngine:
    """Exact delta-update maintenance of co-occurrence counts and NPMI.

    One engine owns three persistent pieces of state over a fixed
    vocabulary: a mutable :class:`DocumentCooccurrence` (the cumulative
    counts), an :class:`NpmiMatrix` whose ``matrix`` is the reused V×V
    output buffer, and an :class:`NpmiWorkspace` of scratch buffers.
    Feeding a slice through :meth:`update` costs O(nnz_new·V) counting
    plus one allocation-free O(V²) rederivation; after any schedule of
    slices the counts equal a full recount bitwise and the NPMI equals a
    cold build exactly.

    The engine's :attr:`npmi` is a *live* view — it is rederived in
    place, so long-lived consumers (e.g. a
    :class:`~repro.core.similarity.SimilarityKernel` refreshed per
    slice) can hold onto it across updates.
    """

    def __init__(
        self,
        vocab_size: int,
        epsilon: float = 1e-12,
        never_cooccur_value: float = -1.0,
    ):
        self.cooccurrence = DocumentCooccurrence.empty(vocab_size)
        self.npmi = NpmiMatrix(np.zeros((vocab_size, vocab_size)))
        self.epsilon = epsilon
        self.never_cooccur_value = never_cooccur_value
        self._workspace = NpmiWorkspace(vocab_size)
        self.stats = {
            "updates": 0,
            "documents": 0,
            "delta_nnz": 0,
            "buffer_reuses": 0,
        }

    @property
    def vocab_size(self) -> int:
        return self.cooccurrence.vocab_size

    @property
    def num_documents(self) -> int:
        return self.cooccurrence.num_documents

    def update(self, new_docs) -> NpmiMatrix:
        """Fold one slice in and rederive the NPMI matrix in place.

        ``new_docs`` accepts everything
        :meth:`DocumentCooccurrence.update` does — a corpus, a (possibly
        empty) sequence of token-id documents, or a ``(docs, vocab)``
        count matrix.  Returns the engine's live :attr:`npmi` (zeros
        until the first non-empty slice arrives).
        """
        before = self.cooccurrence.num_documents
        delta_nnz = self.cooccurrence.update(new_docs)
        added = self.cooccurrence.num_documents - before
        reused = self.stats["updates"] > 0
        if self.cooccurrence.num_documents > 0:
            self.npmi.rederive_into(
                self.cooccurrence,
                workspace=self._workspace,
                epsilon=self.epsilon,
                never_cooccur_value=self.never_cooccur_value,
            )
        self.stats["updates"] += 1
        self.stats["documents"] += added
        self.stats["delta_nnz"] += delta_nnz
        self.stats["buffer_reuses"] += int(reused)
        _STREAM_STATS["updates"] += 1
        _STREAM_STATS["documents"] += added
        _STREAM_STATS["delta_nnz"] += delta_nnz
        _STREAM_STATS["buffer_reuses"] += int(reused)
        return self.npmi

    def recount_reference(self) -> DocumentCooccurrence:
        """A *fresh* zero-count instance sharing this engine's vocab.

        Convenience for equivalence tests and benchmarks that replay the
        same slices through a from-scratch recount.
        """
        return DocumentCooccurrence.empty(self.vocab_size)

    def check_against(self, full: DocumentCooccurrence) -> None:
        """Assert bitwise count equality against a full recount.

        Raises :class:`~repro.errors.ShapeError` on any mismatch — used
        by the benchmark to enforce the exactness contract outside the
        test suite too.
        """
        if full.vocab_size != self.vocab_size:
            raise ShapeError(
                f"recount vocab {full.vocab_size} != engine vocab "
                f"{self.vocab_size}"
            )
        if (
            full.num_documents != self.num_documents
            or not np.array_equal(full.doc_freq, self.cooccurrence.doc_freq)
            or not np.array_equal(full.joint, self.cooccurrence.joint)
        ):
            raise ShapeError(
                "incremental counts diverged from the full recount"
            )

"""The C_v topic-coherence metric (Röder, Both & Hinneburg, 2015).

The paper's §IV.A discussion weighs NPMI against "automatic evaluation
metrics such as NPMI or C_v"; this module provides C_v so users can check
that conclusions are metric-robust.

C_v works on a boolean sliding window over the corpus:

1. estimate p(w) and p(w_i, w_j) from windows of width 110 (here: width
   configurable, documents shorter than the window count as one window);
2. every top word w_i of a topic gets a *context vector* of NPMI values
   against all top words of the topic;
3. each word's vector is compared (cosine) with the vector of the whole
   top-word set (one-set segmentation, S_one_set);
4. the topic's C_v is the mean cosine over its top words, and the model's
   C_v is the mean over topics.
"""

from __future__ import annotations

import numpy as np

from repro.data.corpus import Corpus
from repro.errors import ConfigError
from repro.metrics.coherence import top_word_ids


def sliding_window_cooccurrence(
    corpus: Corpus, window_size: int = 110
) -> tuple[np.ndarray, np.ndarray, int]:
    """Boolean sliding-window counts.

    Returns ``(word_counts, joint_counts, num_windows)`` where counts are
    numbers of windows containing the word (pair).  Pair counts are
    restricted to nothing — the full V×V matrix is produced (vocabularies
    here are small; for big V restrict to the evaluated top words first).
    """
    if window_size < 2:
        raise ConfigError("window_size must be >= 2")
    v = corpus.vocab_size
    word_counts = np.zeros(v)
    joint = np.zeros((v, v))
    num_windows = 0
    for doc in corpus.documents:
        n = doc.size
        if n <= window_size:
            windows = [doc]
        else:
            windows = [doc[i : i + window_size] for i in range(n - window_size + 1)]
        for window in windows:
            ids = np.unique(window)
            word_counts[ids] += 1.0
            joint[np.ix_(ids, ids)] += 1.0
            num_windows += 1
    return word_counts, joint, num_windows


def _npmi_from_window_counts(
    word_counts: np.ndarray, joint: np.ndarray, num_windows: int, eps: float = 1e-12
) -> np.ndarray:
    p_w = word_counts / max(num_windows, 1)
    p_joint = joint / max(num_windows, 1)
    with np.errstate(divide="ignore", invalid="ignore"):
        pmi = np.log((p_joint + eps) / (np.outer(p_w, p_w) + eps))
        denom = -np.log(p_joint + eps)
        npmi = pmi / denom
    npmi = np.where(p_joint > 0, npmi, 0.0)
    npmi = np.where(p_joint >= 1.0, 1.0, npmi)
    return np.clip(npmi, -1.0, 1.0)


def cv_coherence(
    topic_word: np.ndarray,
    corpus: Corpus,
    top_n: int = 10,
    window_size: int = 110,
) -> float:
    """Mean C_v over all topics, estimated on ``corpus``."""
    scores = cv_per_topic(topic_word, corpus, top_n=top_n, window_size=window_size)
    return float(scores.mean())


def cv_per_topic(
    topic_word: np.ndarray,
    corpus: Corpus,
    top_n: int = 10,
    window_size: int = 110,
) -> np.ndarray:
    """Per-topic C_v scores, shape ``(K,)``."""
    word_counts, joint, num_windows = sliding_window_cooccurrence(
        corpus, window_size=window_size
    )
    npmi = _npmi_from_window_counts(word_counts, joint, num_windows)
    tops = top_word_ids(np.asarray(topic_word, dtype=np.float64), top_n)
    scores = np.empty(tops.shape[0])
    for k, words in enumerate(tops):
        vectors = npmi[np.ix_(words, words)]  # context vectors per word
        set_vector = vectors.sum(axis=0)      # S_one_set aggregate
        cosines = []
        set_norm = np.linalg.norm(set_vector) + 1e-12
        for row in vectors:
            row_norm = np.linalg.norm(row) + 1e-12
            cosines.append(float(row @ set_vector) / (row_norm * set_norm))
        scores[k] = float(np.mean(cosines))
    return scores

"""Topic diversity under the paper's protocol.

"Topic diversity measures the percentage of unique words in the top K_TD
words of selected topics" with K_TD = 25.  As with coherence, the score is
reported over the top p% of topics ranked by NPMI (Figure 2, second row).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.metrics.coherence import (
    DEFAULT_PERCENTAGES,
    top_word_ids,
    topic_npmi_scores,
)
from repro.metrics.npmi import NpmiMatrix

DEFAULT_TOP_WORDS_DIVERSITY = 25


def topic_diversity(
    topic_word: np.ndarray,
    top_n: int = DEFAULT_TOP_WORDS_DIVERSITY,
    topic_indices: np.ndarray | None = None,
) -> float:
    """Fraction of unique words among the selected topics' top words."""
    tops = top_word_ids(topic_word, top_n)
    if topic_indices is not None:
        tops = tops[np.asarray(topic_indices, dtype=np.intp)]
    total = tops.size
    unique = np.unique(tops).size
    return float(unique / total)


def diversity_by_percentage(
    topic_word: np.ndarray,
    npmi: NpmiMatrix,
    percentages: Sequence[float] = DEFAULT_PERCENTAGES,
    top_n: int = DEFAULT_TOP_WORDS_DIVERSITY,
    coherence_top_n: int = 10,
) -> dict[float, float]:
    """The Figure-2 diversity series: ``{percentage: diversity}``.

    Topics are ranked by their NPMI coherence (as in the coherence series)
    and diversity is measured within each selected prefix.
    """
    scores = topic_npmi_scores(topic_word, npmi, top_n=coherence_top_n)
    ranked = np.argsort(-scores)
    k = ranked.size
    result: dict[float, float] = {}
    for p in percentages:
        if not 0.0 < p <= 1.0:
            raise ConfigError(f"percentage must be in (0, 1], got {p}")
        n_selected = max(1, int(round(k * p)))
        result[p] = topic_diversity(
            topic_word, top_n=top_n, topic_indices=ranked[:n_selected]
        )
    return result

"""Simulated word-intrusion evaluation (paper §V.J, Table III).

The paper's human study builds, per evaluated topic, a question of the
topic's five most probable words plus one *intruder* (a word improbable in
this topic but probable in some other, non-selected topic) and measures the
word-intrusion score (WIS): the fraction of questions where the annotator
spots the intruder.

Humans are unavailable here, so the annotator is simulated with the
relationship the paper itself reports ("participants face greater
challenges in correctly identifying intruders within topics with lower
coherence"): each candidate word is scored by its mean NPMI association
with the other five words plus Gumbel-distributed perceptual noise, and the
least-associated candidate is chosen.  With zero noise the annotator is an
NPMI oracle; with large noise they guess uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.metrics.coherence import top_word_ids, topic_npmi_scores
from repro.metrics.npmi import NpmiMatrix


@dataclass(frozen=True)
class IntrusionTask:
    """One questionnaire item: candidate word ids and the intruder's slot."""

    candidate_ids: tuple[int, ...]
    intruder_position: int
    topic_index: int


def _select_topics_per_decile(
    scores: np.ndarray, per_decile: int, rng: np.random.Generator
) -> list[int]:
    """Sample ``per_decile`` topics from each decile of coherence rank.

    Mirrors the paper's fairness protocol: "we randomly sample 3 topics from
    each decile of topics sorted by topic coherence".
    """
    order = np.argsort(-scores)
    k = order.size
    selected: list[int] = []
    for decile in range(10):
        start = (decile * k) // 10
        stop = ((decile + 1) * k) // 10
        bucket = order[start:stop]
        if bucket.size == 0:
            continue
        take = min(per_decile, bucket.size)
        selected.extend(rng.choice(bucket, size=take, replace=False).tolist())
    return selected


def build_intrusion_tasks(
    topic_word: np.ndarray,
    npmi: NpmiMatrix,
    rng: np.random.Generator,
    topics_per_decile: int = 3,
    top_words: int = 5,
) -> list[IntrusionTask]:
    """Generate questionnaire items following the paper's §V.J.2 protocol.

    The intruder for a topic is sampled from words of *low* probability in
    that topic (bottom half) but *high* probability (top-5) in some other,
    non-selected topic — "to minimize the chance of it belonging to the same
    semantic group ... [and] to ensure it is not outright rejected due
    solely to rarity".
    """
    topic_word = np.asarray(topic_word, dtype=np.float64)
    k, v = topic_word.shape
    if k < 2:
        raise ConfigError("word intrusion requires at least two topics")
    scores = topic_npmi_scores(topic_word, npmi, top_n=min(10, v))
    selected = _select_topics_per_decile(scores, topics_per_decile, rng)
    selected_set = set(selected)
    other_topics = [t for t in range(k) if t not in selected_set]
    if not other_topics:
        # Tiny models: fall back to drawing intruders from selected topics.
        other_topics = list(range(k))

    tops = top_word_ids(topic_word, top_words)
    tasks: list[IntrusionTask] = []
    for topic in selected:
        own_rank = np.argsort(-topic_word[topic])
        low_in_topic = set(own_rank[v // 2 :].tolist())
        candidates: list[int] = []
        for other in rng.permutation(other_topics):
            for word in top_word_ids(topic_word[None, other], top_words)[0]:
                if int(word) in low_in_topic and int(word) not in set(tops[topic].tolist()):
                    candidates.append(int(word))
        if not candidates:
            continue
        intruder = int(rng.choice(candidates))
        words = tops[topic].tolist() + [intruder]
        order = rng.permutation(len(words))
        shuffled = [int(words[i]) for i in order]
        position = int(np.where(order == len(words) - 1)[0][0])
        tasks.append(
            IntrusionTask(
                candidate_ids=tuple(shuffled),
                intruder_position=position,
                topic_index=topic,
            )
        )
    return tasks


def format_questionnaire(
    tasks: list[IntrusionTask],
    vocabulary,
    title: str = "Word Intrusion Questionnaire",
) -> str:
    """Render tasks as the paper's Figure-7 style questionnaire text.

    Each question lists the six shuffled candidate words; the answer key
    (intruder positions) is appended at the end, as an experimenter's copy.
    """
    lines = [title, "=" * len(title), ""]
    for i, task in enumerate(tasks, start=1):
        words = [vocabulary.token_of(int(w)) for w in task.candidate_ids]
        lines.append(f"Q{i}. Select the word that does not belong:")
        lines.append(
            "     " + "   ".join(f"({j+1}) {w}" for j, w in enumerate(words))
        )
        lines.append("")
    key = ", ".join(
        f"Q{i}={task.intruder_position + 1}" for i, task in enumerate(tasks, 1)
    )
    lines.append(f"[answer key: {key}]")
    return "\n".join(lines)


class SimulatedAnnotator:
    """An NPMI-guided annotator with Gumbel perceptual noise.

    Parameters
    ----------
    npmi:
        The association matrix the annotator's "semantic intuition" reads.
    noise_scale:
        Scale of Gumbel noise added to each candidate's association score.
        0 gives an oracle; the default 0.12 yields human-like accuracy
        (the paper's WIS ranges over roughly 0.3–0.8).
    """

    def __init__(
        self,
        npmi: NpmiMatrix,
        rng: np.random.Generator,
        noise_scale: float = 0.12,
    ):
        if noise_scale < 0:
            raise ConfigError("noise_scale must be non-negative")
        self.npmi = npmi
        self.noise_scale = noise_scale
        self._rng = rng

    def answer(self, task: IntrusionTask) -> int:
        """Return the position this annotator believes holds the intruder."""
        ids = np.asarray(task.candidate_ids, dtype=np.intp)
        sub = self.npmi.submatrix(ids)
        np.fill_diagonal(sub, 0.0)
        association = sub.sum(axis=1) / (ids.size - 1)
        if self.noise_scale > 0:
            association = association + self.noise_scale * self._rng.gumbel(
                size=ids.size
            )
        return int(np.argmin(association))


def word_intrusion_score(
    topic_word: np.ndarray,
    npmi: NpmiMatrix,
    num_annotators: int = 20,
    topics_per_decile: int = 3,
    noise_scale: float = 0.12,
    seed: int = 0,
) -> float:
    """WIS: fraction of (annotator, question) pairs answered correctly."""
    rng = np.random.default_rng(seed)
    tasks = build_intrusion_tasks(
        topic_word, npmi, rng, topics_per_decile=topics_per_decile
    )
    if not tasks:
        return 0.0
    correct = 0
    total = 0
    for a in range(num_annotators):
        annotator = SimulatedAnnotator(
            npmi, np.random.default_rng(seed * 1000 + a + 1), noise_scale=noise_scale
        )
        for task in tasks:
            correct += int(annotator.answer(task) == task.intruder_position)
            total += 1
    return correct / total

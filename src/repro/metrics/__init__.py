"""Evaluation substrate: NPMI coherence, diversity, clustering, intrusion.

This package implements every metric in the paper's §V.B plus the NPMI
matrix precomputation that the ContraTopic regularizer consumes as its
similarity kernel K(·).
"""

from repro.metrics.cooccurrence import DocumentCooccurrence
from repro.metrics.npmi import NpmiMatrix, NpmiWorkspace, compute_npmi_matrix
from repro.metrics.streaming import (
    StreamingNpmiEngine,
    record_streaming_stats,
    reset_streaming_stats,
    streaming_update_stats,
)
from repro.metrics.coherence import (
    topic_coherence,
    topic_npmi_scores,
    coherence_by_percentage,
    select_topics_by_coherence,
)
from repro.metrics.diversity import topic_diversity, diversity_by_percentage
from repro.metrics.clustering_metrics import purity, normalized_mutual_information
from repro.metrics.intrusion import (
    SimulatedAnnotator,
    IntrusionTask,
    build_intrusion_tasks,
    word_intrusion_score,
)
from repro.metrics.perplexity import heldout_perplexity
from repro.metrics.cv_coherence import cv_coherence, cv_per_topic
from repro.metrics.significance import (
    MeanStd,
    mean_std,
    welch_t_test,
    paired_bootstrap,
)

__all__ = [
    "cv_coherence",
    "cv_per_topic",
    "MeanStd",
    "mean_std",
    "welch_t_test",
    "paired_bootstrap",
    "DocumentCooccurrence",
    "NpmiMatrix",
    "NpmiWorkspace",
    "compute_npmi_matrix",
    "StreamingNpmiEngine",
    "record_streaming_stats",
    "reset_streaming_stats",
    "streaming_update_stats",
    "topic_coherence",
    "topic_npmi_scores",
    "coherence_by_percentage",
    "select_topics_by_coherence",
    "topic_diversity",
    "diversity_by_percentage",
    "purity",
    "normalized_mutual_information",
    "SimulatedAnnotator",
    "IntrusionTask",
    "build_intrusion_tasks",
    "word_intrusion_score",
    "heldout_perplexity",
]

"""Normalized point-wise mutual information (NPMI) matrices.

NPMI(w_i, w_j) = log( p(w_i, w_j) / (p(w_i) p(w_j)) ) / ( -log p(w_i, w_j) )

lies in [-1, 1]: 1 for words that always co-occur, 0 for independent words,
-1 for words that never co-occur.  The paper precomputes the full V×V NPMI
matrix on the *training* corpus and uses it both as the similarity kernel
K(·) of the contrastive regularizer (§IV.A) and — recomputed on *test*
documents — as the coherence evaluation metric (§V.B).  The §V.E analysis
notes the O(V^2) space cost of keeping this matrix around; that cost is
inherited faithfully here.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.data.corpus import Corpus
from repro.errors import ShapeError
from repro.metrics.cooccurrence import (
    CACHE_CAPACITY,
    DocumentCooccurrence,
    corpus_fingerprint,
)

# NPMI derivation is itself O(V^2) in log/divide passes, so the finished
# matrix is memoised alongside the counts: one build per (corpus,
# parameters) per process.  Keyed by content fingerprint — a Corpus
# source only; precounted DocumentCooccurrence sources have no
# fingerprint and always compute.
_NPMI_CACHE: "OrderedDict[tuple, NpmiMatrix]" = OrderedDict()


def clear_npmi_cache() -> None:
    """Drop every cached NPMI matrix (tests use this)."""
    _NPMI_CACHE.clear()


class NpmiWorkspace:
    """Preallocated scratch buffers for repeated NPMI rederivations.

    A cold :func:`compute_npmi_matrix` allocates a handful of V×V
    temporaries (log numerator, log denominator, masks) on every call;
    a streaming consumer rederiving after each slice would churn those
    allocations once per slice.  One workspace owns them instead —
    :meth:`NpmiMatrix.rederive_into` reuses the same buffers rebuild
    after rebuild.  ``uses`` counts how many rederivations ran through
    the workspace (reuses are ``uses - 1``).
    """

    def __init__(self, vocab_size: int):
        if vocab_size < 1:
            raise ShapeError(f"vocab_size must be >= 1, got {vocab_size}")
        shape = (vocab_size, vocab_size)
        self.log_joint = np.empty(shape, dtype=np.float64)
        self.log_marginal = np.empty(shape, dtype=np.float64)
        self.zero_joint = np.empty(shape, dtype=bool)
        self.saturated = np.empty(shape, dtype=bool)
        self.uses = 0

    @property
    def vocab_size(self) -> int:
        return self.log_joint.shape[0]


def _derive_npmi_into(
    out: np.ndarray,
    cooc: "DocumentCooccurrence",
    epsilon: float,
    never_cooccur_value: float,
    work: NpmiWorkspace,
) -> np.ndarray:
    """Derive NPMI from counts into ``out`` using ``work`` scratch only.

    This is *the* derivation — the cold path wraps it with freshly
    allocated buffers, the streaming path with persistent ones — so the
    two agree to the last bit by construction.
    """
    if cooc.num_documents < 1:
        raise ShapeError("cannot derive NPMI from zero documents")
    np.divide(cooc.joint, cooc.num_documents, out=out)  # p(w_i, w_j)
    p_word = cooc.doc_freq / cooc.num_documents
    np.less_equal(out, 0.0, out=work.zero_joint)
    np.greater_equal(out, 1.0, out=work.saturated)
    np.add(out, epsilon, out=work.log_joint)
    np.log(work.log_joint, out=work.log_joint)  # log(p_joint + eps)
    np.outer(p_word, p_word, out=work.log_marginal)
    np.add(work.log_marginal, epsilon, out=work.log_marginal)
    np.log(work.log_marginal, out=work.log_marginal)  # log(p_i p_j + eps)
    # pmi = log(p_joint + eps) - log(p_i p_j + eps), into the marginal
    # buffer; normalizer -log(p_joint + eps) into the joint buffer.
    np.subtract(work.log_joint, work.log_marginal, out=work.log_marginal)
    np.negative(work.log_joint, out=work.log_joint)
    with np.errstate(divide="ignore", invalid="ignore"):
        np.divide(work.log_marginal, work.log_joint, out=out)
    out[work.zero_joint] = never_cooccur_value
    # Degenerate p(w_i, w_j) = 1 (both words in every document): the
    # normalizer -log p is 0; the dependence limit is +1.
    out[work.saturated] = 1.0
    # Words that never occur at all are undefined; treat as uninformative 0.
    absent = p_word <= 0.0
    if absent.any():
        out[absent, :] = 0.0
        out[:, absent] = 0.0
    np.fill_diagonal(out, 1.0)
    np.clip(out, -1.0, 1.0, out=out)
    work.uses += 1
    return out


class NpmiMatrix:
    """A precomputed dense NPMI matrix with convenience lookups."""

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ShapeError(f"NPMI matrix must be square, got {matrix.shape}")
        self.matrix = matrix

    @property
    def vocab_size(self) -> int:
        return self.matrix.shape[0]

    def __getitem__(self, index) -> np.ndarray:
        return self.matrix[index]

    def pair(self, i: int, j: int) -> float:
        return float(self.matrix[i, j])

    def submatrix(self, word_ids: np.ndarray) -> np.ndarray:
        """NPMI restricted to ``word_ids`` (used when scoring one topic)."""
        ids = np.asarray(word_ids, dtype=np.intp)
        return self.matrix[np.ix_(ids, ids)]

    def mean_pairwise(self, word_ids: np.ndarray) -> float:
        """Mean NPMI over unordered pairs of distinct words in ``word_ids``."""
        ids = np.asarray(word_ids, dtype=np.intp)
        n = ids.size
        if n < 2:
            return 0.0
        sub = self.submatrix(ids)
        total = sub.sum() - np.trace(sub)
        return float(total / (n * (n - 1)))

    def rederive_into(
        self,
        source: "DocumentCooccurrence",
        workspace: NpmiWorkspace | None = None,
        epsilon: float = 1e-12,
        never_cooccur_value: float = -1.0,
    ) -> "NpmiMatrix":
        """Recompute this matrix **in place** from ``source`` counts.

        ``self.matrix`` is the persistent V×V output buffer; the
        log/mask temporaries come from ``workspace`` (allocated fresh
        when omitted — pass a long-lived :class:`NpmiWorkspace` to make
        repeated rebuilds allocation-free).  The result is identical to
        a cold :func:`compute_npmi_matrix` over the same counts: both
        run the same derivation kernel.  Returns ``self``.
        """
        if source.vocab_size != self.vocab_size:
            raise ShapeError(
                f"counts vocab {source.vocab_size} != matrix vocab "
                f"{self.vocab_size}"
            )
        if workspace is None:
            workspace = NpmiWorkspace(self.vocab_size)
        elif workspace.vocab_size != self.vocab_size:
            raise ShapeError(
                f"workspace vocab {workspace.vocab_size} != matrix vocab "
                f"{self.vocab_size}"
            )
        _derive_npmi_into(
            self.matrix, source, epsilon, never_cooccur_value, workspace
        )
        return self


def compute_npmi_matrix(
    source: Corpus | DocumentCooccurrence,
    epsilon: float = 1e-12,
    never_cooccur_value: float = -1.0,
) -> NpmiMatrix:
    """Precompute the dense NPMI matrix from document co-occurrence.

    Parameters
    ----------
    source:
        A corpus (counted internally) or precounted co-occurrence.
    epsilon:
        Numerical guard inside the logs.
    never_cooccur_value:
        NPMI assigned to pairs with zero joint document frequency.  The
        theoretical limit is -1; some implementations use 0.  -1 is the
        natural choice for the contrastive kernel because it actively
        repels words that never co-occur.

    Notes
    -----
    The diagonal is set to 1 (a word is maximally associated with itself),
    though no consumer in this library reads the diagonal.
    """
    key: tuple | None = None
    if isinstance(source, Corpus):
        key = (corpus_fingerprint(source), epsilon, never_cooccur_value)
        cached = _NPMI_CACHE.get(key)
        if cached is not None:
            _NPMI_CACHE.move_to_end(key)
            return cached
    cooc = (
        source
        if isinstance(source, DocumentCooccurrence)
        else DocumentCooccurrence.from_corpus(source)
    )
    npmi = np.empty((cooc.vocab_size, cooc.vocab_size), dtype=np.float64)
    _derive_npmi_into(
        npmi, cooc, epsilon, never_cooccur_value, NpmiWorkspace(cooc.vocab_size)
    )
    result = NpmiMatrix(npmi)
    if key is not None:
        _NPMI_CACHE[key] = result
        while len(_NPMI_CACHE) > CACHE_CAPACITY:
            _NPMI_CACHE.popitem(last=False)
    return result

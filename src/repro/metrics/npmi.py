"""Normalized point-wise mutual information (NPMI) matrices.

NPMI(w_i, w_j) = log( p(w_i, w_j) / (p(w_i) p(w_j)) ) / ( -log p(w_i, w_j) )

lies in [-1, 1]: 1 for words that always co-occur, 0 for independent words,
-1 for words that never co-occur.  The paper precomputes the full V×V NPMI
matrix on the *training* corpus and uses it both as the similarity kernel
K(·) of the contrastive regularizer (§IV.A) and — recomputed on *test*
documents — as the coherence evaluation metric (§V.B).  The §V.E analysis
notes the O(V^2) space cost of keeping this matrix around; that cost is
inherited faithfully here.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.data.corpus import Corpus
from repro.errors import ShapeError
from repro.metrics.cooccurrence import (
    CACHE_CAPACITY,
    DocumentCooccurrence,
    corpus_fingerprint,
)

# NPMI derivation is itself O(V^2) in log/divide passes, so the finished
# matrix is memoised alongside the counts: one build per (corpus,
# parameters) per process.  Keyed by content fingerprint — a Corpus
# source only; precounted DocumentCooccurrence sources have no
# fingerprint and always compute.
_NPMI_CACHE: "OrderedDict[tuple, NpmiMatrix]" = OrderedDict()


def clear_npmi_cache() -> None:
    """Drop every cached NPMI matrix (tests use this)."""
    _NPMI_CACHE.clear()


class NpmiMatrix:
    """A precomputed dense NPMI matrix with convenience lookups."""

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ShapeError(f"NPMI matrix must be square, got {matrix.shape}")
        self.matrix = matrix

    @property
    def vocab_size(self) -> int:
        return self.matrix.shape[0]

    def __getitem__(self, index) -> np.ndarray:
        return self.matrix[index]

    def pair(self, i: int, j: int) -> float:
        return float(self.matrix[i, j])

    def submatrix(self, word_ids: np.ndarray) -> np.ndarray:
        """NPMI restricted to ``word_ids`` (used when scoring one topic)."""
        ids = np.asarray(word_ids, dtype=np.intp)
        return self.matrix[np.ix_(ids, ids)]

    def mean_pairwise(self, word_ids: np.ndarray) -> float:
        """Mean NPMI over unordered pairs of distinct words in ``word_ids``."""
        ids = np.asarray(word_ids, dtype=np.intp)
        n = ids.size
        if n < 2:
            return 0.0
        sub = self.submatrix(ids)
        total = sub.sum() - np.trace(sub)
        return float(total / (n * (n - 1)))


def compute_npmi_matrix(
    source: Corpus | DocumentCooccurrence,
    epsilon: float = 1e-12,
    never_cooccur_value: float = -1.0,
) -> NpmiMatrix:
    """Precompute the dense NPMI matrix from document co-occurrence.

    Parameters
    ----------
    source:
        A corpus (counted internally) or precounted co-occurrence.
    epsilon:
        Numerical guard inside the logs.
    never_cooccur_value:
        NPMI assigned to pairs with zero joint document frequency.  The
        theoretical limit is -1; some implementations use 0.  -1 is the
        natural choice for the contrastive kernel because it actively
        repels words that never co-occur.

    Notes
    -----
    The diagonal is set to 1 (a word is maximally associated with itself),
    though no consumer in this library reads the diagonal.
    """
    key: tuple | None = None
    if isinstance(source, Corpus):
        key = (corpus_fingerprint(source), epsilon, never_cooccur_value)
        cached = _NPMI_CACHE.get(key)
        if cached is not None:
            _NPMI_CACHE.move_to_end(key)
            return cached
    cooc = (
        source
        if isinstance(source, DocumentCooccurrence)
        else DocumentCooccurrence.from_corpus(source)
    )
    p_word = cooc.marginal_probability()
    p_joint = cooc.joint_probability()

    with np.errstate(divide="ignore", invalid="ignore"):
        pmi = np.log(p_joint + epsilon) - np.log(
            np.outer(p_word, p_word) + epsilon
        )
        denom = -np.log(p_joint + epsilon)
        npmi = pmi / denom

    zero_joint = p_joint <= 0.0
    npmi = np.where(zero_joint, never_cooccur_value, npmi)
    # Degenerate p(w_i, w_j) = 1 (both words in every document): the
    # normalizer -log p is 0; the dependence limit is +1.
    npmi = np.where(p_joint >= 1.0, 1.0, npmi)
    # Words that never occur at all are undefined; treat as uninformative 0.
    absent = p_word <= 0.0
    if absent.any():
        npmi[absent, :] = 0.0
        npmi[:, absent] = 0.0
    np.fill_diagonal(npmi, 1.0)
    npmi = np.clip(npmi, -1.0, 1.0)
    result = NpmiMatrix(npmi)
    if key is not None:
        _NPMI_CACHE[key] = result
        while len(_NPMI_CACHE) > CACHE_CAPACITY:
            _NPMI_CACHE.popitem(last=False)
    return result

"""External clustering quality: purity and normalized mutual information.

These score the paper's km-Purity / km-NMI evaluation: run KMeans on
document-topic vectors, then compare the cluster assignment against the
human-annotated document labels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def _validate(assignments: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    assignments = np.asarray(assignments, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if assignments.shape != labels.shape or assignments.ndim != 1:
        raise ShapeError(
            f"assignments {assignments.shape} and labels {labels.shape} "
            "must be equal-length 1-D arrays"
        )
    if assignments.size == 0:
        raise ShapeError("cannot score an empty clustering")
    return assignments, labels


def contingency_table(assignments: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """``(clusters, classes)`` count table of the two partitions."""
    assignments, labels = _validate(assignments, labels)
    n_clusters = int(assignments.max()) + 1
    n_classes = int(labels.max()) + 1
    table = np.zeros((n_clusters, n_classes), dtype=np.int64)
    np.add.at(table, (assignments, labels), 1)
    return table


def purity(assignments: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of points whose cluster's majority class matches their own.

    purity = (1/N) * sum_c max_j |cluster_c ∩ class_j| — in [0, 1],
    1 when every cluster is label-pure.
    """
    table = contingency_table(assignments, labels)
    return float(table.max(axis=1).sum() / table.sum())


def normalized_mutual_information(
    assignments: np.ndarray, labels: np.ndarray
) -> float:
    """NMI(C, L) = 2 I(C; L) / (H(C) + H(L)) — in [0, 1].

    Returns 0 when either partition is constant (zero entropy), matching the
    convention of scikit-learn's arithmetic-mean NMI.
    """
    table = contingency_table(assignments, labels).astype(np.float64)
    n = table.sum()
    joint = table / n
    p_cluster = joint.sum(axis=1)
    p_class = joint.sum(axis=0)

    nonzero = joint > 0
    outer = np.outer(p_cluster, p_class)
    mutual_info = float(
        (joint[nonzero] * np.log(joint[nonzero] / outer[nonzero])).sum()
    )

    h_cluster = float(-(p_cluster[p_cluster > 0] * np.log(p_cluster[p_cluster > 0])).sum())
    h_class = float(-(p_class[p_class > 0] * np.log(p_class[p_class > 0])).sum())
    if h_cluster <= 0.0 or h_class <= 0.0:
        return 0.0
    # Mutual information is non-negative in exact arithmetic; clamp the
    # O(1e-16) float noise that appears for near-independent partitions.
    value = 2.0 * mutual_info / (h_cluster + h_class)
    return float(min(1.0, max(0.0, value)))

"""Statistical comparison of models across random seeds.

The paper runs each model three times "by modifying only the random seeds
and reporting the mean values" and Table II reports mean±std.  These
helpers provide the aggregation plus two standard tests for claiming one
model beats another: Welch's t-test (unequal variances) and a paired
bootstrap over seed-level scores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ConfigError


@dataclass(frozen=True)
class MeanStd:
    """Mean ± standard deviation of a per-seed metric."""

    mean: float
    std: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.3f}±{self.std:.2f}"


def mean_std(values) -> MeanStd:
    """Aggregate per-seed scores into the paper's mean±std format."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ConfigError("cannot aggregate an empty score list")
    return MeanStd(
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        n=array.size,
    )


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of comparing model A against model B on one metric."""

    mean_difference: float  # mean(A) - mean(B)
    p_value: float
    significant: bool
    method: str


def welch_t_test(
    scores_a, scores_b, alpha: float = 0.05
) -> ComparisonResult:
    """Welch's unequal-variance t-test on two per-seed score lists."""
    a = np.asarray(list(scores_a), dtype=np.float64)
    b = np.asarray(list(scores_b), dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ConfigError("welch_t_test needs at least two scores per side")
    statistic, p_value = stats.ttest_ind(a, b, equal_var=False)
    del statistic
    return ComparisonResult(
        mean_difference=float(a.mean() - b.mean()),
        p_value=float(p_value),
        significant=bool(p_value < alpha),
        method="welch-t",
    )


def paired_bootstrap(
    scores_a,
    scores_b,
    n_resamples: int = 10_000,
    alpha: float = 0.05,
    seed: int = 0,
) -> ComparisonResult:
    """Paired bootstrap over seed-matched scores.

    The p-value is the (two-sided) bootstrap probability that the sign of
    the mean difference flips under resampling.
    """
    a = np.asarray(list(scores_a), dtype=np.float64)
    b = np.asarray(list(scores_b), dtype=np.float64)
    if a.shape != b.shape or a.size < 2:
        raise ConfigError("paired_bootstrap needs equal-length lists (>= 2)")
    differences = a - b
    observed = float(differences.mean())
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, a.size, size=(n_resamples, a.size))
    resampled_means = differences[indices].mean(axis=1)
    if observed >= 0:
        flips = float((resampled_means <= 0).mean())
    else:
        flips = float((resampled_means >= 0).mean())
    p_value = min(1.0, 2.0 * flips)
    return ComparisonResult(
        mean_difference=observed,
        p_value=p_value,
        significant=bool(p_value < alpha),
        method="paired-bootstrap",
    )

"""Held-out perplexity of a topic model's predictive word distribution.

Not one of the paper's headline metrics (the paper's whole point is that
likelihood alone misaligns with interpretability) but indispensable for
sanity-checking that models actually fit the data, and used by the
test-suite's integration tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def heldout_perplexity(
    doc_topic: np.ndarray, topic_word: np.ndarray, bow: np.ndarray
) -> float:
    """Perplexity ``exp(-sum log p(w) / total_tokens)`` on held-out counts.

    Parameters
    ----------
    doc_topic:
        ``(docs, K)`` rows on the simplex.
    topic_word:
        ``(K, vocab)`` rows on the simplex.
    bow:
        ``(docs, vocab)`` held-out counts.
    """
    doc_topic = np.asarray(doc_topic, dtype=np.float64)
    topic_word = np.asarray(topic_word, dtype=np.float64)
    bow = np.asarray(bow, dtype=np.float64)
    if doc_topic.shape[0] != bow.shape[0]:
        raise ShapeError("doc_topic and bow disagree on document count")
    if doc_topic.shape[1] != topic_word.shape[0]:
        raise ShapeError("doc_topic and topic_word disagree on topic count")
    if topic_word.shape[1] != bow.shape[1]:
        raise ShapeError("topic_word and bow disagree on vocabulary size")

    word_probs = doc_topic @ topic_word
    log_probs = np.log(np.maximum(word_probs, 1e-300))
    total_log_likelihood = float((bow * log_probs).sum())
    total_tokens = float(bow.sum())
    if total_tokens <= 0:
        raise ShapeError("held-out corpus contains no tokens")
    return float(np.exp(-total_log_likelihood / total_tokens))

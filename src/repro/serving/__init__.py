"""Resilient online inference: micro-batching, breaking, hot-reload.

The serving layer turns a fitted topic model into an online service that
keeps answering under faults.  See ``docs/SERVING.md`` for the full
design; the pieces are:

- :mod:`repro.serving.config` — :class:`ServingConfig` and the
  ``REPRO_SERVE_*`` environment knobs (re-read on every re-init);
- :mod:`repro.serving.service` — :class:`InferenceService`, the
  asyncio micro-batching front door with deadlines, load shedding,
  retries and degraded answers;
- :mod:`repro.serving.breaker` — :class:`CircuitBreaker`, the
  consecutive-model-fault three-state machine;
- :mod:`repro.serving.registry` — :class:`ModelRegistry`, checkpoint
  hot-loading with validation and last-good rollback;
- :mod:`repro.serving.loadgen` — the deterministic load generator the
  chaos suite, CLI and benchmark share.
"""

from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving.config import (
    SERVE_ENV_PREFIX,
    ServingConfig,
    get_serving_config,
    reinit_serving_from_env,
    serving_config,
    serving_config_from_env,
    set_serving_config,
)
from repro.serving.loadgen import LoadProfile, LoadReport, build_requests, run_load
from repro.serving.registry import ModelRegistry
from repro.serving.service import (
    DEGRADED,
    ERROR,
    KINDS,
    OK,
    SHED,
    STATUSES,
    TIMEOUT,
    InferenceService,
    Request,
    Response,
)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "SERVE_ENV_PREFIX",
    "ServingConfig",
    "get_serving_config",
    "reinit_serving_from_env",
    "serving_config",
    "serving_config_from_env",
    "set_serving_config",
    "LoadProfile",
    "LoadReport",
    "build_requests",
    "run_load",
    "ModelRegistry",
    "DEGRADED",
    "ERROR",
    "KINDS",
    "OK",
    "SHED",
    "STATUSES",
    "TIMEOUT",
    "InferenceService",
    "Request",
    "Response",
]

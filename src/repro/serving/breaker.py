"""Circuit breaker: stop asking a faulting model for answers.

The breaker watches *model faults* — micro-batches whose outputs failed
the finiteness predicate (:meth:`repro.training.resilience.TrainingGuard.
check_array`).  Transient infrastructure failures (a worker dying
mid-batch) are retried by the service and never reach the breaker; a
model emitting NaN/Inf will keep emitting it no matter how often the
batch is retried, so after ``threshold`` consecutive faults the breaker
**opens** and the service switches to its degraded path instead of
burning forward passes on garbage.

States follow the classic three-state machine:

``closed``
    Healthy: batches run against the model; any success resets the
    consecutive-fault counter.
``open``
    Tripped: every batch takes the degraded path until
    ``cooldown_seconds`` have passed.
``half_open``
    Cooldown elapsed: exactly one probe batch is let through.  A clean
    probe closes the breaker; a faulty one re-opens it (and restarts the
    cooldown).

The clock is injectable so tests (and the deterministic chaos suite) can
drive state transitions without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ConfigError

#: State names (also the values of :attr:`CircuitBreaker.state`).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-fault circuit breaker with a cooldown-then-probe cycle.

    Parameters
    ----------
    threshold:
        Consecutive model faults that trip the breaker open.
    cooldown_seconds:
        How long the breaker stays open before allowing one probe.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_seconds: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ConfigError("breaker threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ConfigError("breaker cooldown must be >= 0")
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._state = CLOSED
        self._consecutive_faults = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.trips = 0
        self.probes = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing ``open`` → ``half_open`` on cooldown."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = HALF_OPEN
        return self._state

    def allow_request(self) -> bool:
        """Whether the next batch may run against the model.

        ``closed`` always allows; ``half_open`` allows exactly one probe
        (marking it as taken); ``open`` blocks.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN:
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            self.probes += 1
            return True
        return False

    # ------------------------------------------------------------------
    def record_fault(self) -> bool:
        """Register one model fault; returns True when the breaker trips.

        A fault during a half-open probe re-opens immediately (the model
        is still broken — no need to accumulate ``threshold`` failures
        again).
        """
        if self._state == HALF_OPEN:
            self._probe_in_flight = False
            self._trip()
            return True
        self._consecutive_faults += 1
        if self._state == CLOSED and self._consecutive_faults >= self.threshold:
            self._trip()
            return True
        return False

    def abort_probe(self) -> None:
        """Release a claimed half-open probe without rendering a verdict.

        Used when the probe batch never produced model output to judge —
        e.g. it exhausted its retries on an infrastructure failure.  That
        says nothing about model health, so the breaker stays half-open
        and the next batch may claim a fresh probe instead of the slot
        leaking forever.
        """
        self._probe_in_flight = False

    def record_success(self) -> None:
        """Register one clean batch: closes a probe, resets the counter."""
        self._consecutive_faults = 0
        self._probe_in_flight = False
        self._state = CLOSED

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_faults = 0
        self.trips += 1

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"CircuitBreaker(state={self.state!r}, trips={self.trips}, "
            f"threshold={self.threshold})"
        )

"""The micro-batching inference front door and its resilience envelope.

:class:`InferenceService` is an asyncio service that turns many small
concurrent requests into few large model calls:

* **Micro-batching** — the worker takes the first queued request, then
  coalesces more for up to ``max_wait_ms`` (or until ``max_batch_size``),
  so concurrent ``transform`` requests share one forward pass through the
  PR-6 sparse/``no_grad`` eval path instead of paying per-request model
  overhead.
* **Admission control** — a bounded queue with a shed watermark: when the
  backlog crosses ``shed_watermark × queue_capacity`` (or the hard
  capacity), new requests are *shed* immediately with a well-formed
  response instead of queueing into certain deadline death.
* **Deadlines** — every request carries one; a request that expires in
  the queue, or whose batch finishes too late, receives a ``timeout``
  response.
* **Retries** — a batch that fails with an exception (a worker dying
  mid-batch, an injected crash) is retried with exponential backoff up to
  ``max_retries`` times before its requests get ``error`` responses.
* **Circuit breaking** — batch outputs are checked with the PR-2 guard
  predicate (:meth:`~repro.training.resilience.TrainingGuard.check_array`);
  NaN/Inf outputs are *model* faults, not transient ones: they are never
  retried, and ``breaker_threshold`` consecutive faults trip the
  :class:`~repro.serving.breaker.CircuitBreaker` open.  While open, every
  request is served from the degraded path (uniform θ for ``transform``,
  best-effort parameter reads otherwise) until a cooldown probe passes.

Every admitted request receives **exactly one** response — ``ok``,
``degraded``, ``timeout``, ``shed`` or ``error`` — no matter which
combination of faults the chaos harness injects; that invariant is the
acceptance bar of the chaos suite (``tests/serving/test_service.py``).

Request kinds
-------------
``transform``
    Payload: one document as a sequence of token ids (indexed against
    the service vocabulary).  Response value: the ``(K,)`` θ row.
``top_words``
    Payload: ``n`` (int, default 10).  Response value: top-``n`` word
    strings per topic.
``coherence``
    Payload ignored; requires the service to be built with an NPMI
    matrix.  Response value: per-topic NPMI coherence scores.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, TYPE_CHECKING

import numpy as np

from repro.data.corpus import Corpus
from repro.errors import ServingError
from repro.serving.breaker import CLOSED, CircuitBreaker
from repro.serving.config import ServingConfig, get_serving_config
from repro.serving.registry import ModelRegistry
from repro.training.resilience import TrainingGuard

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.data.vocabulary import Vocabulary
    from repro.metrics.npmi import NpmiMatrix
    from repro.models.base import NeuralTopicModel
    from repro.telemetry.core import MetricsRegistry
    from repro.training.faults import FaultInjector

# Request kinds.
TRANSFORM = "transform"
TOP_WORDS = "top_words"
COHERENCE = "coherence"
KINDS = (TRANSFORM, TOP_WORDS, COHERENCE)

# Response statuses.  Every submitted request resolves to exactly one.
OK = "ok"
DEGRADED = "degraded"
TIMEOUT = "timeout"
SHED = "shed"
ERROR = "error"
STATUSES = (OK, DEGRADED, TIMEOUT, SHED, ERROR)


@dataclass(frozen=True)
class Request:
    """One client request: what to compute and how long it may take."""

    kind: str
    payload: Any = None
    #: Per-request deadline override (None → the config default).
    deadline_ms: float | None = None


@dataclass
class Response:
    """The service's answer; always well-formed, never an exception.

    ``status`` is one of :data:`STATUSES`; ``value`` is populated for
    ``ok`` and ``degraded``, ``error`` carries the failure text
    otherwise.  ``model_version`` names the registry version that
    answered (0 when no model ran).
    """

    status: str
    value: Any = None
    error: str | None = None
    latency_ms: float = 0.0
    batch_size: int = 0
    model_version: int = 0

    @property
    def ok(self) -> bool:
        """True for a full-quality answer."""
        return self.status == OK


@dataclass
class _Pending:
    """A queued request plus its resolution machinery."""

    request: Request
    future: asyncio.Future
    enqueued_at: float
    deadline_at: float
    done: bool = field(default=False, compare=False)


class InferenceService:
    """Micro-batching front door over a :class:`ModelRegistry`.

    Parameters
    ----------
    registry:
        The hot-loadable model registry (or construct one implicitly by
        passing a fitted model to :meth:`for_model`).
    vocabulary:
        Vocabulary ``transform`` payloads are indexed against (must be
        the model's own).
    config:
        Limits and windows; defaults to the active
        :func:`~repro.serving.config.get_serving_config`.
    metrics:
        Optional :class:`~repro.telemetry.core.MetricsRegistry`; request
        counters, queue-depth samples and latencies flow into it under
        ``serving/*`` keys.
    faults:
        Optional chaos injector
        (:meth:`~repro.training.faults.FaultInjector.on_serve_batch`
        fires once per batch attempt).
    npmi_matrix:
        Optional NPMI matrix enabling ``coherence`` requests.
    clock:
        Monotonic time source, injectable for deterministic tests.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        vocabulary: "Vocabulary",
        *,
        config: ServingConfig | None = None,
        metrics: "MetricsRegistry | None" = None,
        faults: "FaultInjector | None" = None,
        npmi_matrix: "NpmiMatrix | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.registry = registry
        self._vocabulary = vocabulary
        self.config = config or get_serving_config()
        self.metrics = metrics
        self._faults = faults
        self._npmi = npmi_matrix
        self._clock = clock
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_seconds=self.config.breaker_cooldown_ms / 1000.0,
            clock=clock,
        )
        self.counts: dict[str, int] = {status: 0 for status in STATUSES}
        self.counts.update(
            requests=0,
            batches=0,
            retries=0,
            batch_failures=0,
            model_faults=0,
            breaker_trips=0,
            invalid=0,
        )
        self.latencies_s: list[float] = []
        self.max_queue_depth = 0
        self._queue: asyncio.Queue | None = None
        self._worker: asyncio.Task | None = None
        self._running = False

    @classmethod
    def for_model(
        cls, model: "NeuralTopicModel", vocabulary: "Vocabulary", **kwargs
    ) -> "InferenceService":
        """Convenience: wrap a fitted model in a single-entry registry."""
        return cls(ModelRegistry(model), vocabulary, **kwargs)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the bounded queue and spawn the batching worker."""
        if self._running:
            raise ServingError("service is already running")
        self._queue = asyncio.Queue(maxsize=self.config.queue_capacity)
        self._running = True
        self._worker = asyncio.create_task(self._run())

    async def stop(self) -> None:
        """Drain every queued request (each gets its response), then stop."""
        if not self._running:
            return
        self._running = False
        # The sentinel lands behind every already-admitted request (FIFO),
        # so draining completes them all before the worker exits.
        await self._queue.put(None)
        await self._worker
        self._worker = None

    # ------------------------------------------------------------------
    # front door
    # ------------------------------------------------------------------
    async def submit(
        self,
        kind: str,
        payload: Any = None,
        deadline_ms: float | None = None,
    ) -> Response:
        """Submit one request and await its (always well-formed) response."""
        if not self._running:
            raise ServingError(
                "service is not running; await start() before submitting"
            )
        self._count("requests")
        reason = self._invalid_reason(kind, payload)
        if reason is not None:
            self._count("invalid")
            return self._record(Response(status=ERROR, error=reason))
        if kind == TOP_WORDS and payload is None:
            payload = 10
        depth = self._queue.qsize()
        self.max_queue_depth = max(self.max_queue_depth, depth)
        if self.metrics is not None:
            self.metrics.record_seconds("serving/queue_depth", depth, absolute=True)
        if depth >= self.config.shed_depth:
            return self._record(
                Response(
                    status=SHED,
                    error=f"queue depth {depth} over shed watermark "
                    f"{self.config.shed_depth}",
                )
            )
        now = self._clock()
        budget_ms = self.config.deadline_ms if deadline_ms is None else deadline_ms
        pending = _Pending(
            request=Request(kind=kind, payload=payload, deadline_ms=deadline_ms),
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=now,
            deadline_at=now + budget_ms / 1000.0,
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            return self._record(
                Response(
                    status=SHED,
                    error=f"queue at hard capacity {self.config.queue_capacity}",
                )
            )
        return await pending.future

    async def submit_request(self, request: Request) -> Response:
        """Submit a :class:`Request` object (see :meth:`submit`)."""
        return await self.submit(
            request.kind, request.payload, deadline_ms=request.deadline_ms
        )

    def serve(
        self, requests: Sequence[Request], concurrency: int | None = None
    ) -> list[Response]:
        """Synchronous convenience: run every request through one loop.

        Starts the service, submits all requests concurrently (bounded by
        ``concurrency`` in-flight), drains, stops, and returns responses
        in request order.  For paced open-loop traffic use
        :func:`repro.serving.loadgen.run_load` instead.
        """

        async def _main() -> list[Response]:
            await self.start()
            limit = asyncio.Semaphore(concurrency or max(1, len(requests)))

            async def one(request: Request) -> Response:
                async with limit:
                    return await self.submit_request(request)

            try:
                return list(await asyncio.gather(*(one(r) for r in requests)))
            finally:
                await self.stop()

        return asyncio.run(_main())

    # ------------------------------------------------------------------
    # batching worker
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        assert self._queue is not None
        stopping = False
        while not stopping:
            item = await self._queue.get()
            if item is None:
                if self._running:
                    continue
                break
            batch = [item]
            coalesce_until = self._clock() + self.config.max_wait_ms / 1000.0
            while len(batch) < self.config.max_batch_size:
                remaining = coalesce_until - self._clock()
                if remaining <= 0:
                    break
                try:
                    extra = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if extra is None:
                    stopping = True
                    break
                batch.append(extra)
            groups: dict[str, list[_Pending]] = {}
            for pending in batch:
                groups.setdefault(pending.request.kind, []).append(pending)
            for kind, group in groups.items():
                try:
                    await self._execute(kind, group)
                except Exception as exc:
                    # Catch-all so nothing escaping the resilience envelope
                    # (a degraded-path model call, a metrics sink) can kill
                    # the worker and strand every queued future unresolved.
                    message = (
                        f"unexpected serving failure: "
                        f"{type(exc).__name__}: {exc}"
                    )
                    for pending in group:
                        failure = Response(
                            status=ERROR, error=message, batch_size=len(group)
                        )
                        try:
                            self._finish(pending, failure)
                        except Exception:
                            if not pending.future.done():
                                pending.future.set_result(failure)
            if stopping and self._running:
                # A stray sentinel (stop() raced a restart) — keep serving.
                stopping = False

    async def _execute(self, kind: str, batch: list[_Pending]) -> None:
        """Run one same-kind micro-batch through the resilience envelope."""
        self._count("batches")
        now = self._clock()
        live = []
        for pending in batch:
            if pending.deadline_at <= now:
                self._finish(
                    pending,
                    Response(status=TIMEOUT, error="deadline expired in queue"),
                )
            else:
                live.append(pending)
        if not live:
            return
        size = len(live)
        if kind == TRANSFORM:
            allowed = self.breaker.allow_request()
        else:
            # Parameter reads never exercise the forward pass, so they
            # must never claim (and potentially leak) the half-open
            # probe — they just follow the breaker state, degrading
            # whenever it is not closed and leaving the probe slot for a
            # TRANSFORM batch that can actually render a verdict.
            allowed = self.breaker.state == CLOSED
        if not allowed:
            for pending in live:
                self._finish(pending, self._degraded(kind, pending, size))
            return

        attempt = 0
        backoff_s = self.config.retry_backoff_ms / 1000.0
        payloads = [p.request.payload for p in live]
        while True:
            fault = self._faults.on_serve_batch() if self._faults else None
            if fault is not None and fault.latency_seconds > 0:
                await asyncio.sleep(fault.latency_seconds)
            try:
                if fault is not None and fault.worker_death:
                    from repro.training.faults import InjectedFault

                    raise InjectedFault("injected worker death mid-batch")
                values, version = self._compute(kind, payloads)
            except Exception as exc:  # transient batch failure → retry
                self._count("batch_failures")
                attempt += 1
                if attempt > self.config.max_retries:
                    if kind == TRANSFORM:
                        # An infrastructure failure renders no verdict on
                        # model health: release any half-open probe this
                        # batch claimed so the slot cannot leak.
                        self.breaker.abort_probe()
                    message = f"{type(exc).__name__}: {exc}"
                    for pending in live:
                        self._finish(
                            pending,
                            Response(status=ERROR, error=message, batch_size=size),
                        )
                    return
                self._count("retries")
                await asyncio.sleep(backoff_s)
                backoff_s *= self.config.retry_backoff_factor
                continue
            if fault is not None and fault.nan_output and kind == TRANSFORM:
                values = [np.full_like(np.asarray(v, dtype=float), np.nan) for v in values]
            if kind == TRANSFORM and not all(
                TrainingGuard.check_array(v) for v in values
            ):
                # A model fault, not a transient one: retrying a NaN model
                # reproduces the NaN.  Count it against the breaker and
                # serve this batch degraded.
                self._count("model_faults")
                if self.breaker.record_fault():
                    self._count("breaker_trips")
                for pending in live:
                    self._finish(pending, self._degraded(kind, pending, size))
                return
            # Only forward-pass batches exercise the model, so only they
            # feed the breaker: a top_words parameter read succeeding says
            # nothing about whether the forward pass still emits NaN.
            if kind == TRANSFORM:
                self.breaker.record_success()
            for pending, value in zip(live, values):
                self._finish(
                    pending,
                    Response(
                        status=OK,
                        value=value,
                        batch_size=size,
                        model_version=version,
                    ),
                )
            return

    # ------------------------------------------------------------------
    # model calls
    # ------------------------------------------------------------------
    def _compute(self, kind: str, payloads: list) -> tuple[list, int]:
        """One model call answering a whole same-kind micro-batch."""
        model, version = self.registry.snapshot()
        if kind == TRANSFORM:
            corpus = Corpus(payloads, self._vocabulary)
            theta = model.transform(corpus)
            return [theta[i] for i in range(len(payloads))], version
        if kind == TOP_WORDS:
            by_n: dict[int, list[list[str]]] = {}
            for n in payloads:
                if n not in by_n:
                    by_n[n] = model.top_words(self._vocabulary, n)
            return [by_n[n] for n in payloads], version
        # COHERENCE (kind already validated at submit)
        from repro.metrics.coherence import topic_npmi_scores

        scores = topic_npmi_scores(model.topic_word_matrix(), self._npmi)
        return [scores] * len(payloads), version

    def _degraded(self, kind: str, pending: _Pending, size: int) -> Response:
        """The answer served while the breaker is open.

        ``transform`` degrades to the uninformative uniform θ (an honest
        "no usable model right now"); ``top_words``/``coherence`` are
        pure parameter reads and degrade to a best-effort read of the
        current (last-good) parameters.
        """
        model, version = self.registry.snapshot()
        num_topics = model.config.num_topics
        if kind == TRANSFORM:
            value: Any = np.full(num_topics, 1.0 / num_topics)
        elif kind == TOP_WORDS:
            value = model.top_words(self._vocabulary, pending.request.payload)
        else:
            value = np.zeros(num_topics)
        return Response(
            status=DEGRADED,
            value=value,
            error="circuit breaker open: serving degraded answers",
            batch_size=size,
            model_version=version,
        )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _invalid_reason(self, kind: str, payload: Any) -> str | None:
        """Validate a request before admission; None when acceptable."""
        if kind not in KINDS:
            return f"unknown request kind {kind!r} (expected one of {KINDS})"
        if kind == TRANSFORM:
            tokens = np.asarray(payload if payload is not None else [])
            if tokens.ndim != 1 or tokens.size == 0:
                return "transform payload must be a non-empty sequence of token ids"
            if not np.issubdtype(tokens.dtype, np.integer):
                return "transform payload must contain integer token ids"
            vocab_size = len(self._vocabulary)
            if tokens.min() < 0 or tokens.max() >= vocab_size:
                return (
                    f"transform payload has token ids outside [0, {vocab_size})"
                )
        elif kind == TOP_WORDS:
            if payload is not None and (not isinstance(payload, int) or payload < 1):
                return "top_words payload must be a positive int (or None)"
        elif kind == COHERENCE and self._npmi is None:
            return "coherence requests need a service built with npmi_matrix="
        return None

    def _finish(self, pending: _Pending, response: Response) -> None:
        """Resolve one request exactly once, applying the deadline check."""
        if pending.done:
            return
        pending.done = True
        now = self._clock()
        if response.status in (OK, DEGRADED) and now > pending.deadline_at:
            response = Response(
                status=TIMEOUT,
                error="deadline expired during batch execution",
                batch_size=response.batch_size,
                model_version=response.model_version,
            )
        response.latency_ms = (now - pending.enqueued_at) * 1000.0
        self._record(response, latency_s=now - pending.enqueued_at)
        if not pending.future.done():
            pending.future.set_result(response)

    def _record(self, response: Response, latency_s: float | None = None) -> Response:
        self._count(response.status)
        if latency_s is not None:
            self.latencies_s.append(latency_s)
            if self.metrics is not None:
                self.metrics.record_seconds(
                    "serving/latency", latency_s, absolute=True
                )
        return response

    def _count(self, name: str) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        if self.metrics is not None:
            self.metrics.count(f"serving/{name}", absolute=True)

    def stats(self) -> dict:
        """Scalar summary: counts, latency percentiles, breaker/registry."""
        latencies = np.asarray(self.latencies_s, dtype=float)
        percentiles = (
            np.percentile(latencies, (50, 95, 99))
            if latencies.size
            else np.zeros(3)
        )
        responded = sum(self.counts[status] for status in STATUSES)
        return {
            **{f"count_{k}": v for k, v in self.counts.items()},
            "responded": responded,
            "unanswered": self.counts["requests"] - responded,
            "p50_seconds": float(percentiles[0]),
            "p95_seconds": float(percentiles[1]),
            "p99_seconds": float(percentiles[2]),
            "max_queue_depth": self.max_queue_depth,
            "breaker_state": self.breaker.state,
            "breaker_trips": self.breaker.trips,
            "breaker_probes": self.breaker.probes,
            "model_version": self.registry.version,
            "model_reloads": self.registry.reloads,
            "model_rollbacks": self.registry.rollbacks,
        }

"""Hot-loadable model registry with last-good rollback.

The serving layer never trains; it *swaps* models that training produced.
:class:`ModelRegistry` owns the model currently answering requests and
hot-loads format-v2 checkpoints behind the service's back:

1. the candidate file is read through :func:`repro.io.load_checkpoint`,
   whose content-checksum validation rejects truncated/corrupt archives
   with a :class:`~repro.io.CheckpointError` (never garbage parameters);
2. the candidate's parameters are checked for finiteness with the PR-2
   guard predicate (:meth:`~repro.training.resilience.TrainingGuard.
   check_array`) — a checkpoint full of NaN passes the checksum (it is
   exactly what was saved) but must never reach traffic;
3. optionally, a *probe corpus* is transformed and the resulting θ rows
   are checked the same way, catching weights that are finite but
   explode through the forward pass.

Only after every validation passes is the model reference swapped (under
a lock, atomically from the service's point of view).  Any failure
leaves the previous model serving — that **is** the rollback: the
last-good model never stops answering, and ``last_good_path`` still
names a file that is known to load.  The chaos harness exercises the
whole path by corrupting checkpoint files just before a load
(:meth:`repro.training.faults.FaultInjector.corrupt_checkpoint`).
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.errors import ReproError, ServingError
from repro.io import load_checkpoint
from repro.training.resilience import TrainingGuard

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.data.corpus import Corpus
    from repro.models.base import NeuralTopicModel
    from repro.training.faults import FaultInjector


class ModelRegistry:
    """The model currently serving traffic, plus hot-reload with rollback.

    Parameters
    ----------
    model:
        The initial (fitted) model.  It becomes version 1.
    factory:
        Zero-argument callable building a *fresh, architecture-compatible*
        model for checkpoint loads.  Without it :meth:`load` raises
        :class:`~repro.errors.ServingError` — there is nothing to load
        parameters into.
    probe_corpus:
        Optional tiny corpus transformed as a validation probe after each
        load; non-finite θ rows reject the candidate.
    faults:
        Optional chaos injector; its
        :meth:`~repro.training.faults.FaultInjector.corrupt_checkpoint`
        hook runs against the file just before every load.
    """

    def __init__(
        self,
        model: "NeuralTopicModel",
        *,
        factory: "Callable[[], NeuralTopicModel] | None" = None,
        probe_corpus: "Corpus | None" = None,
        faults: "FaultInjector | None" = None,
    ):
        self._lock = threading.Lock()
        self._model = model
        self._factory = factory
        self._probe_corpus = probe_corpus
        self._faults = faults
        self.version = 1
        self.last_good_path: Path | None = None
        self.reloads = 0
        self.rollbacks = 0
        self.last_error: str | None = None

    # ------------------------------------------------------------------
    @property
    def model(self) -> "NeuralTopicModel":
        """The model currently answering requests (always usable)."""
        with self._lock:
            return self._model

    def snapshot(self) -> "tuple[NeuralTopicModel, int]":
        """The ``(model, version)`` pair under one lock acquisition.

        Reading :attr:`model` and :attr:`version` separately can straddle
        a concurrent hot-load and mislabel which model actually answered;
        callers that report a version alongside an answer use this.
        """
        with self._lock:
            return self._model, self.version

    def load(self, path: str | Path) -> bool:
        """Hot-load a checkpoint; returns True when it went live.

        On any load or validation failure the candidate is discarded, the
        previous model keeps serving (``rollbacks`` is incremented and
        ``last_error`` records why), and False is returned — a bad
        checkpoint must never take the service down, let alone fail a
        request.
        """
        if self._factory is None:
            raise ServingError(
                "this registry has no model factory; construct it with "
                "factory=... to enable checkpoint hot-loading"
            )
        path = Path(path)
        if self._faults is not None:
            self._faults.corrupt_checkpoint(path)
        candidate = self._factory()
        try:
            load_checkpoint(candidate, path)
            self._validate(candidate, path)
        except ReproError as exc:
            with self._lock:
                self.rollbacks += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
            return False
        candidate._fitted = True
        candidate.eval()
        with self._lock:
            self._model = candidate
            self.version += 1
            self.last_good_path = path
            self.reloads += 1
            self.last_error = None
        return True

    def reload_last_good(self) -> bool:
        """Re-load the last checkpoint that passed validation.

        Returns False when no checkpoint has ever gone live (the initial
        in-memory model keeps serving either way).
        """
        if self.last_good_path is None:
            return False
        return self.load(self.last_good_path)

    # ------------------------------------------------------------------
    def _validate(self, candidate: "NeuralTopicModel", path: Path) -> None:
        """Reject candidates whose parameters or probe outputs are not finite."""
        for name, value in candidate.state_dict().items():
            if not TrainingGuard.check_array(value):
                raise ServingError(
                    f"{path}: parameter {name!r} contains non-finite values; "
                    "refusing to serve from this checkpoint"
                )
        if self._probe_corpus is not None:
            candidate._fitted = True
            theta = candidate.transform(self._probe_corpus)
            if not TrainingGuard.check_array(theta):
                raise ServingError(
                    f"{path}: validation probe produced non-finite θ; "
                    "refusing to serve from this checkpoint"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"ModelRegistry(version={self.version}, reloads={self.reloads}, "
            f"rollbacks={self.rollbacks})"
        )

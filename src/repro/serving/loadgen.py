"""Deterministic load generator for the inference service.

The chaos suite, the ``repro serve`` CLI and ``benchmarks/bench_serving``
all need the same thing: a *reproducible* stream of mixed requests driven
against an :class:`~repro.serving.service.InferenceService`, with the
resulting latencies folded into the telemetry report pipeline.  Two
pieces deliver that:

* :func:`build_requests` — seeds a ``numpy`` generator and samples
  ``num_requests`` requests from a corpus according to the
  :class:`LoadProfile` mix (the same seed always yields the same request
  stream, so chaos runs are bit-for-bit repeatable);
* :func:`run_load` — submits them with bounded concurrency, optionally
  hot-reloading a checkpoint every ``reload_every`` completions (the
  live-reload-under-traffic scenario), and returns a :class:`LoadReport`
  whose :meth:`~LoadReport.record_into` lands the percentiles under the
  ``SERVING_*`` registry keys that
  :func:`repro.telemetry.report.build_report` rolls into gated totals.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence, TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError
from repro.serving.service import (
    COHERENCE,
    InferenceService,
    Request,
    Response,
    STATUSES,
    TOP_WORDS,
    TRANSFORM,
)
from repro.telemetry.report import (
    SERVING_P50_KEY,
    SERVING_P95_KEY,
    SERVING_P99_KEY,
    SERVING_REQUESTS_KEY,
    SERVING_WALL_KEY,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.data.corpus import Corpus
    from repro.telemetry.core import MetricsRegistry


@dataclass(frozen=True)
class LoadProfile:
    """Shape of a load run: volume, concurrency and the request mix."""

    num_requests: int = 200
    concurrency: int = 32
    #: Relative weights of the three request kinds (normalised internally).
    transform_weight: float = 0.8
    top_words_weight: float = 0.15
    coherence_weight: float = 0.05
    #: Per-request deadline override (None → service config default).
    deadline_ms: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ConfigError("num_requests must be >= 1")
        if self.concurrency < 1:
            raise ConfigError("concurrency must be >= 1")
        weights = (
            self.transform_weight,
            self.top_words_weight,
            self.coherence_weight,
        )
        if min(weights) < 0 or sum(weights) <= 0:
            raise ConfigError(
                "request-mix weights must be >= 0 and not all zero"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigError("deadline_ms must be positive (or None)")


def build_requests(corpus: "Corpus", profile: LoadProfile) -> list[Request]:
    """Sample a reproducible request stream from a corpus.

    ``transform`` requests carry real documents drawn from ``corpus``;
    ``top_words`` requests draw ``n`` from [5, 15].  The stream depends
    only on ``profile`` and the corpus, never on wall-clock or global
    random state.
    """
    rng = np.random.default_rng(profile.seed)
    weights = np.asarray(
        [
            profile.transform_weight,
            profile.top_words_weight,
            profile.coherence_weight,
        ],
        dtype=float,
    )
    kinds = rng.choice(
        [TRANSFORM, TOP_WORDS, COHERENCE],
        size=profile.num_requests,
        p=weights / weights.sum(),
    )
    requests: list[Request] = []
    for kind in kinds:
        if kind == TRANSFORM:
            doc = corpus.documents[int(rng.integers(len(corpus)))]
            payload: object = [int(t) for t in doc]
        elif kind == TOP_WORDS:
            payload = int(rng.integers(5, 16))
        else:
            payload = None
        requests.append(
            Request(kind=str(kind), payload=payload, deadline_ms=profile.deadline_ms)
        )
    return requests


@dataclass
class LoadReport:
    """Outcome of one load run: responses, latencies, service stats."""

    responses: list[Response]
    wall_seconds: float
    stats: dict = field(default_factory=dict)

    @property
    def status_counts(self) -> dict[str, int]:
        """How many responses landed in each status bucket."""
        counts = {status: 0 for status in STATUSES}
        for response in self.responses:
            counts[response.status] = counts.get(response.status, 0) + 1
        return counts

    @property
    def unanswered(self) -> int:
        """Requests that never got a response — must always be zero."""
        return int(self.stats.get("unanswered", 0))

    def percentile_seconds(self, q: float) -> float:
        """Latency percentile (seconds) over every response."""
        latencies = [r.latency_ms / 1000.0 for r in self.responses]
        if not latencies:
            return 0.0
        return float(np.percentile(np.asarray(latencies), q))

    @property
    def requests_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.responses) / self.wall_seconds

    def record_into(self, registry: "MetricsRegistry") -> None:
        """Land the run's scalars under the ``SERVING_*`` registry keys."""
        registry.record_seconds(SERVING_WALL_KEY, self.wall_seconds, absolute=True)
        registry.record_seconds(
            SERVING_P50_KEY, self.percentile_seconds(50), absolute=True
        )
        registry.record_seconds(
            SERVING_P95_KEY, self.percentile_seconds(95), absolute=True
        )
        registry.record_seconds(
            SERVING_P99_KEY, self.percentile_seconds(99), absolute=True
        )
        registry.count(
            SERVING_REQUESTS_KEY, len(self.responses), absolute=True
        )

    def summary(self) -> dict:
        """JSON-friendly scalar summary (used by the CLI and the bench)."""
        return {
            "requests": len(self.responses),
            "wall_seconds": self.wall_seconds,
            "requests_per_sec": self.requests_per_sec,
            "p50_seconds": self.percentile_seconds(50),
            "p95_seconds": self.percentile_seconds(95),
            "p99_seconds": self.percentile_seconds(99),
            "status_counts": self.status_counts,
            **{f"service_{k}": v for k, v in self.stats.items()},
        }


def run_load(
    service: InferenceService,
    requests: Sequence[Request],
    *,
    concurrency: int = 32,
    reload_every: int = 0,
    reload_path: str | Path | None = None,
    reload_hook: Callable[[], object] | None = None,
) -> LoadReport:
    """Drive a request stream through the service; returns a LoadReport.

    Starts the service, submits every request with at most
    ``concurrency`` in flight, stops (draining the queue — every admitted
    request resolves), and collects responses in request order.  When
    ``reload_every`` > 0, after every ``reload_every`` completed requests
    the registry hot-loads ``reload_path`` — reload-under-traffic, the
    scenario the rollback path exists for.  ``reload_hook`` replaces the
    plain load with a caller-provided publication step (e.g. re-save a
    fresh checkpoint, then load it, as a live trainer would).
    """

    async def _main() -> list[Response]:
        await service.start()
        limit = asyncio.Semaphore(concurrency)
        reload_lock = asyncio.Lock()
        completed = 0

        async def one(request: Request) -> Response:
            nonlocal completed
            async with limit:
                response = await service.submit_request(request)
            completed += 1
            if reload_every > 0 and completed % reload_every == 0:
                # The reload reads, checksums and probe-validates a
                # checkpoint — blocking work that must not freeze the
                # batching worker (and burn in-flight deadlines), so it
                # runs in a thread while serving continues.  Reloads
                # still serialize with each other: concurrent publishes
                # of the same checkpoint path would race.
                async with reload_lock:
                    if reload_hook is not None:
                        await asyncio.to_thread(reload_hook)
                    elif reload_path is not None:
                        await asyncio.to_thread(
                            service.registry.load, reload_path
                        )
            return response

        try:
            return list(
                await asyncio.gather(*(one(r) for r in requests))
            )
        finally:
            await service.stop()

    started = time.perf_counter()
    responses = asyncio.run(_main())
    wall = time.perf_counter() - started
    return LoadReport(
        responses=responses, wall_seconds=wall, stats=service.stats()
    )

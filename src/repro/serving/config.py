"""Serving configuration: coalescing windows, deadlines, resilience knobs.

One frozen :class:`ServingConfig` travels through the whole serving
stack — the micro-batching front door, admission control, the retry
policy and the circuit breaker all read their limits from it.  Like the
dtype and sparse policies (:mod:`repro.tensor.dtypes`) it is a
process-wide default with a thread-local override, settable four ways:

- ``REPRO_SERVE_*`` environment variables, read at import time and
  **re-read on every** :func:`reinit_serving_from_env` call — the knobs
  never latch stale values (the same contract the PR-6 fix gave
  ``REPRO_SPARSE``: re-initialising after a variable was *removed* falls
  back to the built-in default, exactly as a fresh import would);
- :func:`set_serving_config` for a persistent switch;
- the scoped :func:`serving_config` context manager;
- explicit ``ServingConfig(...)`` instances passed straight to the
  service (tests do this).

Environment variables (all optional)::

    REPRO_SERVE_MAX_BATCH_SIZE      coalesce at most this many requests
    REPRO_SERVE_MAX_WAIT_MS         coalescing window per micro-batch
    REPRO_SERVE_QUEUE_CAPACITY      bounded queue size (hard limit)
    REPRO_SERVE_SHED_WATERMARK      shed above this fraction of capacity
    REPRO_SERVE_DEADLINE_MS         default per-request deadline
    REPRO_SERVE_MAX_RETRIES         transient batch-failure retries
    REPRO_SERVE_RETRY_BACKOFF_MS    first retry backoff
    REPRO_SERVE_RETRY_BACKOFF_FACTOR exponential backoff multiplier
    REPRO_SERVE_BREAKER_THRESHOLD   consecutive model faults to trip
    REPRO_SERVE_BREAKER_COOLDOWN_MS open duration before a half-open probe
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
from typing import Iterator

from repro.errors import ConfigError

#: Prefix shared by every serving environment variable.
SERVE_ENV_PREFIX = "REPRO_SERVE_"


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Limits and windows of the online inference service.

    Attributes
    ----------
    max_batch_size:
        Upper bound on how many requests one micro-batch coalesces.
    max_wait_ms:
        How long the batcher waits for more requests after the first one
        arrives before dispatching a partial batch.
    queue_capacity:
        Hard bound of the admission queue; a full queue sheds outright.
    shed_watermark:
        Fraction of ``queue_capacity`` above which new requests are shed
        immediately (admission control fires *before* the hard bound).
    deadline_ms:
        Default per-request deadline; a request whose deadline passes
        before its result is ready receives a ``timeout`` response.
    max_retries:
        How many times a failed micro-batch is retried (exponential
        backoff) before its requests get degraded responses.
    retry_backoff_ms / retry_backoff_factor:
        First backoff sleep and its per-attempt multiplier.
    breaker_threshold:
        Consecutive model faults (NaN/Inf outputs) that trip the circuit
        breaker open.
    breaker_cooldown_ms:
        How long the breaker stays open before letting one probe batch
        through (half-open).
    """

    max_batch_size: int = 64
    max_wait_ms: float = 5.0
    queue_capacity: int = 256
    shed_watermark: float = 0.75
    deadline_ms: float = 1000.0
    max_retries: int = 2
    retry_backoff_ms: float = 10.0
    retry_backoff_factor: float = 2.0
    breaker_threshold: int = 3
    breaker_cooldown_ms: float = 250.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ConfigError("max_wait_ms must be >= 0")
        if self.queue_capacity < 1:
            raise ConfigError("queue_capacity must be >= 1")
        if not 0.0 < self.shed_watermark <= 1.0:
            raise ConfigError("shed_watermark must lie in (0, 1]")
        if self.deadline_ms <= 0:
            raise ConfigError("deadline_ms must be positive")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.retry_backoff_ms < 0:
            raise ConfigError("retry_backoff_ms must be >= 0")
        if self.retry_backoff_factor < 1.0:
            raise ConfigError("retry_backoff_factor must be >= 1")
        if self.breaker_threshold < 1:
            raise ConfigError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_ms < 0:
            raise ConfigError("breaker_cooldown_ms must be >= 0")

    @property
    def shed_depth(self) -> int:
        """Queue depth (absolute) at which admission control sheds."""
        return max(1, int(self.queue_capacity * self.shed_watermark))


#: (env suffix, field name, parser) — one row per ``REPRO_SERVE_*`` knob.
_ENV_FIELDS: tuple[tuple[str, str, type], ...] = (
    ("MAX_BATCH_SIZE", "max_batch_size", int),
    ("MAX_WAIT_MS", "max_wait_ms", float),
    ("QUEUE_CAPACITY", "queue_capacity", int),
    ("SHED_WATERMARK", "shed_watermark", float),
    ("DEADLINE_MS", "deadline_ms", float),
    ("MAX_RETRIES", "max_retries", int),
    ("RETRY_BACKOFF_MS", "retry_backoff_ms", float),
    ("RETRY_BACKOFF_FACTOR", "retry_backoff_factor", float),
    ("BREAKER_THRESHOLD", "breaker_threshold", int),
    ("BREAKER_COOLDOWN_MS", "breaker_cooldown_ms", float),
)

_STATE = threading.local()
_PROCESS_CONFIG = ServingConfig()


def get_serving_config() -> ServingConfig:
    """The active serving configuration for this thread."""
    return getattr(_STATE, "config", _PROCESS_CONFIG)


def set_serving_config(config: ServingConfig) -> ServingConfig:
    """Set the process-wide serving configuration; returns it."""
    global _PROCESS_CONFIG
    if not isinstance(config, ServingConfig):
        raise ConfigError(
            f"expected a ServingConfig, got {type(config).__name__}"
        )
    _PROCESS_CONFIG = config
    _STATE.config = config
    return config


@contextlib.contextmanager
def serving_config(**overrides) -> Iterator[ServingConfig]:
    """Scoped override of the serving config (restores the previous one).

    Unspecified fields inherit from the currently active config, so
    ``with serving_config(max_batch_size=4):`` changes only that knob.
    """
    previous = get_serving_config()
    _STATE.config = dataclasses.replace(previous, **overrides)
    try:
        yield _STATE.config
    finally:
        _STATE.config = previous


def serving_config_from_env() -> ServingConfig:
    """Build a config from built-in defaults plus current ``REPRO_SERVE_*``.

    Reads the environment **now**, every call — never a value latched at
    import time.  A variable that is unset (or was removed since the last
    read) contributes the built-in default; a malformed value raises
    :class:`~repro.errors.ConfigError` so a typo fails loudly instead of
    silently serving with the wrong limits.
    """
    overrides: dict[str, int | float] = {}
    for suffix, field, parser in _ENV_FIELDS:
        name = f"{SERVE_ENV_PREFIX}{suffix}"
        raw = os.environ.get(name)
        if raw is None or not raw.strip():
            continue
        try:
            overrides[field] = parser(raw)
        except ValueError as exc:
            raise ConfigError(
                f"{name}={raw!r} is not a valid {parser.__name__}"
            ) from exc
    return ServingConfig(**overrides)


def reinit_serving_from_env() -> ServingConfig:
    """Re-read ``REPRO_SERVE_*`` and install the result process-wide.

    Mirrors the ``REPRO_SPARSE`` re-init contract: always starts from the
    built-in defaults, so re-initialising after a variable was *removed*
    falls back to the default, exactly as a fresh import would.
    """
    return set_serving_config(serving_config_from_env())


reinit_serving_from_env()

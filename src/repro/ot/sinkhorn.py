"""Entropic-regularized optimal transport via Sinkhorn iterations.

The solver is written entirely in :mod:`repro.tensor` operations and is
differentiated by *unrolling* the fixed-point iterations — the same strategy
the NSTM authors use — so gradients flow into both the cost matrix (topic /
word embeddings) and the marginals (document-topic proportions).

Batched convention: one shared cost matrix ``(n, m)``; marginals ``a`` of
shape ``(batch, n)`` and ``b`` of shape ``(batch, m)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.tensor.tensor import Tensor, as_tensor

_TINY = 1e-30


@dataclass
class SinkhornResult:
    """Transport plans and per-item transport costs for a batch."""

    plan: Tensor  # (batch, n, m) — or (n, m) for unbatched inputs
    cost: Tensor  # (batch,) — <plan, C> per batch item


def sinkhorn(
    cost: Tensor,
    a: Tensor,
    b: Tensor,
    epsilon: float = 0.1,
    n_iterations: int = 30,
) -> SinkhornResult:
    """Solve entropic OT between batched marginals under a shared cost.

    Parameters
    ----------
    cost:
        ``(n, m)`` ground cost (differentiable).
    a:
        ``(batch, n)`` or ``(n,)`` source marginals (rows sum to 1).
    b:
        ``(batch, m)`` or ``(m,)`` target marginals (rows sum to 1).
    epsilon:
        Entropic regularisation strength; smaller is closer to exact OT but
        numerically harder.
    n_iterations:
        Number of Sinkhorn matrix-scaling iterations to unroll.
    """
    if epsilon <= 0:
        raise ConfigError("epsilon must be positive")
    if n_iterations < 1:
        raise ConfigError("n_iterations must be >= 1")
    cost = as_tensor(cost)
    a = as_tensor(a)
    b = as_tensor(b)
    squeeze = a.ndim == 1 and b.ndim == 1
    if a.ndim == 1:
        a = a.reshape(1, -1)
    if b.ndim == 1:
        b = b.reshape(1, -1)
    n, m = cost.shape
    if a.shape[1] != n or b.shape[1] != m:
        raise ShapeError(
            f"marginals {a.shape}/{b.shape} inconsistent with cost {cost.shape}"
        )
    if a.shape[0] != b.shape[0]:
        raise ShapeError("a and b disagree on batch size")

    gibbs = (-cost * (1.0 / epsilon)).exp()  # (n, m)
    batch = a.shape[0]
    u = Tensor(np.full((batch, n), 1.0 / n))
    v = Tensor(np.full((batch, m), 1.0 / m))
    for _ in range(n_iterations):
        u = a / ((v @ gibbs.T) + _TINY)
        v = b / ((u @ gibbs) + _TINY)

    # plan[b, i, j] = u[b, i] * gibbs[i, j] * v[b, j]
    plan = u.reshape(batch, n, 1) * gibbs.reshape(1, n, m) * v.reshape(batch, 1, m)
    per_item = (plan * cost.reshape(1, n, m)).sum(axis=(1, 2))
    if squeeze:
        plan = plan.reshape(n, m)
        per_item = per_item.reshape(())
    return SinkhornResult(plan=plan, cost=per_item)


def sinkhorn_divergence_loss(
    cost: Tensor,
    a: Tensor,
    b: Tensor,
    epsilon: float = 0.1,
    n_iterations: int = 30,
) -> Tensor:
    """Mean entropic transport cost over the batch (the NSTM loss core)."""
    result = sinkhorn(cost, a, b, epsilon=epsilon, n_iterations=n_iterations)
    if result.cost.ndim == 0:
        return result.cost
    return result.cost.mean()

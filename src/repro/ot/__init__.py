"""Optimal-transport substrate for the NSTM and WeTe baselines."""

from repro.ot.sinkhorn import sinkhorn, sinkhorn_divergence_loss, SinkhornResult
from repro.ot.costs import cosine_cost_matrix, euclidean_cost_matrix

__all__ = [
    "sinkhorn",
    "sinkhorn_divergence_loss",
    "SinkhornResult",
    "cosine_cost_matrix",
    "euclidean_cost_matrix",
]

"""Ground-cost matrices between embedding sets.

NSTM builds its transport cost from cosine distance between word and topic
embeddings; WeTe uses (negative) inner products.  Both costs are provided
as differentiable :class:`~repro.tensor.tensor.Tensor` expressions so the
embeddings can be trained through the transport objective.
"""

from __future__ import annotations

from repro.tensor.tensor import Tensor, as_tensor


def cosine_cost_matrix(a: Tensor, b: Tensor, eps: float = 1e-8) -> Tensor:
    """``1 - cosine_similarity`` between rows of ``a`` (n,d) and ``b`` (m,d)."""
    a = as_tensor(a)
    b = as_tensor(b)
    a_norm = ((a * a).sum(axis=1, keepdims=True) + eps).sqrt()
    b_norm = ((b * b).sum(axis=1, keepdims=True) + eps).sqrt()
    sim = (a / a_norm) @ (b / b_norm).T
    return 1.0 - sim


def euclidean_cost_matrix(a: Tensor, b: Tensor) -> Tensor:
    """Squared Euclidean distances between rows of ``a`` (n,d) and ``b`` (m,d)."""
    a = as_tensor(a)
    b = as_tensor(b)
    a_sq = (a * a).sum(axis=1, keepdims=True)
    b_sq = (b * b).sum(axis=1, keepdims=True)
    return a_sq + b_sq.T - (a @ b.T) * 2.0

"""Multi-level contrastive learning: topic-wise + document-wise, unified.

The paper's §VI: "Subsequent research can explore a unified multi-level
contrastive learning framework that incorporates both topic-wise and
document-wise approaches, aiming to enhance both topic interpretability
and document representation."

This extension combines ContraTopic's topic-wise L_con with a CLNTM-style
document-wise InfoNCE over tf-idf-salient views of each document:

    L = L_rec + L_kl + λ_topic · L_topic + λ_doc · L_doc
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.contratopic import ContraTopic, ContraTopicConfig
from repro.core.similarity import SimilarityKernel
from repro.errors import ConfigError
from repro.models.base import NeuralTopicModel
from repro.objectives.clntm import DocumentContrastiveObjective
from repro.tensor.tensor import Tensor


@dataclass
class MultiLevelConfig:
    """Weights and view construction of the document-wise level."""

    lambda_document: float = 1.0
    salient_fraction: float = 0.25
    infonce_temperature: float = 0.5

    def __post_init__(self) -> None:
        if self.lambda_document < 0:
            raise ConfigError("lambda_document must be non-negative")
        if not 0.0 < self.salient_fraction < 1.0:
            raise ConfigError("salient_fraction must be in (0, 1)")
        if self.infonce_temperature <= 0:
            raise ConfigError("infonce_temperature must be positive")


class MultiLevelContraTopic(ContraTopic):
    """ContraTopic + document-wise InfoNCE on the encoder's θ.

    The topic-wise level is inherited unchanged; the document level builds
    a positive view (tf-idf-salient words kept) and a negative view
    (salient words deleted) of every batch document and applies InfoNCE on
    L2-normalized θ vectors, exactly as the CLNTM baseline — except here
    both levels act together, which is the §VI proposal.
    """

    def __init__(
        self,
        backbone: NeuralTopicModel,
        kernel: SimilarityKernel,
        topic_config: ContraTopicConfig | None = None,
        multilevel_config: MultiLevelConfig | None = None,
    ):
        super().__init__(backbone, kernel, topic_config)
        self.multilevel = multilevel_config or MultiLevelConfig()
        # The document level *is* the CLNTM objective — one implementation
        # shared with repro.models.clntm and ObjectiveSpec("clntm").
        self._document = DocumentContrastiveObjective(
            salient_fraction=self.multilevel.salient_fraction,
            temperature=self.multilevel.infonce_temperature,
        )

    def build_objectives(self):
        """ELBO + the two named levels: λ·L_topic and λ_doc·L_doc.

        Declaring both as separate terms lets the guard shed the document
        level first (reverse stack order) before falling back to
        ELBO-only, and telemetry reports each level's contribution.
        """
        from repro.objectives.base import ObjectiveTerm

        stack = super().build_objectives()
        stack.terms.append(
            ObjectiveTerm(
                "document",
                self._document,
                weight=self.multilevel.lambda_document,
            )
        )
        return stack

    @property
    def _idf(self) -> np.ndarray | None:
        return self._document.idf

    # ------------------------------------------------------------------
    def _document_views(self, bow: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self._document.views(bow)

    def document_contrastive_loss(self, theta: Tensor, bow: np.ndarray) -> Tensor:
        """InfoNCE over (anchor, salient-view, deleted-view) triplets."""
        return self._document.infonce(self, theta, bow)

    def extra_loss(self, theta: Tensor, beta: Tensor, bow: np.ndarray) -> Tensor:
        topic_term = super().extra_loss(theta, beta, bow)
        doc_term = self.document_contrastive_loss(theta, bow)
        return topic_term + doc_term * self.multilevel.lambda_document

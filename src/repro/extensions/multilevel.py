"""Multi-level contrastive learning: topic-wise + document-wise, unified.

The paper's §VI: "Subsequent research can explore a unified multi-level
contrastive learning framework that incorporates both topic-wise and
document-wise approaches, aiming to enhance both topic interpretability
and document representation."

This extension combines ContraTopic's topic-wise L_con with a CLNTM-style
document-wise InfoNCE over tf-idf-salient views of each document:

    L = L_rec + L_kl + λ_topic · L_topic + λ_doc · L_doc
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.contratopic import ContraTopic, ContraTopicConfig
from repro.core.similarity import SimilarityKernel
from repro.data.corpus import Corpus
from repro.errors import ConfigError
from repro.models.base import NeuralTopicModel
from repro.tensor import functional as F
from repro.tensor.dtypes import get_default_dtype
from repro.tensor.tensor import Tensor


@dataclass
class MultiLevelConfig:
    """Weights and view construction of the document-wise level."""

    lambda_document: float = 1.0
    salient_fraction: float = 0.25
    infonce_temperature: float = 0.5

    def __post_init__(self) -> None:
        if self.lambda_document < 0:
            raise ConfigError("lambda_document must be non-negative")
        if not 0.0 < self.salient_fraction < 1.0:
            raise ConfigError("salient_fraction must be in (0, 1)")
        if self.infonce_temperature <= 0:
            raise ConfigError("infonce_temperature must be positive")


class MultiLevelContraTopic(ContraTopic):
    """ContraTopic + document-wise InfoNCE on the encoder's θ.

    The topic-wise level is inherited unchanged; the document level builds
    a positive view (tf-idf-salient words kept) and a negative view
    (salient words deleted) of every batch document and applies InfoNCE on
    L2-normalized θ vectors, exactly as the CLNTM baseline — except here
    both levels act together, which is the §VI proposal.
    """

    def __init__(
        self,
        backbone: NeuralTopicModel,
        kernel: SimilarityKernel,
        topic_config: ContraTopicConfig | None = None,
        multilevel_config: MultiLevelConfig | None = None,
    ):
        super().__init__(backbone, kernel, topic_config)
        self.multilevel = multilevel_config or MultiLevelConfig()
        self._idf: np.ndarray | None = None

    def on_fit_start(self, corpus: Corpus) -> None:
        super().on_fit_start(corpus)
        doc_freq = corpus.word_document_frequency()
        self._idf = np.log((len(corpus) + 1.0) / (doc_freq + 1.0)) + 1.0

    # ------------------------------------------------------------------
    def _document_views(self, bow: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        idf = self._idf if self._idf is not None else np.ones(self.vocab_size)
        tfidf = bow * idf[None, :]
        positive = np.zeros_like(bow)
        negative = bow.copy()
        fraction = self.multilevel.salient_fraction
        for i in range(bow.shape[0]):
            present = np.flatnonzero(bow[i] > 0)
            if present.size == 0:
                continue
            n_salient = max(1, int(round(present.size * fraction)))
            salient = present[np.argsort(-tfidf[i, present])[:n_salient]]
            positive[i, salient] = bow[i, salient]
            negative[i, salient] = 0.0
        return positive, negative

    def document_contrastive_loss(self, theta: Tensor, bow: np.ndarray) -> Tensor:
        """InfoNCE over (anchor, salient-view, deleted-view) triplets."""
        positive_bow, negative_bow = self._document_views(
            np.asarray(bow, dtype=get_default_dtype())
        )
        theta_pos, _, _ = self.encode_theta(positive_bow, sample=False)
        theta_neg, _, _ = self.encode_theta(negative_bow, sample=False)
        anchor = _normalize(theta)
        inv_temp = 1.0 / self.multilevel.infonce_temperature
        sim_pos = (anchor * _normalize(theta_pos)).sum(axis=1) * inv_temp
        sim_neg = (anchor * _normalize(theta_neg)).sum(axis=1) * inv_temp
        return F.softplus(sim_neg - sim_pos).mean()

    def extra_loss(self, theta: Tensor, beta: Tensor, bow: np.ndarray) -> Tensor:
        topic_term = super().extra_loss(theta, beta, bow)
        doc_term = self.document_contrastive_loss(theta, bow)
        return topic_term + doc_term * self.multilevel.lambda_document


def _normalize(x: Tensor) -> Tensor:
    norm = ((x * x).sum(axis=1, keepdims=True) + 1e-12).sqrt()
    return x / norm

"""Online ContraTopic: the paper's §VI streaming future-work item.

Documents arrive in *time slices* (cf. On-line LDA, AlSumait et al. 2008).
Per slice the model:

1. re-estimates the slice's NPMI matrix and blends it into a running
   exponentially-decayed kernel (so the contrastive similarity tracks the
   corpus as language use drifts, without forgetting instantly);
2. warm-starts the network from the previous slice's parameters and
   fine-tunes for a few epochs;
3. records per-topic top words, enabling drift/emergence analyses.

A synthetic *drifting stream* generator is included: theme popularity
evolves over slices and new themes can be injected mid-stream, so the
emergence-detection code path is exercised by real signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.contratopic import ContraTopic, ContraTopicConfig
from repro.core.similarity import npmi_kernel
from repro.data.corpus import Corpus
from repro.data.preprocessing import PreprocessConfig, Preprocessor
from repro.data.synthetic import SyntheticCorpusConfig, SyntheticCorpusGenerator
from repro.data.theme_banks import THEME_BANKS
from repro.errors import ConfigError, NotFittedError
from repro.metrics.npmi import NpmiMatrix, compute_npmi_matrix
from repro.models.base import NeuralTopicModel
from repro.training.trainer import RunSpec, Trainer


@dataclass
class OnlineConfig:
    """Knobs of the online trainer.

    ``kernel_decay`` is the exponential forgetting factor ρ of the running
    NPMI kernel: N_t = ρ·N_{t-1} + (1-ρ)·N_slice.  ``epochs_per_slice``
    replaces the backbone config's epoch count after the first slice
    (warm-started fine-tuning needs fewer passes).
    """

    kernel_decay: float = 0.7
    epochs_per_slice: int = 10
    kernel_temperature: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.kernel_decay < 1.0:
            raise ConfigError("kernel_decay must be in [0, 1)")
        if self.epochs_per_slice < 1:
            raise ConfigError("epochs_per_slice must be >= 1")


@dataclass
class SliceResult:
    """What the online model records after each slice."""

    slice_index: int
    top_words: list[list[str]]
    topic_drift: np.ndarray  # (K,) cosine distance of β rows vs prev slice
    mean_drift: float


class OnlineContraTopic:
    """Slice-by-slice ContraTopic with a decayed NPMI kernel.

    Parameters
    ----------
    backbone_factory:
        Builds a *fresh* unfitted backbone (called once, for slice 0); its
        parameters are then carried across slices via state dicts.
    regularizer_config:
        ContraTopic regularizer settings shared by every slice.
    online_config:
        Streaming-specific settings.
    run_spec:
        Declarative training configuration
        (:class:`~repro.training.trainer.RunSpec`) every slice's
        fine-tuning runs under; ``None`` is a plain unguarded run.  A
        guarded spec is a natural fit for streaming — a pathological
        slice recovers through the escalation ladder instead of killing
        the whole stream.
    """

    def __init__(
        self,
        backbone_factory: Callable[[], NeuralTopicModel],
        regularizer_config: ContraTopicConfig | None = None,
        online_config: OnlineConfig | None = None,
        run_spec: RunSpec | None = None,
    ):
        self._factory = backbone_factory
        self.regularizer_config = regularizer_config or ContraTopicConfig()
        self.online_config = online_config or OnlineConfig()
        self._trainer = Trainer(run_spec)
        self.model: ContraTopic | None = None
        self.kernel_matrix: np.ndarray | None = None
        self.history: list[SliceResult] = []
        self._previous_beta: np.ndarray | None = None

    # ------------------------------------------------------------------
    def partial_fit(self, corpus: Corpus) -> SliceResult:
        """Consume one time slice and return its evolution record."""
        cfg = self.online_config
        slice_npmi = compute_npmi_matrix(corpus).matrix
        if self.kernel_matrix is None:
            self.kernel_matrix = slice_npmi
        else:
            if self.kernel_matrix.shape != slice_npmi.shape:
                raise ConfigError(
                    "all slices must share one vocabulary; got matrices of "
                    f"shape {self.kernel_matrix.shape} and {slice_npmi.shape}"
                )
            self.kernel_matrix = (
                cfg.kernel_decay * self.kernel_matrix
                + (1.0 - cfg.kernel_decay) * slice_npmi
            )
        kernel = npmi_kernel(
            NpmiMatrix(self.kernel_matrix), temperature=cfg.kernel_temperature
        )

        previous_state = None
        if self.model is not None:
            previous_state = self.model.state_dict()

        backbone = self._factory()
        if previous_state is not None:
            backbone.config.epochs = cfg.epochs_per_slice
        model = ContraTopic(backbone, kernel, self.regularizer_config)
        if previous_state is not None:
            model.load_state_dict(previous_state)
        self._trainer.fit(model, corpus)
        self.model = model

        beta = model.topic_word_matrix()
        drift = self._drift(beta)
        tops = model.top_words(corpus.vocabulary, 10)
        result = SliceResult(
            slice_index=len(self.history),
            top_words=tops,
            topic_drift=drift,
            mean_drift=float(drift.mean()),
        )
        self.history.append(result)
        self._previous_beta = beta
        return result

    def _drift(self, beta: np.ndarray) -> np.ndarray:
        """Per-topic cosine distance between consecutive β rows."""
        if self._previous_beta is None:
            return np.zeros(beta.shape[0])
        prev = self._previous_beta
        num = (beta * prev).sum(axis=1)
        denom = np.linalg.norm(beta, axis=1) * np.linalg.norm(prev, axis=1) + 1e-12
        return 1.0 - num / denom

    # ------------------------------------------------------------------
    def transform(self, corpus: Corpus) -> np.ndarray:
        if self.model is None:
            raise NotFittedError("no slice has been consumed yet")
        return self.model.transform(corpus)

    def topic_word_matrix(self) -> np.ndarray:
        if self.model is None:
            raise NotFittedError("no slice has been consumed yet")
        return self.model.topic_word_matrix()

    def export_checkpoint(self, path) -> "Path":
        """Publish the current slice's model as a serving checkpoint.

        The producer side of the hot-reload loop: after each
        ``partial_fit`` the stream trainer can export, and a
        :class:`repro.serving.ModelRegistry` pointed at the same path
        picks the new slice up via ``load`` — validated (checksum,
        finiteness, optional probe corpus) and rolled back to last-good
        if this slice went bad.  Written atomically, so the registry
        never observes a half-published file.
        """
        from pathlib import Path

        from repro.io import save_checkpoint

        if self.model is None:
            raise NotFittedError("no slice has been consumed yet")
        path = Path(path)
        save_checkpoint(
            self.model,
            path,
            extra={
                "slice_index": len(self.history) - 1,
                "mean_drift": self.history[-1].mean_drift,
            },
        )
        return path

    def emerging_topics(self, threshold: float = 0.3) -> list[int]:
        """Topics whose latest drift exceeds ``threshold``.

        Large drift flags a topic that re-specialized onto new vocabulary —
        the online analogue of trend detection.
        """
        if not self.history:
            return []
        latest = self.history[-1].topic_drift
        return [int(k) for k in np.flatnonzero(latest > threshold)]


# ----------------------------------------------------------------------
# drifting synthetic stream
# ----------------------------------------------------------------------
@dataclass
class DriftingStreamConfig:
    """A stream whose theme popularity drifts across slices.

    ``base_themes`` are present throughout; each entry of
    ``emerging_themes`` is switched on from slice ``emerge_at`` onward,
    taking an increasing share of the documents.
    """

    base_themes: Sequence[str] = ("space", "medicine", "finance")
    emerging_themes: Sequence[str] = ("wrestling",)
    emerge_at: int = 2
    num_slices: int = 4
    docs_per_slice: int = 300
    average_length: float = 50.0
    seed: int = 0

    def __post_init__(self) -> None:
        for theme in tuple(self.base_themes) + tuple(self.emerging_themes):
            if theme not in THEME_BANKS:
                raise ConfigError(f"unknown theme {theme!r}")
        if self.num_slices < 1:
            raise ConfigError("num_slices must be >= 1")
        if not 0 <= self.emerge_at:
            raise ConfigError("emerge_at must be >= 0")


def generate_drifting_stream(
    config: DriftingStreamConfig,
) -> tuple[list[Corpus], Preprocessor, Corpus]:
    """Generate time-sliced corpora over one shared vocabulary.

    Returns ``(slices, preprocessor, union_corpus)``.  The preprocessor is
    fitted on the union of all slices (the online model requires one
    vocabulary) and returned for indexing future documents; the union
    corpus is a balanced sample over *all* themes — train word embeddings
    on it, because embeddings trained on the first slice alone assign
    zero vectors to words of themes that have not emerged yet, making it
    impossible for any embedding-decoder topic to adopt them later.
    """
    all_themes = tuple(config.base_themes) + tuple(config.emerging_themes)
    slice_texts: list[list[str]] = []
    for t in range(config.num_slices):
        active = list(config.base_themes)
        if t >= config.emerge_at:
            active += list(config.emerging_themes)
        generator = SyntheticCorpusGenerator(
            SyntheticCorpusConfig(
                themes=tuple(active),
                num_documents=config.docs_per_slice,
                average_length=config.average_length,
                seed=config.seed * 1000 + t,
            )
        )
        texts, _, _ = generator.generate()
        slice_texts.append(texts)

    # One vocabulary for the whole stream: fit on a union sample that
    # includes every theme (mirrors fitting on an initial backlog).
    union_generator = SyntheticCorpusGenerator(
        SyntheticCorpusConfig(
            themes=all_themes,
            num_documents=config.docs_per_slice,
            average_length=config.average_length,
            seed=config.seed + 999_331,
        )
    )
    union_texts, _, _ = union_generator.generate()
    preprocessor = Preprocessor(PreprocessConfig(min_doc_count=2))
    preprocessor.fit(union_texts + [t for batch in slice_texts for t in batch])

    slices = [preprocessor.transform(texts) for texts in slice_texts]
    union_corpus = preprocessor.transform(union_texts)
    return slices, preprocessor, union_corpus

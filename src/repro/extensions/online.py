"""Online ContraTopic: the paper's §VI streaming future-work item.

Documents arrive in *time slices* (cf. On-line LDA, AlSumait et al. 2008).
Per slice the model:

1. folds the slice into a :class:`~repro.metrics.streaming
   .StreamingNpmiEngine` — an exact O(nnz_new·V) delta update of the
   cumulative co-occurrence counts plus one allocation-free in-place
   NPMI rederivation — and blends the *moving* NPMI into an
   exponentially-decayed kernel (so the contrastive similarity tracks
   the corpus as language use drifts, without forgetting instantly).
   The kernel is one persistent :class:`~repro.core.similarity
   .SimilarityKernel` refreshed in place (version-bumped, exp-tensor
   caches rewritten by delta) instead of a fresh V×V build per slice;
2. runs a coherence-drop drift check: when the updated NPMI scores the
   previous slice's topics much lower than before (the corpus moved
   away from the model), the slice trains under the PR-2 guard
   escalation ladder (skip → LR backoff → restore → degrade);
3. warm-starts the network from the previous slice's parameters and
   fine-tunes for a few epochs;
4. records per-topic top words, enabling drift/emergence analyses.

A synthetic *drifting stream* generator is included: theme popularity
evolves over slices and new themes can be injected mid-stream, so the
emergence-detection code path is exercised by real signal.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro.core.contratopic import ContraTopic, ContraTopicConfig
from repro.core.similarity import SimilarityKernel, npmi_kernel
from repro.data.corpus import Corpus
from repro.data.preprocessing import PreprocessConfig, Preprocessor
from repro.data.synthetic import SyntheticCorpusConfig, SyntheticCorpusGenerator
from repro.data.theme_banks import THEME_BANKS
from repro.errors import ConfigError, NotFittedError
from repro.metrics.npmi import NpmiMatrix
from repro.metrics.streaming import StreamingNpmiEngine
from repro.models.base import NeuralTopicModel
from repro.training.resilience import GuardPolicy
from repro.training.trainer import RunSpec, Trainer


@dataclass
class OnlineConfig:
    """Knobs of the online trainer.

    ``kernel_decay`` is the exponential forgetting factor ρ of the running
    NPMI kernel: N_t = ρ·N_{t-1} + (1-ρ)·M_t, where M_t is the *moving*
    cumulative NPMI maintained incrementally by the streaming engine.
    ``epochs_per_slice`` replaces the backbone config's epoch count after
    the first slice (warm-started fine-tuning needs fewer passes).

    ``drift_threshold`` is the coherence-drop alarm level: before
    training a slice, the previous model's topics are re-scored under
    the freshly updated NPMI; a drop larger than the threshold (the
    corpus moved away from the model) escalates that slice's training
    through the guard machinery (a :class:`~repro.training.resilience
    .GuardPolicy` is enabled if the run spec has none).
    ``coherence_top_words`` is how many top words per topic the check
    scores.
    """

    kernel_decay: float = 0.7
    epochs_per_slice: int = 10
    kernel_temperature: float = 0.25
    drift_threshold: float = 0.1
    coherence_top_words: int = 10

    def __post_init__(self) -> None:
        if not 0.0 <= self.kernel_decay < 1.0:
            raise ConfigError("kernel_decay must be in [0, 1)")
        if self.epochs_per_slice < 1:
            raise ConfigError("epochs_per_slice must be >= 1")
        if self.drift_threshold <= 0.0:
            raise ConfigError("drift_threshold must be positive")
        if self.coherence_top_words < 2:
            raise ConfigError("coherence_top_words must be >= 2")


@dataclass
class SliceResult:
    """What the online model records after each slice."""

    slice_index: int
    top_words: list[list[str]]
    topic_drift: np.ndarray  # (K,) cosine distance of β rows vs prev slice
    mean_drift: float
    #: Mean pairwise NPMI of the trained topics' top words under the
    #: moving (cumulative) NPMI matrix.
    coherence: float = 0.0
    #: How far the *previous* model's coherence fell when re-scored under
    #: this slice's updated NPMI (0.0 for the first slice).
    coherence_drop: float = 0.0
    #: True when the drop exceeded the drift threshold and this slice
    #: trained under the guard escalation ladder.
    guard_escalated: bool = False
    #: Version of the shared similarity kernel this slice trained against.
    kernel_version: int = 0


class OnlineContraTopic:
    """Slice-by-slice ContraTopic with a decayed NPMI kernel.

    Parameters
    ----------
    backbone_factory:
        Builds a *fresh* unfitted backbone (called once, for slice 0); its
        parameters are then carried across slices via state dicts.
    regularizer_config:
        ContraTopic regularizer settings shared by every slice.
    online_config:
        Streaming-specific settings.
    run_spec:
        Declarative training configuration
        (:class:`~repro.training.trainer.RunSpec`) every slice's
        fine-tuning runs under; ``None`` is a plain unguarded run.  A
        guarded spec is a natural fit for streaming — a pathological
        slice recovers through the escalation ladder instead of killing
        the whole stream.
    """

    def __init__(
        self,
        backbone_factory: Callable[[], NeuralTopicModel],
        regularizer_config: ContraTopicConfig | None = None,
        online_config: OnlineConfig | None = None,
        run_spec: RunSpec | None = None,
    ):
        self._factory = backbone_factory
        self.regularizer_config = regularizer_config or ContraTopicConfig()
        self.online_config = online_config or OnlineConfig()
        self._run_spec = run_spec
        self._trainer = Trainer(run_spec)
        self.model: ContraTopic | None = None
        self.engine: StreamingNpmiEngine | None = None
        self.kernel: SimilarityKernel | None = None
        self.kernel_matrix: np.ndarray | None = None
        self.history: list[SliceResult] = []
        self.drift_alarms = 0
        self._previous_beta: np.ndarray | None = None
        self._last_coherence: float | None = None
        self._blend_scratch: np.ndarray | None = None

    # ------------------------------------------------------------------
    def partial_fit(self, corpus: Corpus) -> SliceResult:
        """Consume one time slice and return its evolution record.

        The incremental path: the slice is folded into the streaming
        engine (delta-update counts + in-place NPMI rederivation), the
        coherence-drop drift check runs against the updated moving NPMI,
        the persistent kernel blends and refreshes in place, and the
        warm-started model fine-tunes — under the guard escalation
        ladder when the drift check fired.
        """
        cfg = self.online_config
        if self.engine is None:
            self.engine = StreamingNpmiEngine(corpus.vocab_size)
        elif corpus.vocab_size != self.engine.vocab_size:
            raise ConfigError(
                "all slices must share one vocabulary; engine has "
                f"{self.engine.vocab_size} words, slice has {corpus.vocab_size}"
            )
        moving = self.engine.update(corpus)

        # Drift check: re-score the previous topics under the *updated*
        # NPMI before training.  A large coherence drop means the corpus
        # moved away from the model — train this slice guarded.
        coherence_drop = 0.0
        escalate = False
        if self.model is not None and self._last_coherence is not None:
            rescored = self._topics_coherence(
                self.model.topic_word_matrix(), moving
            )
            coherence_drop = self._last_coherence - rescored
            escalate = coherence_drop > cfg.drift_threshold
            if escalate:
                self.drift_alarms += 1

        if self.kernel is None:
            # First slice: one kernel allocation for the stream's
            # lifetime; later slices mutate it in place.
            self.kernel = npmi_kernel(moving, temperature=cfg.kernel_temperature)
            self.kernel_matrix = self.kernel.matrix
            self._blend_scratch = np.empty_like(self.kernel.matrix)
        else:
            blended = self.kernel.matrix
            blended *= cfg.kernel_decay
            np.multiply(
                moving.matrix, 1.0 - cfg.kernel_decay, out=self._blend_scratch
            )
            blended += self._blend_scratch
            self.kernel.refresh()

        previous_state = None
        if self.model is not None:
            previous_state = self.model.state_dict()

        backbone = self._factory()
        if previous_state is not None:
            backbone.config.epochs = cfg.epochs_per_slice
        model = ContraTopic(backbone, self.kernel, self.regularizer_config)
        if previous_state is not None:
            model.load_state_dict(previous_state)
        trainer = Trainer(self._escalated_run_spec()) if escalate else self._trainer
        trainer.fit(model, corpus)
        self.model = model

        beta = model.topic_word_matrix()
        coherence = self._topics_coherence(beta, moving)
        drift = self._drift(beta)
        tops = model.top_words(corpus.vocabulary, 10)
        result = SliceResult(
            slice_index=len(self.history),
            top_words=tops,
            topic_drift=drift,
            mean_drift=float(drift.mean()),
            coherence=coherence,
            coherence_drop=float(coherence_drop),
            guard_escalated=escalate,
            kernel_version=self.kernel.version,
        )
        self.history.append(result)
        self._previous_beta = beta
        self._last_coherence = coherence
        return result

    def _escalated_run_spec(self) -> RunSpec:
        """The slice's run spec with the guard ladder switched on."""
        if self._run_spec is None:
            return RunSpec(guard=GuardPolicy())
        if self._run_spec.guard is not None:
            return self._run_spec
        return replace(self._run_spec, guard=GuardPolicy())

    def _topics_coherence(self, beta: np.ndarray, npmi: NpmiMatrix) -> float:
        """Mean pairwise NPMI of each topic's top words, averaged."""
        topn = self.online_config.coherence_top_words
        top_ids = np.argsort(-beta, axis=1)[:, :topn]
        return float(
            np.mean([npmi.mean_pairwise(ids) for ids in top_ids])
        )

    def _drift(self, beta: np.ndarray) -> np.ndarray:
        """Per-topic cosine distance between consecutive β rows."""
        if self._previous_beta is None:
            return np.zeros(beta.shape[0])
        prev = self._previous_beta
        num = (beta * prev).sum(axis=1)
        denom = np.linalg.norm(beta, axis=1) * np.linalg.norm(prev, axis=1) + 1e-12
        return 1.0 - num / denom

    # ------------------------------------------------------------------
    def transform(self, corpus: Corpus) -> np.ndarray:
        if self.model is None:
            raise NotFittedError("no slice has been consumed yet")
        return self.model.transform(corpus)

    def topic_word_matrix(self) -> np.ndarray:
        if self.model is None:
            raise NotFittedError("no slice has been consumed yet")
        return self.model.topic_word_matrix()

    def export_checkpoint(self, path) -> "Path":
        """Publish the current slice's model as a serving checkpoint.

        The producer side of the hot-reload loop: after each
        ``partial_fit`` the stream trainer can export, and a
        :class:`repro.serving.ModelRegistry` pointed at the same path
        picks the new slice up via ``load`` — validated (checksum,
        finiteness, optional probe corpus) and rolled back to last-good
        if this slice went bad.  Written atomically, so the registry
        never observes a half-published file.
        """
        from pathlib import Path

        from repro.io import save_checkpoint

        if self.model is None:
            raise NotFittedError("no slice has been consumed yet")
        path = Path(path)
        save_checkpoint(
            self.model,
            path,
            extra={
                "slice_index": len(self.history) - 1,
                "mean_drift": self.history[-1].mean_drift,
            },
        )
        return path

    def emerging_topics(self, threshold: float = 0.3) -> list[int]:
        """Topics whose latest drift exceeds ``threshold``.

        Large drift flags a topic that re-specialized onto new vocabulary —
        the online analogue of trend detection.
        """
        if not self.history:
            return []
        latest = self.history[-1].topic_drift
        return [int(k) for k in np.flatnonzero(latest > threshold)]


# ----------------------------------------------------------------------
# drifting synthetic stream
# ----------------------------------------------------------------------
@dataclass
class DriftingStreamConfig:
    """A stream whose theme popularity drifts across slices.

    ``base_themes`` are present throughout; each entry of
    ``emerging_themes`` is switched on from slice ``emerge_at`` onward,
    taking an increasing share of the documents.
    """

    base_themes: Sequence[str] = ("space", "medicine", "finance")
    emerging_themes: Sequence[str] = ("wrestling",)
    emerge_at: int = 2
    num_slices: int = 4
    docs_per_slice: int = 300
    average_length: float = 50.0
    seed: int = 0

    def __post_init__(self) -> None:
        for theme in tuple(self.base_themes) + tuple(self.emerging_themes):
            if theme not in THEME_BANKS:
                raise ConfigError(f"unknown theme {theme!r}")
        if self.num_slices < 1:
            raise ConfigError("num_slices must be >= 1")
        if not 0 <= self.emerge_at:
            raise ConfigError("emerge_at must be >= 0")


def generate_drifting_stream(
    config: DriftingStreamConfig,
) -> tuple[list[Corpus], Preprocessor, Corpus]:
    """Generate time-sliced corpora over one shared vocabulary.

    Returns ``(slices, preprocessor, union_corpus)``.  The preprocessor is
    fitted on the union of all slices (the online model requires one
    vocabulary) and returned for indexing future documents; the union
    corpus is a balanced sample over *all* themes — train word embeddings
    on it, because embeddings trained on the first slice alone assign
    zero vectors to words of themes that have not emerged yet, making it
    impossible for any embedding-decoder topic to adopt them later.
    """
    all_themes = tuple(config.base_themes) + tuple(config.emerging_themes)
    slice_texts: list[list[str]] = []
    for t in range(config.num_slices):
        active = list(config.base_themes)
        if t >= config.emerge_at:
            active += list(config.emerging_themes)
        generator = SyntheticCorpusGenerator(
            SyntheticCorpusConfig(
                themes=tuple(active),
                num_documents=config.docs_per_slice,
                average_length=config.average_length,
                seed=config.seed * 1000 + t,
            )
        )
        texts, _, _ = generator.generate()
        slice_texts.append(texts)

    # One vocabulary for the whole stream: fit on a union sample that
    # includes every theme (mirrors fitting on an initial backlog).
    union_generator = SyntheticCorpusGenerator(
        SyntheticCorpusConfig(
            themes=all_themes,
            num_documents=config.docs_per_slice,
            average_length=config.average_length,
            seed=config.seed + 999_331,
        )
    )
    union_texts, _, _ = union_generator.generate()
    preprocessor = Preprocessor(PreprocessConfig(min_doc_count=2))
    preprocessor.fit(union_texts + [t for batch in slice_texts for t in batch])

    slices = [preprocessor.transform(texts) for texts in slice_texts]
    union_corpus = preprocessor.transform(union_texts)
    return slices, preprocessor, union_corpus

"""Extensions beyond the paper's main results — its §VI future-work items.

* :mod:`repro.extensions.online` — the online/streaming setting ("extend
  our method to an online setting where documents are partitioned into
  time slices"): slice-by-slice training with warm starts, an
  exponentially-decayed NPMI kernel, and topic-evolution tracking.
* :mod:`repro.extensions.multilevel` — the "unified multi-level
  contrastive learning framework that incorporates both topic-wise and
  document-wise approaches".
"""

from repro.extensions.online import (
    OnlineContraTopic,
    OnlineConfig,
    SliceResult,
    DriftingStreamConfig,
    generate_drifting_stream,
)
from repro.extensions.multilevel import MultiLevelContraTopic, MultiLevelConfig

__all__ = [
    "OnlineContraTopic",
    "OnlineConfig",
    "SliceResult",
    "DriftingStreamConfig",
    "generate_drifting_stream",
    "MultiLevelContraTopic",
    "MultiLevelConfig",
]

"""Sliding-window co-occurrence counting over token sequences.

Unlike the document-level counts used for NPMI coherence, embedding
training uses window-level counts with the GloVe-style ``1/distance``
weighting.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.data.corpus import Corpus
from repro.errors import ConfigError


def window_cooccurrence_counts(
    corpus: Corpus,
    window_size: int = 5,
    distance_weighting: bool = True,
) -> sparse.csr_matrix:
    """Symmetric ``(vocab, vocab)`` window co-occurrence counts.

    Parameters
    ----------
    corpus:
        Token-id documents (order within documents matters here).
    window_size:
        Tokens to the right considered context (symmetrized).
    distance_weighting:
        GloVe's ``1/d`` weighting of a co-occurrence at distance ``d``.
    """
    if window_size < 1:
        raise ConfigError("window_size must be >= 1")
    v = corpus.vocab_size
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    for doc in corpus.documents:
        n = doc.size
        for offset in range(1, min(window_size, n - 1) + 1):
            left = doc[:-offset]
            right = doc[offset:]
            weight = 1.0 / offset if distance_weighting else 1.0
            w = np.full(left.size, weight)
            rows.append(left)
            cols.append(right)
            vals.append(w)
    if not rows:
        return sparse.csr_matrix((v, v))
    row = np.concatenate(rows)
    col = np.concatenate(cols)
    val = np.concatenate(vals)
    counts = sparse.coo_matrix((val, (row, col)), shape=(v, v)).tocsr()
    return counts + counts.T  # symmetrize

"""Embedding store: vectors aligned to a vocabulary, with neighbour lookup."""

from __future__ import annotations

import numpy as np

from repro.data.corpus import Corpus
from repro.data.vocabulary import Vocabulary
from repro.embeddings.glove import GloveConfig, train_glove
from repro.embeddings.ppmi import ppmi_matrix
from repro.embeddings.svd_embeddings import svd_embeddings
from repro.embeddings.window_cooccurrence import window_cooccurrence_counts
from repro.errors import ConfigError, ShapeError


class EmbeddingStore:
    """Word vectors aligned with a vocabulary.

    The models consume :attr:`vectors` directly (as the frozen ρ matrix of
    ETM); the convenience methods exist for inspection and tests.
    """

    def __init__(self, vocabulary: Vocabulary, vectors: np.ndarray):
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[0] != len(vocabulary):
            raise ShapeError(
                f"vectors shape {vectors.shape} does not match vocabulary "
                f"size {len(vocabulary)}"
            )
        self.vocabulary = vocabulary
        self.vectors = vectors

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]

    def vector(self, token: str) -> np.ndarray:
        return self.vectors[self.vocabulary.id_of(token)]

    def cosine_similarity(self, token_a: str, token_b: str) -> float:
        a = self.vector(token_a)
        b = self.vector(token_b)
        denom = float(np.linalg.norm(a) * np.linalg.norm(b)) + 1e-12
        return float(a @ b) / denom

    def nearest(self, token: str, n: int = 5) -> list[tuple[str, float]]:
        """``n`` nearest tokens by cosine similarity (excluding itself)."""
        target = self.vector(token)
        norms = np.linalg.norm(self.vectors, axis=1) + 1e-12
        sims = (self.vectors @ target) / (norms * (np.linalg.norm(target) + 1e-12))
        order = np.argsort(-sims)
        results: list[tuple[str, float]] = []
        for idx in order:
            word = self.vocabulary.token_of(int(idx))
            if word == token:
                continue
            results.append((word, float(sims[idx])))
            if len(results) == n:
                break
        return results


def build_embeddings(
    corpus: Corpus,
    dim: int = 100,
    backend: str = "svd",
    window_size: int = 5,
    seed: int = 0,
) -> EmbeddingStore:
    """Train corpus embeddings with the chosen backend.

    Parameters
    ----------
    backend:
        ``"svd"`` — PPMI + truncated SVD (default, fast, deterministic);
        ``"glove"`` — the literal mini-GloVe trainer.
    """
    dim = min(dim, corpus.vocab_size - 1)
    counts = window_cooccurrence_counts(corpus, window_size=window_size)
    if backend == "svd":
        vectors = svd_embeddings(ppmi_matrix(counts), dim=dim)
    elif backend == "glove":
        vectors = train_glove(counts, GloveConfig(dim=dim, seed=seed))
    else:
        raise ConfigError(f"unknown embedding backend {backend!r}")
    return EmbeddingStore(corpus.vocabulary, vectors)

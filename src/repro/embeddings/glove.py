"""A literal mini-GloVe trainer (Pennington et al., 2014).

Minimizes ``sum_ij f(X_ij) (w_i·w~_j + b_i + b~_j - log X_ij)^2`` with
AdaGrad over the non-zero co-occurrence cells, exactly as the original,
just in numpy.  Provided as an alternative embedding backend to the default
PPMI-SVD; useful for verifying that conclusions do not hinge on the
embedding algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.errors import ConfigError


@dataclass
class GloveConfig:
    """Hyper-parameters of the mini-GloVe trainer."""

    dim: int = 100
    epochs: int = 15
    learning_rate: float = 0.05
    x_max: float = 30.0
    alpha: float = 0.75
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ConfigError("dim must be >= 1")
        if self.epochs < 1:
            raise ConfigError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")


def train_glove(
    counts: sparse.spmatrix | np.ndarray, config: GloveConfig | None = None
) -> np.ndarray:
    """Train GloVe vectors on a co-occurrence count matrix.

    Returns ``(vocab, dim)`` word vectors: the sum of word and context
    vectors, as recommended in the GloVe paper.
    """
    config = config or GloveConfig()
    coo = sparse.coo_matrix(counts)
    v = coo.shape[0]
    rows, cols, values = coo.row, coo.col, coo.data
    keep = values > 0
    rows, cols, values = rows[keep], cols[keep], values[keep]
    if rows.size == 0:
        raise ConfigError("co-occurrence matrix has no positive entries")

    log_x = np.log(values)
    weights = np.minimum((values / config.x_max) ** config.alpha, 1.0)

    rng = np.random.default_rng(config.seed)
    scale = 0.5 / config.dim
    w_main = rng.uniform(-scale, scale, size=(v, config.dim))
    w_ctx = rng.uniform(-scale, scale, size=(v, config.dim))
    b_main = np.zeros(v)
    b_ctx = np.zeros(v)
    g_main = np.full((v, config.dim), 1e-8)
    g_ctx = np.full((v, config.dim), 1e-8)
    gb_main = np.full(v, 1e-8)
    gb_ctx = np.full(v, 1e-8)
    lr = config.learning_rate

    for _ in range(config.epochs):
        order = rng.permutation(rows.size)
        for chunk in np.array_split(order, max(1, order.size // 4096)):
            i, j = rows[chunk], cols[chunk]
            inner = (w_main[i] * w_ctx[j]).sum(axis=1)
            diff = inner + b_main[i] + b_ctx[j] - log_x[chunk]
            grad_scale = 2.0 * weights[chunk] * diff  # (chunk,)

            grad_main = grad_scale[:, None] * w_ctx[j]
            grad_ctx = grad_scale[:, None] * w_main[i]
            # AdaGrad accumulation with scatter-adds (duplicate ids add up).
            np.add.at(g_main, i, grad_main**2)
            np.add.at(g_ctx, j, grad_ctx**2)
            np.add.at(gb_main, i, grad_scale**2)
            np.add.at(gb_ctx, j, grad_scale**2)
            np.subtract.at(w_main, i, lr * grad_main / np.sqrt(g_main[i]))
            np.subtract.at(w_ctx, j, lr * grad_ctx / np.sqrt(g_ctx[j]))
            np.subtract.at(b_main, i, lr * grad_scale / np.sqrt(gb_main[i]))
            np.subtract.at(b_ctx, j, lr * grad_scale / np.sqrt(gb_ctx[j]))

    return w_main + w_ctx

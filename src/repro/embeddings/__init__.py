"""Word-embedding substrate.

The paper freezes GloVe vectors pre-trained on Wikipedia.  Offline, we train
embeddings on the corpus itself: the default backend factorizes the PPMI
word co-occurrence matrix with a truncated SVD (Levy & Goldberg 2014 showed
this family encodes the same shifted-PMI statistics as GloVe/SGNS); a
literal mini-GloVe trainer (AdaGrad weighted-least-squares) is available as
an alternative backend.
"""

from repro.embeddings.window_cooccurrence import window_cooccurrence_counts
from repro.embeddings.ppmi import ppmi_matrix
from repro.embeddings.svd_embeddings import svd_embeddings
from repro.embeddings.glove import GloveConfig, train_glove
from repro.embeddings.store import EmbeddingStore, build_embeddings

__all__ = [
    "window_cooccurrence_counts",
    "ppmi_matrix",
    "svd_embeddings",
    "GloveConfig",
    "train_glove",
    "EmbeddingStore",
    "build_embeddings",
]

"""Truncated-SVD embeddings from a PPMI matrix (the default backend)."""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import svds

from repro.errors import ConfigError


def svd_embeddings(
    ppmi: np.ndarray,
    dim: int = 100,
    eigenvalue_weighting: float = 0.5,
) -> np.ndarray:
    """Rank-``dim`` embedding of a PPMI matrix via truncated SVD.

    ``W = U_d * S_d^p`` with ``p = eigenvalue_weighting`` (0.5, the
    symmetric choice, works best for word similarity per Levy et al. 2015).
    Rows are the word vectors.
    """
    v = ppmi.shape[0]
    if not 1 <= dim < v:
        raise ConfigError(f"dim must be in [1, vocab_size={v}), got {dim}")
    # A fixed deterministic start vector makes the Lanczos iteration (and
    # hence the embeddings, models and checkpoints) bit-reproducible.
    v0 = np.linspace(1.0, 2.0, v)
    u, s, _ = svds(ppmi.astype(np.float64), k=dim, v0=v0)
    # svds returns ascending singular values; flip to conventional order.
    order = np.argsort(-s)
    u = u[:, order]
    s = s[order]
    weights = s**eigenvalue_weighting if eigenvalue_weighting != 0 else np.ones_like(s)
    return u * weights[None, :]

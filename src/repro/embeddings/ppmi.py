"""Positive point-wise mutual information from co-occurrence counts."""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.errors import ShapeError


def ppmi_matrix(
    counts: sparse.spmatrix | np.ndarray,
    shift: float = 0.0,
    smoothing: float = 0.75,
) -> np.ndarray:
    """PPMI of a symmetric co-occurrence count matrix.

    ``PPMI_ij = max(0, log( p_ij / (p_i * q_j) ) - shift)`` where ``q`` is
    the context distribution raised to ``smoothing`` (the α=0.75 context
    smoothing of Levy, Goldberg & Dagan 2015, which improves rare-word
    vectors).

    Returns a dense matrix — vocabulary sizes here are small enough, and
    the SVD consumer needs dense anyway.
    """
    dense = counts.toarray() if sparse.issparse(counts) else np.asarray(counts, float)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ShapeError(f"co-occurrence matrix must be square, got {dense.shape}")
    total = dense.sum()
    if total <= 0:
        return np.zeros_like(dense)
    joint = dense / total
    row = joint.sum(axis=1)
    context = joint.sum(axis=0)
    if smoothing != 1.0:
        context = context**smoothing
        context = context / context.sum()
    with np.errstate(divide="ignore", invalid="ignore"):
        pmi = np.log(joint) - np.log(np.outer(row, context))
    pmi = np.where(joint > 0, pmi, -np.inf)
    return np.maximum(pmi - shift, 0.0)

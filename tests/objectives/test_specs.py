"""ObjectiveSpec validation, RunSpec round-trips and trainer attachment."""

import pickle
from dataclasses import replace

import pytest

from repro.errors import ConfigError
from repro.models import ProdLDA
from repro.objectives import (
    ObjectiveSpec,
    attach_objectives,
    available_objectives,
    build_objective,
    build_stack,
)
from repro.objectives.registry import DEFAULT_WEIGHTS
from repro.training.trainer import RunSpec, Trainer


class TestObjectiveSpec:
    def test_registry_lists_all_rivals(self):
        assert set(available_objectives()) == {
            "clntm",
            "coherence",
            "contrastive",
            "vicreg",
        }

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigError):
            ObjectiveSpec("dropout")

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError):
            ObjectiveSpec("coherence", weight=-2.0)

    def test_params_must_be_a_mapping(self):
        with pytest.raises(ConfigError):
            ObjectiveSpec("coherence", params=[1, 2])

    def test_default_weight_comes_from_registry(self):
        for name in available_objectives():
            assert ObjectiveSpec(name).resolved_weight() == DEFAULT_WEIGHTS[name]
        assert ObjectiveSpec("vicreg", weight=3.5).resolved_weight() == 3.5

    def test_dict_round_trip(self):
        spec = ObjectiveSpec(
            "coherence", weight=2.0, params={"diversity_weight": 0.5}
        )
        assert ObjectiveSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_requires_name(self):
        with pytest.raises(ConfigError):
            ObjectiveSpec.from_dict({"weight": 1.0})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError):
            ObjectiveSpec.from_dict({"name": "coherence", "strength": 1.0})

    def test_build_objective_rejects_unknown_params(self):
        with pytest.raises(ConfigError):
            build_objective(ObjectiveSpec("coherence", params={"tau": 0.1}))

    def test_build_stack_names_and_weights(self):
        stack = build_stack(
            (ObjectiveSpec("coherence"), ObjectiveSpec("vicreg", weight=2.0))
        )
        assert stack.term_names() == ("coherence", "vicreg")
        assert stack.term("coherence").weight == DEFAULT_WEIGHTS["coherence"]
        assert stack.term("vicreg").weight == 2.0

    def test_attach_requires_a_stack_capable_model(self):
        with pytest.raises(ConfigError):
            attach_objectives(object(), (ObjectiveSpec("coherence"),))


class TestRunSpecObjectives:
    def _spec(self) -> RunSpec:
        return RunSpec(
            objectives=(
                ObjectiveSpec("coherence", weight=2.0),
                {"name": "vicreg"},
            )
        )

    def test_dicts_coerce_to_specs(self):
        spec = self._spec()
        assert all(isinstance(o, ObjectiveSpec) for o in spec.objectives)
        assert spec.objectives[1].name == "vicreg"

    def test_invalid_entry_rejected(self):
        with pytest.raises(ConfigError):
            RunSpec(objectives=("coherence",))

    def test_dict_round_trip(self):
        spec = self._spec()
        restored = RunSpec.from_dict(spec.to_dict())
        assert restored.objectives == spec.objectives

    def test_json_round_trip(self):
        spec = self._spec()
        assert RunSpec.from_json(spec.to_json()).objectives == spec.objectives

    def test_pickle_round_trip(self):
        spec = self._spec()
        assert pickle.loads(pickle.dumps(spec)).objectives == spec.objectives

    def test_none_and_empty_survive_round_trips(self):
        assert RunSpec.from_dict(RunSpec().to_dict()).objectives is None
        empty = RunSpec(objectives=())
        assert RunSpec.from_dict(empty.to_dict()).objectives == ()

    def test_from_dict_rejects_non_list_objectives(self):
        with pytest.raises(ConfigError):
            RunSpec.from_dict({"objectives": "coherence"})


class TestTrainerAttachment:
    def test_spec_objectives_replace_the_model_stack(
        self, tiny_corpus, fast_config
    ):
        config = replace(fast_config, epochs=2)
        model = ProdLDA(tiny_corpus.vocab_size, config)
        run = RunSpec(objectives=(ObjectiveSpec("coherence"),))
        Trainer(run).fit(model, tiny_corpus)
        assert model.objectives.term_names() == ("coherence",)
        assert all("objective_coherence" in row for row in model.history)

    def test_empty_objectives_train_pure_elbo(self, tiny_corpus, fast_config):
        config = replace(fast_config, epochs=2)
        model = ProdLDA(tiny_corpus.vocab_size, config)
        Trainer(RunSpec(objectives=())).fit(model, tiny_corpus)
        assert model.objectives.term_names() == ()
        assert all("extra" not in row for row in model.history)

    def test_none_keeps_the_model_declared_stack(self, tiny_corpus, fast_config):
        config = replace(fast_config, epochs=2)
        model = ProdLDA(tiny_corpus.vocab_size, config)
        Trainer(RunSpec()).fit(model, tiny_corpus)
        assert model.objectives.term_names() == ("extra",)

"""Objective-stack semantics + bitwise oracles against the legacy loss.

The tentpole contract of the objective pipeline: refactored models are
*facades* — ``loss_on_batch`` through the stack reproduces the historical
inline implementation bitwise (same values, same parts keys in the same
order, same gradients, same RNG consumption).  The ``_Legacy*`` subclasses
below carry the pre-refactor ``loss_on_batch`` body verbatim and act as
the oracle; they live in this test module on purpose (library models are
forbidden from overriding ``loss_on_batch`` by
``tests/test_architecture.py``).
"""

import numpy as np
import pytest

from repro.core import ContraTopic, npmi_kernel
from repro.errors import ConfigError
from repro.models import ETM, ProdLDA
from repro.objectives import (
    DiversityAwareCoherenceObjective,
    ElboObjective,
    ObjectiveSpec,
    ObjectiveStack,
    ObjectiveTerm,
    attach_objectives,
)


class _LegacyLossMixin:
    """The pre-refactor ``NeuralTopicModel.loss_on_batch`` body, verbatim."""

    def loss_on_batch(self, bow):
        theta, mu, logvar = self.encode_theta(bow, sample=True)
        beta = self.beta()
        rec = self.reconstruction_loss(theta, beta, bow)
        kl = self.kl_loss(mu, logvar, theta)
        loss = rec + kl * self.config.kl_weight
        parts = {"rec": rec.item(), "kl": kl.item()}
        extra = (
            self.extra_loss(theta, beta, bow) if self.extra_loss_enabled else None
        )
        if extra is not None:
            loss = loss + extra
            parts["extra"] = extra.item()
        parts["total"] = loss.item()
        return loss, parts


class _LegacyProdLDA(_LegacyLossMixin, ProdLDA):
    pass


class _LegacyETM(_LegacyLossMixin, ETM):
    pass


class _LegacyContraTopic(_LegacyLossMixin, ContraTopic):
    pass


def _grad_map(model) -> dict[str, np.ndarray]:
    return {
        name: param.grad
        for name, param in model.named_parameters()
        if param.grad is not None
    }


def _assert_bitwise_batch(stacked, legacy, bow) -> None:
    """One training step on each model must agree bitwise everywhere.

    The stack may *add* per-term telemetry keys (``objective_<name>``)
    the legacy dict never had; every legacy key must survive, in order,
    with the bitwise-identical value.
    """
    loss_new, parts_new = stacked.loss_on_batch(bow)
    loss_old, parts_old = legacy.loss_on_batch(bow)
    added = [key for key in parts_new if key not in parts_old]
    assert all(key.startswith("objective_") for key in added), added
    assert [key for key in parts_new if key in parts_old] == list(parts_old)
    for key in parts_old:
        assert parts_new[key] == parts_old[key], key
    assert loss_new.item() == loss_old.item()
    loss_new.backward()
    loss_old.backward()
    grads_new, grads_old = _grad_map(stacked), _grad_map(legacy)
    assert set(grads_new) == set(grads_old)
    for name in grads_old:
        np.testing.assert_array_equal(grads_new[name], grads_old[name])
    stacked.zero_grad()
    legacy.zero_grad()


class TestBitwiseOracles:
    def test_prodlda_matches_legacy(self, tiny_corpus, fast_config):
        bow = tiny_corpus.bow_matrix()[:24]
        stacked = ProdLDA(tiny_corpus.vocab_size, fast_config)
        legacy = _LegacyProdLDA(tiny_corpus.vocab_size, fast_config)
        for _ in range(3):  # several batches: RNG streams must stay aligned
            _assert_bitwise_batch(stacked, legacy, bow)

    def test_etm_matches_legacy(self, tiny_corpus, tiny_embeddings, fast_config):
        bow = tiny_corpus.bow_matrix()[:24]
        stacked = ETM(tiny_corpus.vocab_size, fast_config, tiny_embeddings.vectors)
        legacy = _LegacyETM(
            tiny_corpus.vocab_size, fast_config, tiny_embeddings.vectors
        )
        for _ in range(3):
            _assert_bitwise_batch(stacked, legacy, bow)

    def test_contratopic_matches_legacy(
        self, tiny_corpus, tiny_npmi, tiny_embeddings, fast_config
    ):
        bow = tiny_corpus.bow_matrix()[:24]

        def build(cls):
            backbone = ETM(
                tiny_corpus.vocab_size, fast_config, tiny_embeddings.vectors
            )
            return cls(backbone, npmi_kernel(tiny_npmi))

        stacked = build(ContraTopic)
        legacy = build(_LegacyContraTopic)
        for _ in range(3):  # Gumbel + epsilon streams must stay aligned
            _assert_bitwise_batch(stacked, legacy, bow)

    def test_degraded_contratopic_matches_legacy(
        self, tiny_corpus, tiny_npmi, tiny_embeddings, fast_config
    ):
        """Disabling the term skips its RNG draw exactly like the old flag."""
        bow = tiny_corpus.bow_matrix()[:24]

        def build(cls):
            backbone = ETM(
                tiny_corpus.vocab_size, fast_config, tiny_embeddings.vectors
            )
            return cls(backbone, npmi_kernel(tiny_npmi))

        stacked = build(ContraTopic)
        legacy = build(_LegacyContraTopic)
        _assert_bitwise_batch(stacked, legacy, bow)  # one regularized step
        stacked.extra_loss_enabled = False
        legacy.extra_loss_enabled = False
        _assert_bitwise_batch(stacked, legacy, bow)  # ELBO-only, streams aligned
        stacked.extra_loss_enabled = True
        legacy.extra_loss_enabled = True
        _assert_bitwise_batch(stacked, legacy, bow)  # re-enabled, still aligned


class TestStackSemantics:
    def _two_term_stack(self) -> ObjectiveStack:
        return ObjectiveStack(
            ElboObjective(),
            [
                ObjectiveTerm("first", DiversityAwareCoherenceObjective()),
                ObjectiveTerm("second", DiversityAwareCoherenceObjective()),
            ],
        )

    def test_duplicate_term_names_rejected(self):
        with pytest.raises(ConfigError):
            ObjectiveStack(
                ElboObjective(),
                [
                    ObjectiveTerm("dup", DiversityAwareCoherenceObjective()),
                    ObjectiveTerm("dup", DiversityAwareCoherenceObjective()),
                ],
            )

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError):
            ObjectiveTerm("t", DiversityAwareCoherenceObjective(), weight=-1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            ObjectiveTerm("", DiversityAwareCoherenceObjective())

    def test_unknown_term_lookup_raises(self):
        with pytest.raises(ConfigError):
            self._two_term_stack().term("missing")

    def test_disable_next_sheds_in_reverse_order(self):
        stack = self._two_term_stack()
        assert stack.disable_next() == "second"
        assert stack.disable_next() == "first"
        assert stack.disable_next() is None
        assert not stack.any_enabled()

    def test_apply_flags_bool_and_dict(self):
        stack = self._two_term_stack()
        stack.apply_flags(False)
        assert stack.flags() == {"first": False, "second": False}
        stack.apply_flags({"second": True})
        assert stack.flags() == {"first": False, "second": True}
        assert stack.any_enabled() and not stack.all_enabled()

    def test_extra_loss_enabled_property_round_trip(self, fast_config):
        model = ProdLDA(12, fast_config)
        assert model.extra_loss_enabled
        model.extra_loss_enabled = False
        assert not model.extra_loss_enabled
        assert model.objective_flags() == {"extra": False}
        model.apply_objective_flags({"extra": True})
        assert model.extra_loss_enabled

    def test_parts_carry_named_term_and_aggregate(
        self, tiny_corpus, fast_config
    ):
        model = ProdLDA(tiny_corpus.vocab_size, fast_config)
        attach_objectives(model, (ObjectiveSpec("coherence", weight=2.0),))
        model.on_fit_start(tiny_corpus)
        _, parts = model.loss_on_batch(tiny_corpus.bow_matrix()[:16])
        assert list(parts) == [
            "rec",
            "kl",
            "objective_coherence",
            "extra",
            "total",
        ]
        assert parts["extra"] == parts["objective_coherence"]

    def test_rng_streams_surface_objective_streams(
        self, tiny_corpus, tiny_embeddings, fast_config
    ):
        model = ETM(tiny_corpus.vocab_size, fast_config, tiny_embeddings.vectors)
        attach_objectives(model, (ObjectiveSpec("contrastive"),))
        model.on_fit_start(tiny_corpus)
        streams = model.rng_streams()
        assert "model" in streams
        assert "objective_contrastive" in streams

"""The rival regularizers: facade equivalence and objective behaviour.

Two equivalence contracts pin the "zoo" half of the refactor:

* the :class:`repro.models.CLNTM` class is now literally ProdLDA +
  ``ObjectiveSpec("clntm")`` — training both ways is bitwise-identical;
* ``ObjectiveSpec("contrastive")`` on a bare ETM reproduces
  :class:`repro.core.ContraTopic` over the same backbone bitwise (shared
  Gumbel stream seeding, same kernel construction).

The remaining tests cover the new rivals' math: the diversity-aware
coherence surrogate prefers coherent *and* mutually-distinct topics, and
the VICReg term penalizes posterior collapse.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import ContraTopic, npmi_kernel
from repro.errors import ConfigError
from repro.metrics import compute_npmi_matrix
from repro.models import CLNTM, ETM, ProdLDA
from repro.objectives import (
    DiversityAwareCoherenceObjective,
    ObjectiveSpec,
    TopicContrastiveObjective,
    VicRegObjective,
)
from repro.objectives.base import BatchContext
from repro.objectives.clntm import compute_idf
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.training.trainer import RunSpec, Trainer

#: Epoch-log keys that carry loss values (wall-clock keys are excluded —
#: two equivalent runs still take different nanoseconds).
LOSS_KEYS = ("rec", "kl", "extra", "total", "grad_norm")


def _assert_histories_match(left, right, extra_keys=()) -> None:
    assert len(left.history) == len(right.history)
    for row_l, row_r in zip(left.history, right.history):
        for key in (*LOSS_KEYS, *extra_keys):
            assert row_l[key] == row_r[key], key


class TestClntmFacade:
    def test_class_equals_prodlda_plus_spec(self, tiny_corpus, fast_config):
        config = replace(fast_config, epochs=2)
        clntm = CLNTM(tiny_corpus.vocab_size, config)
        Trainer().fit(clntm, tiny_corpus)

        prodlda = ProdLDA(tiny_corpus.vocab_size, config)
        Trainer(RunSpec(objectives=(ObjectiveSpec("clntm"),))).fit(
            prodlda, tiny_corpus
        )

        for name, value in clntm.state_dict().items():
            np.testing.assert_array_equal(value, prodlda.state_dict()[name])
        _assert_histories_match(clntm, prodlda, extra_keys=("objective_clntm",))

    def test_idf_formula(self, tiny_corpus):
        idf = compute_idf(tiny_corpus)
        doc_freq = tiny_corpus.word_document_frequency()
        expected = np.log((len(tiny_corpus) + 1.0) / (doc_freq + 1.0)) + 1.0
        np.testing.assert_array_equal(idf, expected)


class TestContrastiveFacade:
    def test_spec_on_etm_equals_contratopic(
        self, tiny_corpus, tiny_npmi, tiny_embeddings, fast_config
    ):
        config = replace(fast_config, epochs=2)
        wrapped = ContraTopic(
            ETM(tiny_corpus.vocab_size, config, tiny_embeddings.vectors),
            npmi_kernel(tiny_npmi),
        )
        Trainer().fit(wrapped, tiny_corpus)

        bare = ETM(tiny_corpus.vocab_size, config, tiny_embeddings.vectors)
        Trainer(RunSpec(objectives=(ObjectiveSpec("contrastive"),))).fit(
            bare, tiny_corpus
        )

        np.testing.assert_array_equal(
            wrapped.backbone.topic_embeddings.data, bare.topic_embeddings.data
        )
        for name, value in wrapped.backbone.state_dict().items():
            np.testing.assert_array_equal(value, bare.state_dict()[name])
        _assert_histories_match(
            wrapped, bare, extra_keys=("objective_contrastive",)
        )

    def test_standalone_objective_requires_kernel_or_prepare(self):
        objective = TopicContrastiveObjective()
        with pytest.raises(ConfigError):
            objective.loss(Tensor(np.full((2, 4), 0.25)))


class TestCoherenceObjective:
    def test_prefers_distinct_coherent_topics(self, toy_corpus):
        npmi = compute_npmi_matrix(toy_corpus)
        objective = DiversityAwareCoherenceObjective(npmi=npmi)
        # Two topics on the two word communities vs both on community one.
        distinct = np.zeros((2, toy_corpus.vocab_size))
        distinct[0, :3] = 1.0 / 3
        distinct[1, 3:] = 1.0 / 3
        duplicated = np.tile(distinct[0], (2, 1))
        loss_distinct = objective.loss(Tensor(distinct)).item()
        loss_duplicated = objective.loss(Tensor(duplicated)).item()
        assert loss_distinct < loss_duplicated

    def test_loss_without_matrix_raises(self):
        objective = DiversityAwareCoherenceObjective()
        with pytest.raises(ConfigError):
            objective.loss(Tensor(np.full((2, 4), 0.25)))

    def test_gradient_reaches_beta(self, tiny_corpus, tiny_npmi):
        objective = DiversityAwareCoherenceObjective(npmi=tiny_npmi)
        rng = np.random.default_rng(0)
        beta_logits = Tensor(
            rng.standard_normal((4, tiny_corpus.vocab_size)), requires_grad=True
        )
        loss = objective.loss(F.softmax(beta_logits, axis=1))
        assert np.isfinite(loss.item())
        loss.backward()
        assert beta_logits.grad is not None
        assert np.any(beta_logits.grad != 0)


class TestVicRegObjective:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sim_coeff": -1.0},
            {"std_coeff": -1.0},
            {"cov_coeff": -0.5},
            {"std_target": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            VicRegObjective(**kwargs)

    def test_loss_without_rng_raises(self):
        objective = VicRegObjective()
        mu = Tensor(np.zeros((3, 4)))
        ctx = BatchContext(
            theta=F.softmax(mu, axis=1), mu=mu, logvar=mu, beta=mu
        )
        with pytest.raises(ConfigError):
            objective.loss(ctx)

    def _ctx(self, mu: np.ndarray) -> BatchContext:
        mu_t = Tensor(mu)
        logvar = Tensor(np.full_like(mu, -20.0))  # ~deterministic posterior
        return BatchContext(
            theta=F.softmax(mu_t, axis=1),
            mu=mu_t,
            logvar=logvar,
            beta=mu_t,
        )

    def test_penalizes_posterior_collapse(self):
        objective = VicRegObjective()
        objective.rng = np.random.default_rng(0)
        collapsed = self._ctx(np.zeros((8, 4)))  # every document identical
        objective.rng = np.random.default_rng(0)
        diverse = self._ctx(np.kron(np.eye(4), np.ones((2, 1))) * 8.0)
        loss_collapsed = objective.loss(collapsed).item()
        objective.rng = np.random.default_rng(0)
        loss_diverse = objective.loss(diverse).item()
        assert loss_collapsed > loss_diverse

    def test_gradient_reaches_the_encoder(
        self, tiny_corpus, tiny_embeddings, fast_config
    ):
        model = ETM(tiny_corpus.vocab_size, fast_config, tiny_embeddings.vectors)
        objective = VicRegObjective()
        objective.prepare(model, tiny_corpus)
        theta, mu, logvar = model.encode_theta(
            tiny_corpus.bow_matrix()[:16], sample=True
        )
        ctx = BatchContext(theta=theta, mu=mu, logvar=logvar, beta=model.beta())
        loss = objective.loss(ctx)
        assert np.isfinite(loss.item())
        loss.backward()
        encoder_grads = [
            p.grad for _, p in model.encoder.named_parameters() if p.grad is not None
        ]
        assert encoder_grads
        assert any(np.any(g != 0) for g in encoder_grads)

"""Initializer shapes, ranges and determinism."""

import numpy as np
import pytest

from repro.nn import init


class TestShapesAndRanges:
    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150.0)
        assert w.shape == (100, 50)
        assert np.abs(w).max() <= bound

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.xavier_normal((2000, 1000), rng)
        expected_std = np.sqrt(2.0 / 3000.0)
        assert abs(w.std() - expected_std) / expected_std < 0.05

    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 32), rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 32.0)
        assert np.abs(w).max() <= bound

    def test_kaiming_linear_gain(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 32), rng, nonlinearity="linear")
        assert np.abs(w).max() <= np.sqrt(3.0 / 32.0)

    def test_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.normal((5000,), rng, std=0.5)
        assert abs(w.std() - 0.5) < 0.05

    def test_zeros_ones(self):
        assert (init.zeros((3, 2)) == 0).all()
        assert (init.ones((4,)) == 1).all()

    def test_1d_fans(self):
        rng = np.random.default_rng(0)
        assert init.xavier_uniform((7,), rng).shape == (7,)

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            init.xavier_uniform((), np.random.default_rng(0))


class TestDeterminism:
    def test_same_seed_same_weights(self):
        a = init.xavier_uniform((4, 4), np.random.default_rng(9))
        b = init.xavier_uniform((4, 4), np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_weights(self):
        a = init.xavier_uniform((4, 4), np.random.default_rng(1))
        b = init.xavier_uniform((4, 4), np.random.default_rng(2))
        assert not np.allclose(a, b)

"""Optimizer update rules and convergence behaviour."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import Adam, AdaGrad, Parameter, SGD, clip_grad_norm


def _param(values) -> Parameter:
    return Parameter(np.array(values, dtype=np.float64))


class TestSGD:
    def test_plain_step(self):
        p = _param([1.0, 2.0])
        p.grad = np.array([0.5, -0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_momentum_accumulates(self):
        p = _param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # velocity = 1 -> p = -1
        p.grad = np.array([1.0])
        opt.step()  # velocity = 1.9 -> p = -2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = _param([10.0])
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [10.0 - 0.1 * 0.5 * 10.0])

    def test_skips_gradless_params(self):
        p = _param([1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])


class TestAdam:
    def test_first_step_is_lr_sized(self):
        # With bias correction the first Adam step is ~lr in magnitude.
        p = _param([0.0])
        p.grad = np.array([123.0])
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(p.data, [-0.01], rtol=1e-6)

    def test_matches_reference_two_steps(self):
        # Hand-rolled reference implementation for two updates.
        lr, b1, b2, eps = 0.1, 0.9, 0.999, 1e-8
        grads = [np.array([0.3]), np.array([-0.2])]
        x = np.array([1.0])
        m = v = np.zeros(1)
        for t, g in enumerate(grads, start=1):
            m = b1 * m + (1 - b1) * g
            v = b2 * v + (1 - b2) * g**2
            x = x - lr * (m / (1 - b1**t)) / (np.sqrt(v / (1 - b2**t)) + eps)

        p = _param([1.0])
        opt = Adam([p], lr=lr)
        for g in grads:
            p.grad = g.copy()
            opt.step()
        np.testing.assert_allclose(p.data, x, rtol=1e-10)

    def test_weight_decay_applied(self):
        p = _param([5.0])
        p.grad = np.array([0.0])
        Adam([p], lr=0.1, weight_decay=1.0).step()
        assert p.data[0] < 5.0

    def test_invalid_betas(self):
        with pytest.raises(ConfigError):
            Adam([_param([1.0])], betas=(1.0, 0.999))


class TestAdaGrad:
    def test_step_decays_with_accumulation(self):
        p = _param([0.0])
        opt = AdaGrad([p], lr=1.0)
        p.grad = np.array([1.0])
        opt.step()
        first = -p.data[0]
        p.grad = np.array([1.0])
        opt.step()
        second = -p.data[0] - first
        assert second < first  # effective step shrinks


class TestOptimizerBase:
    def test_requires_parameters(self):
        with pytest.raises(ConfigError):
            SGD([], lr=0.1)

    def test_requires_positive_lr(self):
        with pytest.raises(ConfigError):
            SGD([_param([1.0])], lr=0.0)

    def test_zero_grad(self):
        p = _param([1.0])
        p.grad = np.ones(1)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = _param([1.0])
        p.grad = np.array([3.0])
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == 3.0
        np.testing.assert_allclose(p.grad, [3.0])

    def test_clips_above_threshold(self):
        a, b = _param([0.0]), _param([0.0])
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        norm = clip_grad_norm([a, b], max_norm=1.0)
        assert norm == 5.0
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        np.testing.assert_allclose(total, 1.0)


class TestStateDict:
    @pytest.mark.parametrize(
        "make_opt",
        [
            lambda ps: SGD(ps, lr=0.05, momentum=0.9),
            lambda ps: Adam(ps, lr=0.2),
            lambda ps: AdaGrad(ps, lr=1.0),
        ],
    )
    def test_restored_optimizer_continues_bitwise_identically(self, make_opt):
        def run(steps, resume_at=None):
            rng = np.random.default_rng(0)
            p = _param(np.zeros(4))
            opt = make_opt([p])
            snapshot = None
            for step in range(steps):
                if step == resume_at:
                    snapshot = (p.data.copy(), opt.state_dict())
                p.grad = rng.standard_normal(4)
                opt.step()
            return p.data.copy(), opt, snapshot

        full, _, _ = run(10)
        _, _, (param_at_5, state_at_5) = run(10, resume_at=5)

        # rebuild from the snapshot and replay the last 5 steps
        rng = np.random.default_rng(0)
        for _ in range(5):
            rng.standard_normal(4)
        p = _param(param_at_5)
        opt = make_opt([p])
        opt.load_state_dict(state_at_5)
        for _ in range(5):
            p.grad = rng.standard_normal(4)
            opt.step()
        np.testing.assert_array_equal(p.data, full)

    def test_roundtrip_restores_lr_and_step_count(self):
        p = _param([1.0])
        opt = SGD([p], lr=0.3)
        p.grad = np.ones(1)
        opt.step()
        state = opt.state_dict()

        fresh = SGD([_param([1.0])], lr=0.1)
        fresh.load_state_dict(state)
        assert fresh.lr == 0.3
        assert fresh.step_count == 1

    def test_state_dict_values_are_copies(self):
        p = _param([1.0])
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.ones(1)
        opt.step()
        state = opt.state_dict()
        state["velocity.0"][:] = 99.0
        assert opt._velocity[0][0] != 99.0

    def test_missing_key_rejected(self):
        opt = Adam([_param([1.0])], lr=0.1)
        state = opt.state_dict()
        del state["m.0"]
        with pytest.raises(ConfigError):
            Adam([_param([1.0])], lr=0.1).load_state_dict(state)

    def test_missing_scalar_rejected(self):
        opt = SGD([_param([1.0])], lr=0.1)
        state = opt.state_dict()
        del state["step_count"]
        with pytest.raises(ConfigError):
            SGD([_param([1.0])], lr=0.1).load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        opt = SGD([_param([1.0, 2.0])], lr=0.1)
        state = opt.state_dict()
        with pytest.raises(ConfigError):
            SGD([_param([1.0, 2.0, 3.0])], lr=0.1).load_state_dict(state)


class TestConvergence:
    @pytest.mark.parametrize(
        "make_opt",
        [
            lambda ps: SGD(ps, lr=0.1),
            lambda ps: SGD(ps, lr=0.05, momentum=0.9),
            lambda ps: Adam(ps, lr=0.2),
            lambda ps: AdaGrad(ps, lr=1.0),
        ],
    )
    def test_minimizes_quadratic(self, make_opt):
        from repro.tensor import Tensor

        target = np.array([3.0, -2.0, 1.0])
        p = Parameter(np.zeros(3))
        opt = make_opt([p])
        for _ in range(200):
            opt.zero_grad()
            diff = p - Tensor(target)
            (diff * diff).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-2)

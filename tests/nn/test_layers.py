"""Layer semantics: Linear, Dropout, BatchNorm1d, MLP, activations."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn import Activation, BatchNorm1d, Dropout, Identity, Linear, MLP, Sequential
from repro.nn.layers import get_activation
from repro.tensor import Tensor


class TestLinear:
    def test_affine_math(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(5, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = Linear(3, 2, np.random.default_rng(0), bias=False)
        assert layer.bias is None
        assert len(list(layer.named_parameters())) == 1

    def test_shape_validation(self):
        layer = Linear(3, 2, np.random.default_rng(0))
        with pytest.raises(ShapeError):
            layer(Tensor(np.ones((4, 5))))

    def test_gradients_flow_to_weight_and_bias(self):
        layer = Linear(3, 2, np.random.default_rng(0))
        layer(Tensor(np.ones((4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [4.0, 4.0])


class TestDropout:
    def test_eval_is_identity(self):
        drop = Dropout(0.5, np.random.default_rng(0))
        drop.train(False)
        x = np.ones((10, 10))
        np.testing.assert_allclose(drop(Tensor(x)).data, x)

    def test_train_zeroes_and_rescales(self):
        drop = Dropout(0.5, np.random.default_rng(0))
        out = drop(Tensor(np.ones((200, 50)))).data
        assert (out == 0.0).any()
        # kept entries are rescaled by 1/keep
        assert set(np.unique(out)).issubset({0.0, 2.0})
        # roughly mean-preserving
        assert abs(out.mean() - 1.0) < 0.05

    def test_zero_rate_identity_in_train(self):
        drop = Dropout(0.0, np.random.default_rng(0))
        x = np.ones((3, 3))
        np.testing.assert_allclose(drop(Tensor(x)).data, x)

    def test_invalid_rate(self):
        with pytest.raises(ConfigError):
            Dropout(1.0, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            Dropout(-0.1, np.random.default_rng(0))


class TestBatchNorm:
    def test_normalizes_batch(self):
        bn = BatchNorm1d(4)
        x = np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(64, 4))
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(4), atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), np.ones(4), atol=1e-2)

    def test_running_stats_move_toward_batch(self):
        bn = BatchNorm1d(2, momentum=0.5)
        x = np.full((8, 2), 10.0) + np.random.default_rng(0).normal(size=(8, 2))
        bn(Tensor(x))
        assert (bn.running_mean > 1.0).all()

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(2, momentum=1.0)  # running stats = last batch
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 2)) * 2.0 + 3.0
        bn(Tensor(x))
        bn.train(False)
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(2), atol=0.05)

    def test_affine_parameters_exist(self):
        bn = BatchNorm1d(3)
        names = {n for n, _ in bn.named_parameters()}
        assert names == {"weight", "bias"}
        assert not list(BatchNorm1d(3, affine=False).named_parameters())

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            BatchNorm1d(3)(Tensor(np.ones((2, 4))))

    def test_gradient_through_batchnorm(self):
        bn = BatchNorm1d(3)
        x = Tensor(np.random.default_rng(0).normal(size=(6, 3)), requires_grad=True)
        (bn(x) ** 2).sum().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()


class TestActivationModule:
    def test_known_names(self):
        for name in ("relu", "selu", "tanh", "sigmoid", "softplus", "gelu", "identity"):
            out = Activation(name)(Tensor(np.linspace(-2, 2, 5)))
            assert out.shape == (5,)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            get_activation("swishish")

    def test_identity_module(self):
        x = Tensor(np.ones(3))
        assert Identity()(x) is x


class TestMLP:
    def test_structure(self):
        mlp = MLP([10, 8, 6], np.random.default_rng(0), dropout=0.1)
        out = mlp(Tensor(np.ones((4, 10))))
        assert out.shape == (4, 6)

    def test_final_activation_toggle(self):
        # With relu final activation off, outputs may be negative.
        rng = np.random.default_rng(3)
        mlp = MLP([5, 4], rng, activation="relu", final_activation=False)
        out = mlp(Tensor(rng.normal(size=(20, 5)))).data
        assert (out < 0).any()
        mlp2 = MLP([5, 4], rng, activation="relu", final_activation=True)
        assert (mlp2(Tensor(rng.normal(size=(20, 5)))).data >= 0).all()

    def test_too_few_sizes(self):
        with pytest.raises(ConfigError):
            MLP([10], np.random.default_rng(0))

    def test_sequential_composition(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(4, 4, rng), Activation("tanh"), Linear(4, 1, rng))
        assert seq(Tensor(np.ones((2, 4)))).shape == (2, 1)

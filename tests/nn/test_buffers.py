"""Buffer registration and state-dict round-trips (running statistics)."""

import numpy as np
import pytest

from repro.nn import BatchNorm1d, Linear, Sequential
from repro.tensor import Tensor


class TestBufferRegistration:
    def test_batchnorm_buffers_named(self):
        bn = BatchNorm1d(3)
        names = dict(bn.named_buffers())
        assert set(names) == {"running_mean", "running_var"}

    def test_nested_buffer_names_are_dotted(self):
        rng = np.random.default_rng(0)
        net = Sequential(Linear(4, 3, rng), BatchNorm1d(3))
        names = {n for n, _ in net.named_buffers()}
        assert names == {"layer1.running_mean", "layer1.running_var"}

    def test_assignment_keeps_buffer_registered(self):
        bn = BatchNorm1d(2)
        bn.running_mean = np.array([5.0, 6.0])
        assert dict(bn.named_buffers())["running_mean"].tolist() == [5.0, 6.0]


class TestStateDictWithBuffers:
    def test_state_dict_contains_buffers(self):
        bn = BatchNorm1d(2)
        state = bn.state_dict()
        assert "buffer::running_mean" in state
        assert "weight" in state

    def test_roundtrip_restores_running_stats(self):
        rng = np.random.default_rng(0)
        bn = BatchNorm1d(3, momentum=0.5)
        bn(Tensor(rng.normal(loc=4.0, size=(32, 3))))  # update stats
        state = bn.state_dict()

        fresh = BatchNorm1d(3, momentum=0.5)
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh.running_mean, bn.running_mean)
        np.testing.assert_array_equal(fresh.running_var, bn.running_var)

    def test_restored_eval_outputs_match(self):
        rng = np.random.default_rng(1)
        bn = BatchNorm1d(3)
        x = rng.normal(size=(16, 3))
        bn(Tensor(x))
        bn.train(False)
        expected = bn(Tensor(x)).data

        fresh = BatchNorm1d(3)
        fresh.load_state_dict(bn.state_dict())
        fresh.train(False)
        np.testing.assert_allclose(fresh(Tensor(x)).data, expected)

    def test_buffers_missing_from_old_state_tolerated(self):
        bn = BatchNorm1d(2)
        state = {k: v for k, v in bn.state_dict().items() if not k.startswith("buffer::")}
        bn.load_state_dict(state)  # must not raise

    def test_unknown_buffer_rejected(self):
        bn = BatchNorm1d(2)
        state = bn.state_dict()
        state["buffer::ghost"] = np.zeros(2)
        with pytest.raises(KeyError):
            bn.load_state_dict(state)

"""Module tree behaviour: registration, state dicts, train/eval modes."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential
from repro.tensor import Tensor


class _Net(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.layer_a = Linear(4, 3, rng)
        self.layer_b = Linear(3, 2, rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.layer_b(self.layer_a(x)) * self.scale


class TestRegistration:
    def test_named_parameters_are_dotted(self):
        names = {name for name, _ in _Net().named_parameters()}
        assert "scale" in names
        assert "layer_a.weight" in names
        assert "layer_b.bias" in names

    def test_parameters_deduplicated(self):
        net = _Net()
        net.alias = net.layer_a  # same module twice
        params = net.parameters()
        assert len(params) == len({id(p) for p in params})

    def test_num_parameters(self):
        net = _Net()
        assert net.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2 + 1

    def test_modules_walk(self):
        net = _Net()
        kinds = [type(m).__name__ for m in net.modules()]
        assert kinds.count("Linear") == 2


class TestModes:
    def test_train_eval_propagate(self):
        net = _Net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad_clears(self):
        net = _Net()
        out = net(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        net = _Net()
        state = net.state_dict()
        other = _Net()
        other.layer_a.weight.data += 1.0  # make them differ
        other.load_state_dict(state)
        np.testing.assert_allclose(
            other.layer_a.weight.data, net.layer_a.weight.data
        )

    def test_state_dict_copies(self):
        net = _Net()
        state = net.state_dict()
        state["scale"][0] = 99.0
        assert net.scale.data[0] == 1.0

    def test_missing_key_rejected(self):
        net = _Net()
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        net = _Net()
        state = net.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        net = _Net()
        state = net.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestSequentialAsModule:
    def test_children_registered(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(3, 3, rng), Linear(3, 1, rng))
        assert len(list(seq.named_parameters())) == 4
        assert len(seq) == 2
        assert len(list(iter(seq))) == 2

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

"""Corpus container: validation, bag-of-words, statistics."""

import numpy as np
import pytest

from repro.data import Corpus
from repro.errors import CorpusError


class TestValidation:
    def test_empty_corpus_rejected(self, toy_vocabulary):
        with pytest.raises(CorpusError):
            Corpus([], toy_vocabulary)

    def test_empty_document_rejected(self, toy_vocabulary):
        with pytest.raises(CorpusError):
            Corpus([[0, 1], []], toy_vocabulary)

    def test_out_of_range_token_rejected(self, toy_vocabulary):
        with pytest.raises(CorpusError):
            Corpus([[0, 99]], toy_vocabulary)

    def test_label_length_mismatch(self, toy_vocabulary):
        with pytest.raises(CorpusError):
            Corpus([[0], [1]], toy_vocabulary, labels=[0])


class TestBagOfWords:
    def test_dense_counts(self, toy_corpus):
        bow = toy_corpus.bow_matrix()
        assert bow.shape == (6, 6)
        np.testing.assert_allclose(bow[0], [2, 2, 1, 0, 0, 0])

    def test_sparse_matches_dense(self, toy_corpus):
        dense = toy_corpus.bow_matrix()
        np.testing.assert_allclose(toy_corpus.bow_sparse().toarray(), dense)

    def test_binary_incidence(self, toy_corpus):
        binary = toy_corpus.binary_doc_word().toarray()
        assert set(np.unique(binary)).issubset({0.0, 1.0})
        np.testing.assert_allclose(binary, (toy_corpus.bow_matrix() > 0))

    def test_bow_cached_and_dtype(self, toy_corpus):
        a = toy_corpus.bow_matrix()
        b = toy_corpus.bow_matrix()
        assert a is b
        assert toy_corpus.bow_matrix(np.float32).dtype == np.float32


class TestCastCache:
    def test_alternating_dtypes_rebuild_at_most_once_each(self, toy_corpus):
        # Regression: float32 training interleaved with float64 NPMI
        # evaluation used to rebuild the BOW on every dtype switch.  The
        # per-dtype dicts pin each dtype to at most one materialization
        # per corpus lifetime, however requests alternate.
        for _ in range(8):
            toy_corpus.bow_matrix(np.float32)
            toy_corpus.bow_matrix(np.float64)
            toy_corpus.bow_csr(np.float32)
            toy_corpus.bow_csr(np.float64)
        stats = toy_corpus.cast_stats
        assert stats["bow_rebuilds"] == 2  # one per dtype, never more
        assert stats["csr_rebuilds"] <= 2
        assert stats["bow_hits"] >= 14
        assert stats["csr_hits"] >= 14

    def test_alternating_dtypes_return_stable_objects(self, toy_corpus):
        f32_first = toy_corpus.bow_matrix(np.float32)
        f64_first = toy_corpus.bow_matrix(np.float64)
        assert toy_corpus.bow_matrix(np.float32) is f32_first
        assert toy_corpus.bow_matrix(np.float64) is f64_first
        csr_first = toy_corpus.bow_csr(np.float32)
        toy_corpus.bow_csr(np.float64)
        assert toy_corpus.bow_csr(np.float32) is csr_first

    def test_record_cast_stats_publishes_counters(self, toy_corpus):
        from repro.telemetry import MetricsRegistry

        toy_corpus.bow_matrix(np.float32)
        toy_corpus.bow_matrix(np.float32)
        registry = MetricsRegistry()
        toy_corpus.record_cast_stats(registry)
        counters = registry.snapshot()["counters"]
        assert counters["data/bow_cast_rebuilds"] == 1
        assert counters["data/bow_cast_hits"] == 1
        assert "data/csr_cast_rebuilds" in counters
        assert "data/csr_cast_hits" in counters


class TestStats:
    def test_table1_quantities(self, toy_corpus):
        stats = toy_corpus.stats()
        lengths = [5, 4, 5, 4, 5, 4]
        assert stats.num_documents == 6
        assert stats.vocabulary_size == 6
        assert stats.num_tokens == sum(lengths)
        np.testing.assert_allclose(stats.average_length, np.mean(lengths))

    def test_stats_as_row(self, toy_corpus):
        row = toy_corpus.stats().as_row()
        assert row["Vocabulary Size"] == 6

    def test_word_frequencies(self, toy_corpus):
        freq = toy_corpus.word_frequency()
        assert freq.sum() == toy_corpus.stats().num_tokens
        df = toy_corpus.word_document_frequency()
        assert (df <= len(toy_corpus)).all()
        assert (df >= 1).all()  # every vocab word appears somewhere here

    def test_top_words(self, toy_corpus):
        top = toy_corpus.top_words(3)
        assert len(top) == 3
        assert all(isinstance(w, str) for w in top)

    def test_num_labels(self, toy_corpus, toy_vocabulary):
        assert toy_corpus.num_labels == 2
        unlabeled = Corpus([[0]], toy_vocabulary)
        assert unlabeled.num_labels == 0
        assert unlabeled.labels is None


class TestSubset:
    def test_subset_keeps_labels(self, toy_corpus):
        sub = toy_corpus.subset([0, 3])
        assert len(sub) == 2
        assert sub.labels.tolist() == [0, 1]
        assert sub.vocabulary is toy_corpus.vocabulary

    def test_empty_subset_rejected(self, toy_corpus):
        with pytest.raises(CorpusError):
            toy_corpus.subset([])

    def test_repr(self, toy_corpus):
        assert "labeled" in repr(toy_corpus)


class TestFingerprint:
    @pytest.fixture(autouse=True)
    def _fresh_stats(self):
        from repro.data.corpus import reset_fingerprint_stats

        reset_fingerprint_stats()
        yield
        reset_fingerprint_stats()

    def test_memoised_warm_lookup_hashes_nothing(self, toy_corpus):
        from repro.data.corpus import fingerprint_stats

        first = toy_corpus.content_fingerprint()
        cold = fingerprint_stats()
        assert cold["documents_hashed"] == len(toy_corpus)
        assert toy_corpus.content_fingerprint() == first
        warm = fingerprint_stats()
        # The warm lookup is a pure memo hit: zero additional hashing work.
        assert warm["documents_hashed"] == cold["documents_hashed"]
        assert warm["computes"] == cold["computes"]
        assert warm["memo_hits"] == cold["memo_hits"] + 1

    def test_extend_hashes_only_the_delta(self, toy_corpus, toy_vocabulary):
        from repro.data.corpus import fingerprint_stats

        toy_corpus_copy = Corpus(
            [doc.copy() for doc in toy_corpus.documents], toy_vocabulary
        )
        toy_corpus_copy.content_fingerprint()
        hashed_before = fingerprint_stats()["documents_hashed"]
        added = toy_corpus_copy.extend([[0, 5], [1, 2, 3]])
        assert added == 2
        toy_corpus_copy.content_fingerprint()
        # Chained digest: only the two new documents were hashed.
        assert fingerprint_stats()["documents_hashed"] == hashed_before + 2

    def test_extended_equals_from_scratch(self, toy_corpus, toy_vocabulary):
        grown = Corpus([doc.copy() for doc in toy_corpus.documents], toy_vocabulary)
        grown.content_fingerprint()  # memoise, then chain from the delta
        grown.extend([[3, 4], [5, 0, 1]])
        scratch = Corpus(
            [doc.copy() for doc in grown.documents], toy_vocabulary
        )
        assert grown.content_fingerprint() == scratch.content_fingerprint()
        assert grown.content_fingerprint() != toy_corpus.content_fingerprint()

    def test_extend_invalidates_bow_caches(self, toy_corpus, toy_vocabulary):
        grown = Corpus([doc.copy() for doc in toy_corpus.documents], toy_vocabulary)
        before = grown.bow_matrix()
        grown.extend([[0, 1]])
        after = grown.bow_matrix()
        assert after.shape[0] == before.shape[0] + 1

    def test_extend_validates_documents(self, toy_corpus, toy_vocabulary):
        grown = Corpus([doc.copy() for doc in toy_corpus.documents], toy_vocabulary)
        with pytest.raises(CorpusError):
            grown.extend([[]])
        with pytest.raises(CorpusError):
            grown.extend([[len(toy_vocabulary)]])
        # Unlabeled corpora reject labels; labeled ones require them.
        with pytest.raises(CorpusError):
            grown.extend([[0, 1]], labels=[1])
        labeled = Corpus(
            [doc.copy() for doc in toy_corpus.documents],
            toy_vocabulary,
            labels=toy_corpus.labels,
        )
        with pytest.raises(CorpusError):
            labeled.extend([[0, 1]])
        labeled.extend([[0, 1]], labels=[1])
        assert len(labeled) == len(toy_corpus) + 1
        assert len(grown) == len(toy_corpus)

    def test_pickle_keeps_memo(self, toy_corpus):
        import pickle

        fp = toy_corpus.content_fingerprint()
        clone = pickle.loads(pickle.dumps(toy_corpus))
        assert clone.content_fingerprint() == fp

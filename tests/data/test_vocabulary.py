"""Vocabulary mapping semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Vocabulary
from repro.errors import VocabularyError


class TestBasics:
    def test_dense_first_seen_ids(self):
        vocab = Vocabulary(["b", "a", "b", "c"])
        assert vocab.id_of("b") == 0
        assert vocab.id_of("a") == 1
        assert vocab.id_of("c") == 2
        assert len(vocab) == 3

    def test_roundtrip(self):
        vocab = Vocabulary(["x", "y"])
        for token in vocab:
            assert vocab.token_of(vocab.id_of(token)) == token

    def test_contains(self):
        vocab = Vocabulary(["x"])
        assert "x" in vocab
        assert "y" not in vocab

    def test_add_returns_existing(self):
        vocab = Vocabulary(["x"])
        assert vocab.add("x") == 0
        assert vocab.add("y") == 1

    def test_tokens_copy(self):
        vocab = Vocabulary(["x"])
        tokens = vocab.tokens()
        tokens.append("hacked")
        assert len(vocab) == 1

    def test_equality(self):
        assert Vocabulary(["a", "b"]) == Vocabulary(["a", "b"])
        assert Vocabulary(["a"]) != Vocabulary(["b"])
        assert Vocabulary(["a"]).__eq__(42) is NotImplemented


class TestErrors:
    def test_unknown_token(self):
        with pytest.raises(VocabularyError):
            Vocabulary(["x"]).id_of("missing")

    def test_out_of_range_id(self):
        vocab = Vocabulary(["x"])
        with pytest.raises(VocabularyError):
            vocab.token_of(5)
        with pytest.raises(VocabularyError):
            vocab.token_of(-1)

    def test_frozen_rejects_new(self):
        vocab = Vocabulary(["x"]).freeze()
        assert vocab.frozen
        with pytest.raises(VocabularyError):
            vocab.add("new")
        assert vocab.add("x") == 0  # existing still fine


class TestSubset:
    def test_preserves_order(self):
        vocab = Vocabulary(["a", "b", "c", "d"])
        sub = vocab.subset(["d", "b"])
        assert sub.tokens() == ["b", "d"]

    def test_ignores_unknown(self):
        vocab = Vocabulary(["a"])
        assert vocab.subset(["a", "zzz"]).tokens() == ["a"]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=30))
def test_property_ids_are_dense_and_stable(tokens):
    """Ids form the range [0, len) and lookups are mutually inverse."""
    vocab = Vocabulary(tokens)
    ids = sorted(vocab.id_of(t) for t in set(tokens))
    assert ids == list(range(len(vocab)))
    for i in range(len(vocab)):
        assert vocab.id_of(vocab.token_of(i)) == i
